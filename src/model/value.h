#ifndef IMPLIANCE_MODEL_VALUE_H_
#define IMPLIANCE_MODEL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.h"

namespace impliance::model {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,  // microseconds since epoch
};

// Typed scalar leaf of the uniform data model. Every attribute of every
// ingested object — a relational column, a CSV cell, an XML text node, a
// token span annotation — bottoms out in a Value.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Repr(v)); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Timestamp(int64_t micros) {
    Value v{Repr(micros)};
    v.is_timestamp_ = true;
    return v;
  }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt || t == ValueType::kDouble ||
           t == ValueType::kTimestamp;
  }

  // Accessors abort on type mismatch; use type() or the As* conversions when
  // the type is not known statically.
  bool bool_value() const;
  int64_t int_value() const;
  double double_value() const;
  const std::string& string_value() const;
  int64_t timestamp_value() const;

  // Lossy conversions used by expression evaluation. AsDouble on non-numeric
  // returns 0; AsString renders any type.
  double AsDouble() const;
  std::string AsString() const;

  // Total order: first by type rank, then by value. Gives indexes and sorts
  // a deterministic order over heterogeneous data.
  int Compare(const Value& other) const;

  uint64_t HashValue() const;

  // Binary serialization (appends to *dst / consumes from *input).
  void Encode(std::string* dst) const;
  static bool Decode(std::string_view* input, Value* out);

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
  bool is_timestamp_ = false;
};

// Best-effort parse of a textual field into a typed Value: int, double,
// bool, ISO-ish date (-> Timestamp), else String. This is how ingestion
// infers types without a schema.
Value ParseValue(std::string_view text);

}  // namespace impliance::model

#endif  // IMPLIANCE_MODEL_VALUE_H_
