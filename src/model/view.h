#ifndef IMPLIANCE_MODEL_VIEW_H_
#define IMPLIANCE_MODEL_VIEW_H_

#include <optional>
#include <string>
#include <vector>

#include "model/document.h"

namespace impliance::model {

// A relational row materialized from a document.
using Row = std::vector<Value>;

// System-supplied view definition (Figure 2): maps documents of one schema
// class back into relational rows so that SQL applications keep working
// without rewriting against new APIs. A view exposes named columns, each
// bound to a path in the document tree.
struct ViewColumn {
  std::string name;
  std::string path;  // e.g. "/doc/customer_id"
};

struct ViewDef {
  std::string name;         // relational name, e.g. "orders"
  std::string kind;         // documents of this kind (or schema class) qualify
  std::vector<ViewColumn> columns;

  // Index of a column by name, or -1.
  int ColumnIndex(std::string_view column_name) const;
};

// Projects `doc` through the view. Missing paths become Null so that
// documents with ragged schemas ("schema chaos") still produce rows.
Row DocumentToRow(const ViewDef& view, const Document& doc);

// Infers a view over documents of `kind` from a sample: one column per
// distinct leaf path, named by the last path segment (disambiguated with
// full paths on collision). This is how SQL access appears over data that
// was never given a schema.
ViewDef InferView(std::string name, std::string kind,
                  const std::vector<const Document*>& sample);

}  // namespace impliance::model

#endif  // IMPLIANCE_MODEL_VIEW_H_
