#include "model/document.h"

#include "common/coding.h"

namespace impliance::model {

void Document::Encode(std::string* dst) const {
  PutVarint64(dst, id);
  PutVarint32(dst, version);
  dst->push_back(static_cast<char>(doc_class));
  PutLengthPrefixed(dst, kind);
  root.Encode(dst);
  PutVarint64(dst, refs.size());
  for (const DocRef& ref : refs) {
    PutVarint64(dst, ref.target);
    PutLengthPrefixed(dst, ref.relation);
    PutLengthPrefixed(dst, ref.path);
    PutVarint32(dst, ref.begin);
    PutVarint32(dst, ref.end);
  }
}

bool Document::Decode(std::string_view input, Document* out) {
  uint64_t id = 0;
  uint32_t version = 0;
  if (!GetVarint64(&input, &id)) return false;
  if (!GetVarint32(&input, &version)) return false;
  if (input.empty()) return false;
  uint8_t doc_class = static_cast<uint8_t>(input[0]);
  if (doc_class > static_cast<uint8_t>(DocClass::kDerived)) return false;
  input.remove_prefix(1);
  std::string_view kind;
  if (!GetLengthPrefixed(&input, &kind)) return false;
  out->id = id;
  out->version = version;
  out->doc_class = static_cast<DocClass>(doc_class);
  out->kind.assign(kind);
  if (!Item::Decode(&input, &out->root)) return false;
  uint64_t num_refs = 0;
  if (!GetVarint64(&input, &num_refs)) return false;
  if (num_refs > input.size()) return false;
  out->refs.clear();
  out->refs.resize(num_refs);
  for (uint64_t i = 0; i < num_refs; ++i) {
    DocRef& ref = out->refs[i];
    std::string_view relation, path;
    if (!GetVarint64(&input, &ref.target)) return false;
    if (!GetLengthPrefixed(&input, &relation)) return false;
    if (!GetLengthPrefixed(&input, &path)) return false;
    if (!GetVarint32(&input, &ref.begin)) return false;
    if (!GetVarint32(&input, &ref.end)) return false;
    ref.relation.assign(relation);
    ref.path.assign(path);
  }
  return input.empty();
}

bool Document::operator==(const Document& other) const {
  return id == other.id && version == other.version &&
         doc_class == other.doc_class && kind == other.kind &&
         root == other.root && refs == other.refs;
}

Document MakeRecordDocument(
    std::string kind, std::vector<std::pair<std::string, Value>> fields) {
  Document doc;
  doc.kind = std::move(kind);
  doc.root = Item("doc");
  for (auto& [name, value] : fields) {
    doc.root.AddChild(std::move(name), std::move(value));
  }
  return doc;
}

Document MakeTextDocument(std::string kind, std::string title,
                          std::string body) {
  Document doc;
  doc.kind = std::move(kind);
  doc.root = Item("doc");
  if (!title.empty()) {
    doc.root.AddChild("title", Value::String(std::move(title)));
  }
  doc.root.AddChild("text", Value::String(std::move(body)));
  return doc;
}

}  // namespace impliance::model
