#ifndef IMPLIANCE_MODEL_JSON_WRITER_H_
#define IMPLIANCE_MODEL_JSON_WRITER_H_

#include <string>

#include "model/document.h"

namespace impliance::model {

// Renders a Value / Item tree / Document as JSON text (the API's output
// format; the inverse direction lives in ingest/json_parser). Repeated
// sibling names become JSON arrays; a node that has both a scalar value
// and children renders the scalar under the reserved key "#text".
std::string ValueToJson(const Value& value);
std::string ItemToJson(const Item& item, int indent = 0);
std::string DocumentToJson(const Document& doc, int indent = 0);

}  // namespace impliance::model

#endif  // IMPLIANCE_MODEL_JSON_WRITER_H_
