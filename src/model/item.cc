#include "model/item.h"

#include <algorithm>
#include <set>

#include "common/coding.h"

namespace impliance::model {

Item& Item::AddChild(std::string child_name, Value child_value) {
  children.emplace_back(std::move(child_name), std::move(child_value));
  return children.back();
}

const Item* Item::FindChild(std::string_view child_name) const {
  for (const Item& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

Item* Item::FindChild(std::string_view child_name) {
  for (Item& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

void Item::Encode(std::string* dst) const {
  PutLengthPrefixed(dst, name);
  value.Encode(dst);
  PutVarint64(dst, children.size());
  for (const Item& child : children) child.Encode(dst);
}

bool Item::Decode(std::string_view* input, Item* out) {
  std::string_view name;
  if (!GetLengthPrefixed(input, &name)) return false;
  out->name.assign(name);
  if (!Value::Decode(input, &out->value)) return false;
  uint64_t n = 0;
  if (!GetVarint64(input, &n)) return false;
  // Guard against corrupt counts blowing up memory: children cannot
  // outnumber the remaining input bytes (each child is >= 2 bytes).
  if (n > input->size()) return false;
  out->children.clear();
  out->children.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!Decode(input, &out->children[i])) return false;
  }
  return true;
}

bool Item::operator==(const Item& other) const {
  return name == other.name && value == other.value &&
         children == other.children;
}

namespace {

void CollectPathsInto(const Item& node, std::string* prefix,
                      std::vector<PathValue>* out) {
  const size_t saved = prefix->size();
  prefix->push_back('/');
  prefix->append(node.name);
  out->push_back(PathValue{*prefix, &node.value});
  for (const Item& child : node.children) {
    CollectPathsInto(child, prefix, out);
  }
  prefix->resize(saved);
}

}  // namespace

std::vector<PathValue> CollectPaths(const Item& root) {
  std::vector<PathValue> out;
  std::string prefix;
  CollectPathsInto(root, &prefix, &out);
  return out;
}

std::vector<std::string> CollectDistinctPaths(const Item& root) {
  std::set<std::string> distinct;
  for (const PathValue& pv : CollectPaths(root)) {
    distinct.insert(pv.path);
  }
  return std::vector<std::string>(distinct.begin(), distinct.end());
}

const Value* ResolvePath(const Item& root, std::string_view path) {
  std::vector<const Value*> all = ResolvePathAll(root, path);
  return all.empty() ? nullptr : all.front();
}

std::vector<const Value*> ResolvePathAll(const Item& root,
                                         std::string_view path) {
  std::vector<const Value*> out;
  for (const PathValue& pv : CollectPaths(root)) {
    if (pv.path == path) out.push_back(pv.value);
  }
  return out;
}

namespace {

void CollectTextInto(const Item& node, std::string* out) {
  if (node.value.is_string()) {
    if (!out->empty()) out->push_back(' ');
    out->append(node.value.string_value());
  }
  for (const Item& child : node.children) CollectTextInto(child, out);
}

}  // namespace

std::string CollectText(const Item& root) {
  std::string out;
  CollectTextInto(root, &out);
  return out;
}

}  // namespace impliance::model
