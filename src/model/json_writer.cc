#include "model/json_writer.h"

#include <cstdio>
#include <map>
#include <vector>

namespace impliance::model {

namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(int indent, std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
}

void AppendItemBody(const Item& item, int indent, std::string* out);

// Renders either a single child or an array of same-named siblings.
void AppendChildValue(const std::vector<const Item*>& group, int indent,
                      std::string* out) {
  if (group.size() == 1) {
    AppendItemBody(*group[0], indent, out);
    return;
  }
  *out += "[\n";
  for (size_t i = 0; i < group.size(); ++i) {
    AppendIndent(indent + 1, out);
    AppendItemBody(*group[i], indent + 1, out);
    if (i + 1 < group.size()) out->push_back(',');
    out->push_back('\n');
  }
  AppendIndent(indent, out);
  out->push_back(']');
}

void AppendItemBody(const Item& item, int indent, std::string* out) {
  if (item.children.empty()) {
    *out += ValueToJson(item.value);
    return;
  }
  // Group children by name, preserving first-seen order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const Item*>> groups;
  for (const Item& child : item.children) {
    auto [it, inserted] = groups.try_emplace(child.name);
    if (inserted) order.push_back(child.name);
    it->second.push_back(&child);
  }
  *out += "{\n";
  bool first = true;
  if (!item.value.is_null()) {
    AppendIndent(indent + 1, out);
    *out += "\"#text\": ";
    *out += ValueToJson(item.value);
    first = false;
  }
  for (const std::string& name : order) {
    if (!first) *out += ",\n";
    first = false;
    AppendIndent(indent + 1, out);
    AppendEscaped(name, out);
    *out += ": ";
    AppendChildValue(groups[name], indent + 1, out);
  }
  out->push_back('\n');
  AppendIndent(indent, out);
  out->push_back('}');
}

}  // namespace

std::string ValueToJson(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return value.bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(value.int_value());
    case ValueType::kTimestamp:
      return std::to_string(value.timestamp_value());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", value.double_value());
      return buf;
    }
    case ValueType::kString: {
      std::string out;
      AppendEscaped(value.string_value(), &out);
      return out;
    }
  }
  return "null";
}

std::string ItemToJson(const Item& item, int indent) {
  std::string out;
  AppendItemBody(item, indent, &out);
  return out;
}

std::string DocumentToJson(const Document& doc, int indent) {
  std::string out;
  AppendIndent(indent, &out);
  out += "{\n";
  AppendIndent(indent + 1, &out);
  out += "\"_id\": " + std::to_string(doc.id) + ",\n";
  AppendIndent(indent + 1, &out);
  out += "\"_version\": " + std::to_string(doc.version) + ",\n";
  AppendIndent(indent + 1, &out);
  out += "\"_kind\": ";
  AppendEscaped(doc.kind, &out);
  out += ",\n";
  AppendIndent(indent + 1, &out);
  out += "\"doc\": ";
  AppendItemBody(doc.root, indent + 1, &out);
  out += "\n";
  AppendIndent(indent, &out);
  out += "}";
  return out;
}

}  // namespace impliance::model
