#ifndef IMPLIANCE_MODEL_DOCUMENT_H_
#define IMPLIANCE_MODEL_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/item.h"

namespace impliance::model {

using DocId = uint64_t;
constexpr DocId kInvalidDocId = 0;

// Storage-management data classes (Section 3.4): user-added data needs the
// highest reliability; derived data (annotations, indexes, materialized
// views) can be re-created and may be replicated less.
enum class DocClass : uint8_t {
  kBase = 0,        // user-infused data
  kAnnotation = 1,  // discovery output referring to base documents
  kDerived = 2,     // materialized/consolidated data
};

// A typed reference from one document to another — the mechanism by which
// annotation documents point at the base documents they annotate, and by
// which discovered relationships (join indexes, entity links) are recorded
// (Figure 2).
struct DocRef {
  DocId target = kInvalidDocId;
  std::string relation;  // e.g. "annotates", "references_customer"
  std::string path;      // path within the target the ref is about (optional)
  uint32_t begin = 0;    // byte span in the target's text (optional)
  uint32_t end = 0;

  bool operator==(const DocRef& other) const {
    return target == other.target && relation == other.relation &&
           path == other.path && begin == other.begin && end == other.end;
  }
};

// The unit of storage and retrieval. Documents are immutable once persisted;
// a logical update creates a new version (Section 4). `kind` tags the source
// format/shape (e.g. "purchase_order.csv", "email") and is refined by the
// schema mapper into a canonical schema class.
struct Document {
  DocId id = kInvalidDocId;
  uint32_t version = 1;
  DocClass doc_class = DocClass::kBase;
  std::string kind;
  Item root;
  std::vector<DocRef> refs;

  // Full text of all string leaves (for keyword indexing / span annotation).
  std::string Text() const { return CollectText(root); }

  void Encode(std::string* dst) const;
  static bool Decode(std::string_view input, Document* out);

  bool operator==(const Document& other) const;
};

// Builders for common shapes.

// A flat record document: kind + (field, value) pairs under a "doc" root.
Document MakeRecordDocument(std::string kind,
                            std::vector<std::pair<std::string, Value>> fields);

// A free-text document with a "text" leaf and optional title.
Document MakeTextDocument(std::string kind, std::string title,
                          std::string body);

}  // namespace impliance::model

#endif  // IMPLIANCE_MODEL_DOCUMENT_H_
