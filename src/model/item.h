#ifndef IMPLIANCE_MODEL_ITEM_H_
#define IMPLIANCE_MODEL_ITEM_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/value.h"

namespace impliance::model {

// One node of a document tree. Every ingested object — a relational row, a
// CSV record, an XML element, an e-mail, free text — is mapped to a tree of
// Items ("schema per document", Section 3.2). A node carries a name, an
// optional scalar value, and children; this covers both record-like and
// markup-like shapes.
struct Item {
  std::string name;
  Value value;
  std::vector<Item> children;

  Item() = default;
  explicit Item(std::string n) : name(std::move(n)) {}
  Item(std::string n, Value v) : name(std::move(n)), value(std::move(v)) {}

  // Appends a scalar child and returns a reference to it.
  Item& AddChild(std::string child_name, Value child_value = Value::Null());

  // First child with the given name, or nullptr.
  const Item* FindChild(std::string_view child_name) const;
  Item* FindChild(std::string_view child_name);

  bool is_leaf() const { return children.empty(); }

  void Encode(std::string* dst) const;
  static bool Decode(std::string_view* input, Item* out);

  bool operator==(const Item& other) const;
};

// A (path, value) pair produced by flattening a document tree. Paths are
// slash-separated node names rooted at the document root, e.g.
// "/order/customer/name". Repeated siblings share the same path.
struct PathValue {
  std::string path;
  const Value* value;  // points into the traversed tree
};

// Flattens the tree rooted at `root` into every root-to-node path paired
// with that node's value (the paper indexes "every path in the document").
// Nodes with null values still contribute their path (structure search).
std::vector<PathValue> CollectPaths(const Item& root);

// Distinct paths only, sorted — the structural fingerprint used by the
// schema mapper to cluster documents with similar shape.
std::vector<std::string> CollectDistinctPaths(const Item& root);

// Value of the first node matching `path` (as produced by CollectPaths),
// or nullptr if absent.
const Value* ResolvePath(const Item& root, std::string_view path);

// All values matching `path` (repeated siblings).
std::vector<const Value*> ResolvePathAll(const Item& root,
                                         std::string_view path);

// Concatenation of every string leaf, separated by spaces — the document's
// full text for keyword indexing.
std::string CollectText(const Item& root);

}  // namespace impliance::model

#endif  // IMPLIANCE_MODEL_ITEM_H_
