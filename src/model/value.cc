#include "model/value.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace impliance::model {

ValueType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return is_timestamp_ ? ValueType::kTimestamp : ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

bool Value::bool_value() const {
  IMPLIANCE_CHECK(type() == ValueType::kBool);
  return std::get<bool>(repr_);
}

int64_t Value::int_value() const {
  IMPLIANCE_CHECK(type() == ValueType::kInt);
  return std::get<int64_t>(repr_);
}

double Value::double_value() const {
  IMPLIANCE_CHECK(type() == ValueType::kDouble);
  return std::get<double>(repr_);
}

const std::string& Value::string_value() const {
  IMPLIANCE_CHECK(type() == ValueType::kString);
  return std::get<std::string>(repr_);
}

int64_t Value::timestamp_value() const {
  IMPLIANCE_CHECK(type() == ValueType::kTimestamp);
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(repr_) ? 1.0 : 0.0;
    case ValueType::kInt:
    case ValueType::kTimestamp:
      return static_cast<double>(std::get<int64_t>(repr_));
    case ValueType::kDouble:
      return std::get<double>(repr_);
    default:
      return 0.0;
  }
}

std::string Value::AsString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(repr_) ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(repr_));
    case ValueType::kTimestamp: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "@%lld",
                    static_cast<long long>(std::get<int64_t>(repr_)));
      return buf;
    }
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(repr_));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(repr_);
  }
  return "";
}

int Value::Compare(const Value& other) const {
  // Numeric types compare by value across int/double/timestamp so that
  // index lookups work regardless of how ingestion typed a field.
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  ValueType ta = type();
  ValueType tb = other.type();
  if (ta != tb) return ta < tb ? -1 : 1;
  switch (ta) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = std::get<bool>(repr_);
      bool b = std::get<bool>(other.repr_);
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString: {
      int c = std::get<std::string>(repr_).compare(
          std::get<std::string>(other.repr_));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // numeric handled above
  }
}

uint64_t Value::HashValue() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x6e756c6c;
    case ValueType::kBool:
      return Mix64(std::get<bool>(repr_) ? 1 : 2);
    case ValueType::kInt:
    case ValueType::kTimestamp: {
      // Hash via double so 3 (int) and 3.0 (double) — which compare equal —
      // also hash equal, keeping hash joins consistent with Compare().
      double d = AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)) ^
                     0x496e74);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return Mix64(bits ^ 0x496e74);
    }
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)) ^
                     0x496e74);
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(d));
      return Mix64(bits ^ 0x496e74);
    }
    case ValueType::kString:
      return Hash64(std::get<std::string>(repr_));
  }
  return 0;
}

void Value::Encode(std::string* dst) const {
  dst->push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      dst->push_back(std::get<bool>(repr_) ? 1 : 0);
      break;
    case ValueType::kInt:
    case ValueType::kTimestamp:
      PutVarint64(dst, ZigZagEncode(std::get<int64_t>(repr_)));
      break;
    case ValueType::kDouble: {
      double d = std::get<double>(repr_);
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(d));
      PutFixed64(dst, bits);
      break;
    }
    case ValueType::kString:
      PutLengthPrefixed(dst, std::get<std::string>(repr_));
      break;
  }
}

bool Value::Decode(std::string_view* input, Value* out) {
  if (input->empty()) return false;
  ValueType type = static_cast<ValueType>((*input)[0]);
  input->remove_prefix(1);
  switch (type) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kBool: {
      if (input->empty()) return false;
      bool b = (*input)[0] != 0;
      input->remove_prefix(1);
      *out = Value::Bool(b);
      return true;
    }
    case ValueType::kInt:
    case ValueType::kTimestamp: {
      uint64_t z;
      if (!GetVarint64(input, &z)) return false;
      int64_t v = ZigZagDecode(z);
      *out = type == ValueType::kInt ? Value::Int(v) : Value::Timestamp(v);
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return false;
      double d;
      __builtin_memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string_view s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *out = Value::String(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

namespace {

bool LooksLikeDate(std::string_view text, int64_t* micros) {
  // Accepts YYYY-MM-DD; encodes as days-since-epoch-ish microseconds.
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return false;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return false;
  }
  int year = (text[0] - '0') * 1000 + (text[1] - '0') * 100 +
             (text[2] - '0') * 10 + (text[3] - '0');
  int month = (text[5] - '0') * 10 + (text[6] - '0');
  int day = (text[8] - '0') * 10 + (text[9] - '0');
  if (month < 1 || month > 12 || day < 1 || day > 31) return false;
  // Simplified civil-to-epoch conversion (30.44-day months would skew
  // ordering; use a proper days-from-civil algorithm).
  int y = year;
  int m = month;
  if (m <= 2) {
    y -= 1;
    m += 12;
  }
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  int64_t yoe = y - era * 400;
  int64_t doy = (153 * (m - 3) + 2) / 5 + day - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  int64_t days = era * 146097 + doe - 719468;
  *micros = days * 86400LL * 1000000LL;
  return true;
}

}  // namespace

Value ParseValue(std::string_view text) {
  if (text.empty()) return Value::Null();
  if (text == "true") return Value::Bool(true);
  if (text == "false") return Value::Bool(false);
  if (text == "null") return Value::Null();

  int64_t date_micros;
  if (LooksLikeDate(text, &date_micros)) return Value::Timestamp(date_micros);

  // Integer?
  {
    int64_t v;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && ptr == text.data() + text.size()) {
      return Value::Int(v);
    }
  }
  // Double?
  {
    double v;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec == std::errc() && ptr == text.data() + text.size()) {
      return Value::Double(v);
    }
  }
  return Value::String(std::string(text));
}

}  // namespace impliance::model
