#include "model/view.h"

#include <map>
#include <set>

#include "common/string_util.h"

namespace impliance::model {

int ViewDef::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Row DocumentToRow(const ViewDef& view, const Document& doc) {
  Row row;
  row.reserve(view.columns.size());
  for (const ViewColumn& col : view.columns) {
    const Value* v = ResolvePath(doc.root, col.path);
    row.push_back(v == nullptr ? Value::Null() : *v);
  }
  return row;
}

ViewDef InferView(std::string name, std::string kind,
                  const std::vector<const Document*>& sample) {
  ViewDef view;
  view.name = std::move(name);
  view.kind = std::move(kind);

  // Collect every leaf path seen in the sample, preserving first-seen order.
  std::vector<std::string> ordered_paths;
  std::set<std::string> seen;
  for (const Document* doc : sample) {
    for (const PathValue& pv : CollectPaths(doc->root)) {
      if (pv.value->is_null()) continue;  // structural interior node
      if (seen.insert(pv.path).second) ordered_paths.push_back(pv.path);
    }
  }

  // Column names: last path segment, falling back to the full path (with
  // slashes turned into underscores) when two paths share a leaf name.
  std::map<std::string, int> leaf_counts;
  for (const std::string& path : ordered_paths) {
    std::vector<std::string> segs = Split(path, '/');
    leaf_counts[segs.back()]++;
  }
  for (const std::string& path : ordered_paths) {
    std::vector<std::string> segs = Split(path, '/');
    std::string col_name = segs.back();
    if (leaf_counts[col_name] > 1) {
      col_name.clear();
      for (const std::string& seg : segs) {
        if (seg.empty()) continue;
        if (!col_name.empty()) col_name += '_';
        col_name += seg;
      }
    }
    view.columns.push_back(ViewColumn{col_name, path});
  }
  return view;
}

}  // namespace impliance::model
