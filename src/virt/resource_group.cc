#include "virt/resource_group.h"

#include <algorithm>

#include "common/logging.h"

namespace impliance::virt {

ResourceGroup* ResourceGroup::AddChild(std::string name) {
  IMPLIANCE_CHECK(resources_.empty())
      << "group " << name_ << " holds resources; cannot become interior";
  children_.push_back(std::make_unique<ResourceGroup>(std::move(name)));
  children_.back()->parent_ = this;
  return children_.back().get();
}

void ResourceGroup::AddResource(uint32_t id, cluster::NodeKind kind) {
  IMPLIANCE_CHECK(is_leaf()) << "resources live in leaf groups only";
  resources_.push_back(Resource{id, kind, false});
}

bool ResourceGroup::RemoveResource(uint32_t id) {
  auto it = std::find_if(resources_.begin(), resources_.end(),
                         [id](const Resource& r) { return r.id == id; });
  if (it == resources_.end()) return false;
  resources_.erase(it);
  return true;
}

std::optional<uint32_t> ResourceGroup::AllocateLocal(cluster::NodeKind kind) {
  for (Resource& resource : resources_) {
    if (resource.kind == kind && !resource.in_use) {
      resource.in_use = true;
      return resource.id;
    }
  }
  return std::nullopt;
}

bool ResourceGroup::Release(uint32_t id) {
  for (Resource& resource : resources_) {
    if (resource.id == id && resource.in_use) {
      resource.in_use = false;
      return true;
    }
  }
  return false;
}

std::optional<ResourceGroup::Resource> ResourceGroup::Donate(
    cluster::NodeKind kind) {
  for (size_t i = 0; i < resources_.size(); ++i) {
    if (resources_[i].kind == kind && !resources_[i].in_use) {
      Resource donated = resources_[i];
      resources_.erase(resources_.begin() + i);
      return donated;
    }
  }
  return std::nullopt;
}

void ResourceGroup::Receive(Resource resource) {
  IMPLIANCE_CHECK(is_leaf());
  resource.in_use = false;
  resources_.push_back(resource);
}

size_t ResourceGroup::CountFree(cluster::NodeKind kind) const {
  size_t count = 0;
  for (const Resource& resource : resources_) {
    if (resource.kind == kind && !resource.in_use) ++count;
  }
  for (const auto& child : children_) count += child->CountFree(kind);
  return count;
}

size_t ResourceGroup::CountTotal(cluster::NodeKind kind) const {
  size_t count = 0;
  for (const Resource& resource : resources_) {
    if (resource.kind == kind) ++count;
  }
  for (const auto& child : children_) count += child->CountTotal(kind);
  return count;
}

std::vector<ResourceGroup*> ResourceGroup::Leaves() {
  std::vector<ResourceGroup*> leaves;
  if (is_leaf()) {
    leaves.push_back(this);
    return leaves;
  }
  for (const auto& child : children_) {
    std::vector<ResourceGroup*> sub = child->Leaves();
    leaves.insert(leaves.end(), sub.begin(), sub.end());
  }
  return leaves;
}

}  // namespace impliance::virt
