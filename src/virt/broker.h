#ifndef IMPLIANCE_VIRT_BROKER_H_
#define IMPLIANCE_VIRT_BROKER_H_

#include <cstdint>
#include <optional>

#include "virt/resource_group.h"

namespace impliance::virt {

// Brokers "facilitate the transfer of resources between groups": when a
// group loses a resource it contacts a broker to acquire one from a group
// willing to relinquish it (Section 3.4).
//
// Two search strategies, ablated in experiment E8:
//   kFlat         — one global broker scans every leaf group.
//   kHierarchical — search the requester's siblings first, escalating one
//                   level at a time; locality keeps the number of groups
//                   inspected small as the hierarchy grows.
class Broker {
 public:
  enum class Mode { kFlat, kHierarchical };

  struct Stats {
    uint64_t requests = 0;
    uint64_t satisfied = 0;
    uint64_t groups_inspected = 0;  // management-message proxy
    uint64_t escalations = 0;       // hierarchical only
  };

  Broker(ResourceGroup* root, Mode mode) : root_(root), mode_(mode) {}

  // Finds a donor leaf group with a free resource of `kind` and transfers
  // it into `requester`. Returns the resource id, or nullopt if the whole
  // hierarchy is out of spares.
  std::optional<uint32_t> Acquire(ResourceGroup* requester,
                                  cluster::NodeKind kind);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  std::optional<uint32_t> AcquireFlat(ResourceGroup* requester,
                                      cluster::NodeKind kind);
  std::optional<uint32_t> AcquireHierarchical(ResourceGroup* requester,
                                              cluster::NodeKind kind);
  // Transfers a free resource from any leaf under `scope` (excluding
  // `requester`) into `requester`; counts inspected groups.
  std::optional<uint32_t> TransferWithin(ResourceGroup* scope,
                                         ResourceGroup* requester,
                                         cluster::NodeKind kind);

  ResourceGroup* root_;
  Mode mode_;
  Stats stats_;
};

}  // namespace impliance::virt

#endif  // IMPLIANCE_VIRT_BROKER_H_
