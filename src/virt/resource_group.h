#ifndef IMPLIANCE_VIRT_RESOURCE_GROUP_H_
#define IMPLIANCE_VIRT_RESOURCE_GROUP_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/node.h"

namespace impliance::virt {

// A group of tightly-coupled nodes assigned the role of cluster, grid, or
// data storage service (Section 3.4). Groups form a hierarchy: leaves hold
// actual resources, interior groups aggregate for macro-level scheduling.
class ResourceGroup {
 public:
  struct Resource {
    uint32_t id = 0;
    cluster::NodeKind kind = cluster::NodeKind::kData;
    bool in_use = false;
  };

  explicit ResourceGroup(std::string name) : name_(std::move(name)) {}

  ResourceGroup(const ResourceGroup&) = delete;
  ResourceGroup& operator=(const ResourceGroup&) = delete;

  const std::string& name() const { return name_; }
  ResourceGroup* parent() const { return parent_; }
  bool is_leaf() const { return children_.empty(); }

  ResourceGroup* AddChild(std::string name);
  const std::vector<std::unique_ptr<ResourceGroup>>& children() const {
    return children_;
  }

  // Leaf-only resource management.
  void AddResource(uint32_t id, cluster::NodeKind kind);
  bool RemoveResource(uint32_t id);

  // Takes a free local resource (marks it in-use); nullopt if none free.
  std::optional<uint32_t> AllocateLocal(cluster::NodeKind kind);
  // Releases an in-use local resource back to free.
  bool Release(uint32_t id);
  // Detaches a FREE resource so it can be transferred to another group.
  std::optional<Resource> Donate(cluster::NodeKind kind);
  void Receive(Resource resource);

  // Counts over this subtree.
  size_t CountFree(cluster::NodeKind kind) const;
  size_t CountTotal(cluster::NodeKind kind) const;

  // Every leaf group in this subtree, depth-first.
  std::vector<ResourceGroup*> Leaves();

 private:
  std::string name_;
  ResourceGroup* parent_ = nullptr;
  std::vector<std::unique_ptr<ResourceGroup>> children_;
  std::vector<Resource> resources_;  // leaf only
};

}  // namespace impliance::virt

#endif  // IMPLIANCE_VIRT_RESOURCE_GROUP_H_
