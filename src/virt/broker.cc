#include "virt/broker.h"

#include "obs/metrics.h"

namespace impliance::virt {

namespace {
// Process-wide broker telemetry: the resource-broker hierarchy is a
// self-management component (Section 3.4/5), so its activity feeds the
// observability registry alongside per-instance Stats.
struct BrokerMetrics {
  obs::Counter* requests;
  obs::Counter* satisfied;
  obs::Counter* groups_inspected;
  obs::Gauge* unsatisfied;
};
BrokerMetrics& Metrics() {
  static BrokerMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Global();
    return BrokerMetrics{registry.GetCounter("virt.broker.requests"),
                         registry.GetCounter("virt.broker.satisfied"),
                         registry.GetCounter("virt.broker.groups_inspected"),
                         registry.GetGauge("virt.broker.unsatisfied")};
  }();
  return metrics;
}
}  // namespace

std::optional<uint32_t> Broker::Acquire(ResourceGroup* requester,
                                        cluster::NodeKind kind) {
  ++stats_.requests;
  Metrics().requests->Increment();
  // Local spare first: no broker involvement needed.
  if (std::optional<uint32_t> local = requester->AllocateLocal(kind)) {
    ++stats_.satisfied;
    Metrics().satisfied->Increment();
    return local;
  }
  const uint64_t inspected_before = stats_.groups_inspected;
  std::optional<uint32_t> id = mode_ == Mode::kFlat
                                   ? AcquireFlat(requester, kind)
                                   : AcquireHierarchical(requester, kind);
  Metrics().groups_inspected->Increment(stats_.groups_inspected -
                                        inspected_before);
  if (id.has_value()) {
    ++stats_.satisfied;
    Metrics().satisfied->Increment();
  } else {
    // Depth of unmet demand: how starved the hierarchy currently is.
    Metrics().unsatisfied->Add(1);
  }
  return id;
}

std::optional<uint32_t> Broker::TransferWithin(ResourceGroup* scope,
                                               ResourceGroup* requester,
                                               cluster::NodeKind kind) {
  for (ResourceGroup* leaf : scope->Leaves()) {
    if (leaf == requester) continue;
    ++stats_.groups_inspected;
    if (std::optional<ResourceGroup::Resource> donated = leaf->Donate(kind)) {
      requester->Receive(*donated);
      // The freshly received resource is immediately allocated.
      return requester->AllocateLocal(kind);
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> Broker::AcquireFlat(ResourceGroup* requester,
                                            cluster::NodeKind kind) {
  return TransferWithin(root_, requester, kind);
}

std::optional<uint32_t> Broker::AcquireHierarchical(ResourceGroup* requester,
                                                    cluster::NodeKind kind) {
  // Walk up the hierarchy, widening the search scope one ancestor at a
  // time. Each widening only inspects the *new* subtrees (the ancestor's
  // other children), never re-scanning where we already looked.
  ResourceGroup* already_searched = requester;
  for (ResourceGroup* scope = requester->parent(); scope != nullptr;
       scope = scope->parent()) {
    ++stats_.escalations;
    for (const auto& child : scope->children()) {
      if (child.get() == already_searched) continue;
      if (std::optional<uint32_t> id =
              TransferWithin(child.get(), requester, kind)) {
        return id;
      }
    }
    already_searched = scope;
  }
  return std::nullopt;
}

}  // namespace impliance::virt
