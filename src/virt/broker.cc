#include "virt/broker.h"

namespace impliance::virt {

std::optional<uint32_t> Broker::Acquire(ResourceGroup* requester,
                                        cluster::NodeKind kind) {
  ++stats_.requests;
  // Local spare first: no broker involvement needed.
  if (std::optional<uint32_t> local = requester->AllocateLocal(kind)) {
    ++stats_.satisfied;
    return local;
  }
  std::optional<uint32_t> id = mode_ == Mode::kFlat
                                   ? AcquireFlat(requester, kind)
                                   : AcquireHierarchical(requester, kind);
  if (id.has_value()) ++stats_.satisfied;
  return id;
}

std::optional<uint32_t> Broker::TransferWithin(ResourceGroup* scope,
                                               ResourceGroup* requester,
                                               cluster::NodeKind kind) {
  for (ResourceGroup* leaf : scope->Leaves()) {
    if (leaf == requester) continue;
    ++stats_.groups_inspected;
    if (std::optional<ResourceGroup::Resource> donated = leaf->Donate(kind)) {
      requester->Receive(*donated);
      // The freshly received resource is immediately allocated.
      return requester->AllocateLocal(kind);
    }
  }
  return std::nullopt;
}

std::optional<uint32_t> Broker::AcquireFlat(ResourceGroup* requester,
                                            cluster::NodeKind kind) {
  return TransferWithin(root_, requester, kind);
}

std::optional<uint32_t> Broker::AcquireHierarchical(ResourceGroup* requester,
                                                    cluster::NodeKind kind) {
  // Walk up the hierarchy, widening the search scope one ancestor at a
  // time. Each widening only inspects the *new* subtrees (the ancestor's
  // other children), never re-scanning where we already looked.
  ResourceGroup* already_searched = requester;
  for (ResourceGroup* scope = requester->parent(); scope != nullptr;
       scope = scope->parent()) {
    ++stats_.escalations;
    for (const auto& child : scope->children()) {
      if (child.get() == already_searched) continue;
      if (std::optional<uint32_t> id =
              TransferWithin(child.get(), requester, kind)) {
        return id;
      }
    }
    already_searched = scope;
  }
  return std::nullopt;
}

}  // namespace impliance::virt
