#include "virt/execution_manager.h"

#include <condition_variable>

#include "common/clock.h"

namespace impliance::virt {

void ExecutionManager::SubmitBackground(std::function<void()> task) {
  pool_.Submit(std::move(task), ThreadPool::Priority::kLow);
}

void ExecutionManager::RunInteractive(std::function<void()> task) {
  Stopwatch watch;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  // Without priority scheduling, interactive queries queue FIFO behind
  // whatever background work is already waiting.
  const ThreadPool::Priority priority = priority_scheduling_
                                            ? ThreadPool::Priority::kHigh
                                            : ThreadPool::Priority::kLow;
  pool_.Submit(
      [&task, &done_mutex, &done_cv, &done] {
        task();
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          done = true;
        }
        done_cv.notify_one();
      },
      priority);
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&done] { return done; });
  }
  std::lock_guard<std::mutex> lock(mutex_);
  latencies_.Add(watch.ElapsedMillis());
}

}  // namespace impliance::virt
