#include "virt/execution_manager.h"

#include <condition_variable>

#include "common/clock.h"
#include "obs/metrics.h"

namespace impliance::virt {

namespace {
// Appliance-wide view of the background/interactive queue: the execution
// manager is the paper's Section 3.4 "execution management" component, so
// its queue depth is the canonical load signal for the stats surface.
obs::Gauge* PendingGauge() {
  static obs::Gauge* gauge =
      obs::Registry::Global().GetGauge("virt.execution.pending_tasks");
  return gauge;
}
}  // namespace

void ExecutionManager::SubmitBackground(std::function<void()> task) {
  pool_.Submit(std::move(task), ThreadPool::Priority::kLow);
  PendingGauge()->Set(static_cast<int64_t>(pool_.pending_tasks()));
}

void ExecutionManager::RunInteractive(std::function<void()> task) {
  Stopwatch watch;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  // Without priority scheduling, interactive queries queue FIFO behind
  // whatever background work is already waiting.
  const ThreadPool::Priority priority = priority_scheduling_
                                            ? ThreadPool::Priority::kHigh
                                            : ThreadPool::Priority::kLow;
  pool_.Submit(
      [&task, &done_mutex, &done_cv, &done] {
        task();
        {
          std::lock_guard<std::mutex> lock(done_mutex);
          done = true;
        }
        done_cv.notify_one();
      },
      priority);
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&done] { return done; });
  }
  latencies_.Add(watch.ElapsedMillis());
  PendingGauge()->Set(static_cast<int64_t>(pool_.pending_tasks()));
}

}  // namespace impliance::virt
