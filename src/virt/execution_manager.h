#ifndef IMPLIANCE_VIRT_EXECUTION_MANAGER_H_
#define IMPLIANCE_VIRT_EXECUTION_MANAGER_H_

#include <functional>
#include <memory>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace impliance::virt {

// Execution management (Section 3.4): "managing queues of long-running
// analysis tasks and properly interleaving these analysis tasks with the
// execution of queries with more stringent response-time requirements."
// Interactive work runs at high priority ahead of queued background
// discovery; the `priority_scheduling` knob exists so experiment E11 can
// measure what happens without it (plain FIFO).
class ExecutionManager {
 public:
  ExecutionManager(size_t num_threads, bool priority_scheduling)
      : priority_scheduling_(priority_scheduling), pool_(num_threads) {}

  // Enqueues long-running analysis work (annotation passes, mining).
  void SubmitBackground(std::function<void()> task);

  // Runs an interactive query: blocks until done, records its latency
  // (queue wait + execution) in the interactive histogram.
  void RunInteractive(std::function<void()> task);

  void WaitIdle() { pool_.WaitIdle(); }

  // Latency of interactive tasks, milliseconds. A bounded log-scale
  // histogram snapshot: the manager sits on the interactive hot path, so
  // it must not accumulate one sample per query forever.
  obs::HistogramSnapshot interactive_latency_ms() const {
    return latencies_.Snapshot();
  }

  size_t pending_tasks() const { return pool_.pending_tasks(); }

 private:
  bool priority_scheduling_;
  ThreadPool pool_;
  obs::BoundedHistogram latencies_;
};

}  // namespace impliance::virt

#endif  // IMPLIANCE_VIRT_EXECUTION_MANAGER_H_
