#ifndef IMPLIANCE_VIRT_STORAGE_MANAGER_H_
#define IMPLIANCE_VIRT_STORAGE_MANAGER_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "model/document.h"

namespace impliance::virt {

// Autonomic storage management (Section 3.4): decides "how much to
// replicate the data for reliability" by data class — user-added data gets
// the most copies; derived data (annotations, consolidated documents) can
// be re-created and gets fewer — and repairs redundancy after failures
// without an administrator turning RAID/replication knobs.
class StorageManager {
 public:
  struct Policy {
    size_t base_copies = 3;        // user data: highest reliability
    size_t derived_copies = 2;     // materialized/consolidated data
    size_t annotation_copies = 1;  // cheaply re-creatable
  };

  struct RepairReport {
    size_t nodes_detected_down = 0;
    size_t docs_under_replicated_before = 0;
    size_t docs_under_replicated_after = 0;
    // Documents ReReplicate attempted but could not bring back to their
    // desired copy count (judged against the live directory, so a source
    // holder dying mid-pass shows up here instead of faking completion).
    size_t docs_unrestored = 0;
    uint64_t bytes_copied = 0;
    double repair_millis = 0;
  };

  StorageManager(cluster::SimulatedCluster* cluster, const Policy& policy)
      : cluster_(cluster), policy_(policy) {}

  size_t CopiesFor(model::DocClass doc_class) const;

  // Ingest under the class policy.
  Result<model::DocId> Store(model::Document doc);

  // One autonomic maintenance cycle: detect failures, fail ownership over,
  // re-replicate to policy.
  RepairReport RunRepairCycle();

 private:
  cluster::SimulatedCluster* cluster_;
  Policy policy_;
};

}  // namespace impliance::virt

#endif  // IMPLIANCE_VIRT_STORAGE_MANAGER_H_
