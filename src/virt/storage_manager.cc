#include "virt/storage_manager.h"

#include "common/clock.h"

namespace impliance::virt {

size_t StorageManager::CopiesFor(model::DocClass doc_class) const {
  switch (doc_class) {
    case model::DocClass::kBase:
      return policy_.base_copies;
    case model::DocClass::kDerived:
      return policy_.derived_copies;
    case model::DocClass::kAnnotation:
      return policy_.annotation_copies;
  }
  return policy_.base_copies;
}

Result<model::DocId> StorageManager::Store(model::Document doc) {
  const size_t copies = CopiesFor(doc.doc_class);
  return cluster_->Ingest(std::move(doc), copies);
}

StorageManager::RepairReport StorageManager::RunRepairCycle() {
  RepairReport report;
  Stopwatch watch;
  report.nodes_detected_down = cluster_->DetectFailures().size();
  const size_t total = cluster_->num_documents();
  report.docs_under_replicated_before =
      total - cluster_->num_fully_replicated_documents();
  const cluster::SimulatedCluster::ReReplicateReport rere =
      cluster_->ReReplicate();
  report.bytes_copied = rere.bytes_copied;
  report.docs_unrestored = rere.docs_unrestored;
  report.docs_under_replicated_after =
      total - cluster_->num_fully_replicated_documents();
  report.repair_millis = watch.ElapsedMillis();
  return report;
}

}  // namespace impliance::virt
