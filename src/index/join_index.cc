#include "index/join_index.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

namespace impliance::index {

void JoinIndex::AddEdge(model::DocId src, model::DocId dst,
                        std::string_view relation, double confidence) {
  std::vector<Edge>& out_edges = out_[src];
  for (Edge& edge : out_edges) {
    if (edge.dst == dst && edge.relation == relation) {
      edge.confidence = std::max(edge.confidence, confidence);
      for (Edge& in_edge : in_[dst]) {
        if (in_edge.src == src && in_edge.relation == relation) {
          in_edge.confidence = edge.confidence;
        }
      }
      return;
    }
  }
  Edge edge{src, dst, std::string(relation), confidence};
  out_edges.push_back(edge);
  in_[dst].push_back(edge);
  relation_counts_[edge.relation]++;
  ++num_edges_;
}

std::vector<JoinIndex::Edge> JoinIndex::EdgesFrom(
    model::DocId src, std::string_view relation) const {
  auto it = out_.find(src);
  if (it == out_.end()) return {};
  if (relation.empty()) return it->second;
  std::vector<Edge> filtered;
  for (const Edge& edge : it->second) {
    if (edge.relation == relation) filtered.push_back(edge);
  }
  return filtered;
}

std::vector<JoinIndex::Edge> JoinIndex::EdgesTo(
    model::DocId dst, std::string_view relation) const {
  auto it = in_.find(dst);
  if (it == in_.end()) return {};
  if (relation.empty()) return it->second;
  std::vector<Edge> filtered;
  for (const Edge& edge : it->second) {
    if (edge.relation == relation) filtered.push_back(edge);
  }
  return filtered;
}

std::vector<model::DocId> JoinIndex::Neighbors(model::DocId doc) const {
  std::set<model::DocId> neighbors;
  if (auto it = out_.find(doc); it != out_.end()) {
    for (const Edge& edge : it->second) neighbors.insert(edge.dst);
  }
  if (auto it = in_.find(doc); it != in_.end()) {
    for (const Edge& edge : it->second) neighbors.insert(edge.src);
  }
  return std::vector<model::DocId>(neighbors.begin(), neighbors.end());
}

std::optional<std::vector<JoinIndex::Edge>> JoinIndex::FindConnection(
    model::DocId from, model::DocId to, size_t max_depth) const {
  if (from == to) return std::vector<Edge>{};
  // BFS recording the edge that discovered each node.
  std::unordered_map<model::DocId, Edge> parent_edge;
  std::unordered_map<model::DocId, model::DocId> parent;
  std::deque<std::pair<model::DocId, size_t>> frontier{{from, 0}};
  std::set<model::DocId> visited{from};

  auto expand = [&](model::DocId node, size_t depth,
                    const Edge& edge, model::DocId next) -> bool {
    if (visited.count(next)) return false;
    visited.insert(next);
    parent_edge[next] = edge;
    parent[next] = node;
    if (next == to) return true;
    frontier.emplace_back(next, depth + 1);
    return false;
  };

  bool found = false;
  while (!frontier.empty() && !found) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_depth) continue;
    if (auto it = out_.find(node); it != out_.end()) {
      for (const Edge& edge : it->second) {
        if (expand(node, depth, edge, edge.dst)) {
          found = true;
          break;
        }
      }
    }
    if (found) break;
    if (auto it = in_.find(node); it != in_.end()) {
      for (const Edge& edge : it->second) {
        if (expand(node, depth, edge, edge.src)) {
          found = true;
          break;
        }
      }
    }
  }
  if (!found) return std::nullopt;

  std::vector<Edge> path;
  for (model::DocId node = to; node != from; node = parent[node]) {
    path.push_back(parent_edge[node]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<model::DocId> JoinIndex::TransitiveClosure(
    model::DocId seed, size_t max_depth) const {
  std::set<model::DocId> visited{seed};
  std::deque<std::pair<model::DocId, size_t>> frontier{{seed, 0}};
  while (!frontier.empty()) {
    auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= max_depth) continue;
    for (model::DocId next : Neighbors(node)) {
      if (visited.insert(next).second) {
        frontier.emplace_back(next, depth + 1);
      }
    }
  }
  return std::vector<model::DocId>(visited.begin(), visited.end());
}

std::vector<std::string> JoinIndex::Relations() const {
  std::vector<std::string> relations;
  relations.reserve(relation_counts_.size());
  for (const auto& [relation, count] : relation_counts_) {
    relations.push_back(relation);
  }
  return relations;
}

}  // namespace impliance::index
