#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/clock.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace impliance::index {

namespace {

constexpr double kBm25K1 = 1.2;
constexpr double kBm25B = 0.75;
constexpr model::DocId kSentinelDoc = std::numeric_limits<model::DocId>::max();

// Safety margin for floating-point pruning: a document is abandoned only
// when its score ceiling is at least this far below the heap threshold, so
// summation-order rounding (~1 ulp) can never prune a doc the exhaustive
// scorer would keep. Docs inside the margin are scored fully, which costs
// nothing measurable and keeps block-max top-k ≡ exhaustive top-k.
constexpr double kPruneEpsilon = 1e-6;

double Bm25(double tf, double doc_len, double idf, double avg_len) {
  const double denom =
      tf + kBm25K1 * (1.0 - kBm25B + kBm25B * doc_len / avg_len);
  return idf * tf * (kBm25K1 + 1.0) / denom;
}

// Per-posting score ceiling for a block: BM25 is increasing in tf and
// decreasing in doc length, so (max_tf, min_len) dominates every posting.
// min_len == 0 means unknown, which degenerates to the largest bound.
double BlockBound(const PostingBlock& block, double idf, double avg_len) {
  return Bm25(static_cast<double>(block.max_tf),
              static_cast<double>(block.min_len), idf, avg_len);
}

// First block whose last_doc can contain `doc`.
size_t FindBlockIndex(const std::vector<PostingBlock>& blocks,
                      model::DocId doc) {
  auto it = std::lower_bound(
      blocks.begin(), blocks.end(), doc,
      [](const PostingBlock& b, model::DocId d) { return b.last_doc < d; });
  return static_cast<size_t>(it - blocks.begin());
}

// Re-encodes a decoded (and already modified) block into one block, or an
// even split when it outgrew kMaxPostings. `carried_min_len` is a valid
// lower bound on every entry's doc length (carried from the source block,
// folded with any newly inserted doc); `dirty` marks the bounds as
// possibly loose so the owner re-tightens them lazily.
std::vector<PostingBlock> EncodeChunks(const DecodedBlock& dec,
                                       uint32_t carried_min_len, bool dirty) {
  const size_t total = dec.docs.size();
  IMPLIANCE_CHECK(total > 0);
  const size_t num_chunks =
      total <= PostingBlock::kMaxPostings
          ? 1
          : (total + PostingBlock::kTargetPostings - 1) /
                PostingBlock::kTargetPostings;
  const size_t chunk_size = (total + num_chunks - 1) / num_chunks;
  std::vector<PostingBlock> out;
  out.reserve(num_chunks);
  for (size_t start = 0; start < total; start += chunk_size) {
    const size_t end = std::min(total, start + chunk_size);
    PostingBlock block;
    for (size_t i = start; i < end; ++i) {
      AppendPosting(&block, dec.docs[i],
                    static_cast<uint32_t>(dec.positions[i].size()),
                    dec.positions[i].data());
    }
    block.min_len = carried_min_len;
    block.dirty = dirty;
    out.push_back(std::move(block));
  }
  return out;
}

// Forward-only reader over one term's block list. Skips whole blocks from
// metadata (first_doc/last_doc) and only decodes a block when a posting
// inside it is actually needed. Invariant: when the current block is not
// decoded, doc() == that block's first_doc.
class Cursor {
 public:
  Cursor(TermId tid, const std::vector<PostingBlock>* blocks,
         uint64_t doc_count, double idf, double avg_len,
         InvertedIndex::SearchStats* stats)
      : tid_(tid),
        blocks_(blocks),
        doc_count_(doc_count),
        idf_(idf),
        avg_len_(avg_len),
        stats_(stats) {
    doc_ = blocks_->empty() ? kSentinelDoc : (*blocks_)[0].first_doc;
    for (const PostingBlock& b : *blocks_) {
      term_bound_ = std::max(term_bound_, BlockBound(b, idf_, avg_len_));
    }
  }

  TermId tid() const { return tid_; }
  model::DocId doc() const { return doc_; }
  bool AtEnd() const { return doc_ == kSentinelDoc; }
  double term_bound() const { return term_bound_; }
  uint64_t doc_count() const { return doc_count_; }

  double ScoreAt(double doc_len) {
    EnsureDecoded();
    return Bm25(static_cast<double>(dec_.freqs[i_]), doc_len, idf_, avg_len_);
  }

  void Next() {
    if (AtEnd()) return;
    EnsureDecoded();
    ++i_;
    if (i_ < dec_.docs.size()) {
      doc_ = dec_.docs[i_];
      return;
    }
    ++block_;
    decoded_ = false;
    i_ = 0;
    doc_ =
        block_ < blocks_->size() ? (*blocks_)[block_].first_doc : kSentinelDoc;
  }

  // Advances to the first posting with doc id >= target.
  void SeekTo(model::DocId target) {
    if (doc_ >= target) return;  // covers AtEnd
    const std::vector<PostingBlock>& blocks = *blocks_;
    if (blocks[block_].last_doc < target) {
      auto it = std::lower_bound(
          blocks.begin() + static_cast<ptrdiff_t>(block_) + 1, blocks.end(),
          target, [](const PostingBlock& b, model::DocId d) {
            return b.last_doc < d;
          });
      const size_t nb = static_cast<size_t>(it - blocks.begin());
      if (stats_ != nullptr) {
        // Blocks in [block_, nb) are left behind; all but a decoded
        // current block were skipped purely from metadata.
        stats_->blocks_skipped += (nb - block_) - (decoded_ ? 1 : 0);
      }
      block_ = nb;
      decoded_ = false;
      i_ = 0;
      if (block_ == blocks.size()) {
        doc_ = kSentinelDoc;
        return;
      }
      if (blocks[block_].first_doc >= target) {
        doc_ = blocks[block_].first_doc;
        return;
      }
    }
    // Target lies inside the current block (last_doc >= target).
    EnsureDecoded();
    // Gallop forward from the current posting, then binary-search the
    // bracketed range; intersections over clustered ids stay near O(1).
    size_t lo = i_;
    size_t step = 1;
    while (lo + step < dec_.docs.size() && dec_.docs[lo + step] < target) {
      lo += step;
      step *= 2;
    }
    const size_t hi = std::min(dec_.docs.size(), lo + step + 1);
    auto pit = std::lower_bound(dec_.docs.begin() + static_cast<ptrdiff_t>(lo),
                                dec_.docs.begin() + static_cast<ptrdiff_t>(hi),
                                target);
    i_ = static_cast<size_t>(pit - dec_.docs.begin());
    IMPLIANCE_CHECK(i_ < dec_.docs.size());
    doc_ = dec_.docs[i_];
  }

  // Score ceiling of this term for doc `target` without decoding anything:
  // the block-max bound of the one block that could contain it, or 0 when
  // the cursor already proves the doc absent. Never moves the cursor.
  double UpperBoundFor(model::DocId target) const {
    if (AtEnd() || doc_ > target) return 0.0;
    const std::vector<PostingBlock>& blocks = *blocks_;
    if (blocks[block_].last_doc >= target) {
      return BlockBound(blocks[block_], idf_, avg_len_);
    }
    auto it = std::lower_bound(
        blocks.begin() + static_cast<ptrdiff_t>(block_) + 1, blocks.end(),
        target, [](const PostingBlock& b, model::DocId d) {
          return b.last_doc < d;
        });
    if (it == blocks.end() || it->first_doc > target) return 0.0;
    return BlockBound(*it, idf_, avg_len_);
  }

  // Token positions of the current posting (cursor must sit on a real
  // posting). Position entries are located once per block via an offsets
  // table, so repeated candidates in one block decode in O(entry) instead
  // of rescanning the whole positions buffer.
  void CurrentPositions(std::vector<uint32_t>* out) {
    EnsureDecoded();
    const PostingBlock& b = (*blocks_)[block_];
    if (!pos_offsets_valid_) {
      IMPLIANCE_CHECK(BuildPositionOffsets(b, &pos_offsets_));
      pos_offsets_valid_ = true;
    }
    IMPLIANCE_CHECK(DecodePositionsAt(b, pos_offsets_[i_], out));
  }

 private:
  void EnsureDecoded() {
    if (decoded_) return;
    IMPLIANCE_CHECK(block_ < blocks_->size());
    IMPLIANCE_CHECK(DecodeDocsFreqs((*blocks_)[block_], &dec_));
    decoded_ = true;
    pos_offsets_valid_ = false;
    i_ = 0;
    if (stats_ != nullptr) ++stats_->blocks_decoded;
  }

  TermId tid_;
  const std::vector<PostingBlock>* blocks_;
  uint64_t doc_count_;
  double idf_;
  double avg_len_;
  double term_bound_ = 0.0;
  size_t block_ = 0;
  size_t i_ = 0;
  bool decoded_ = false;
  model::DocId doc_ = kSentinelDoc;
  DecodedBlock dec_;
  std::vector<size_t> pos_offsets_;
  bool pos_offsets_valid_ = false;
  InvertedIndex::SearchStats* stats_;
};

// Registry metrics resolved once; recording is then lock-free on the
// serving hot path (same pattern as the server's per-op histograms).
obs::BoundedHistogram* SearchLatencyHistogram() {
  static obs::BoundedHistogram* h =
      obs::Registry::Global().GetHistogram("index.search.latency_us");
  return h;
}
obs::Counter* PostingsScoredCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("index.search.postings_scored");
  return c;
}
obs::Counter* BlocksSkippedCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("index.search.blocks_skipped");
  return c;
}

}  // namespace

// ------------------------------------------------------------ maintenance

void InvertedIndex::AddDocument(model::DocId id, std::string_view text) {
  IMPLIANCE_CHECK(doc_terms_.find(id) == doc_terms_.end())
      << "document " << id << " already indexed";

  // Group positions per interned term; one posting per distinct term.
  std::unordered_map<TermId, std::vector<uint32_t>> term_positions;
  uint32_t pos = 0;
  ForEachToken(text, [&](std::string_view token) {
    term_positions[InternTerm(token)].push_back(pos++);
  });
  doc_lengths_[id] = pos;
  total_tokens_ += pos;

  std::vector<TermId>& forward = doc_terms_[id];
  forward.reserve(term_positions.size());
  for (const auto& [tid, positions] : term_positions) {
    forward.push_back(tid);
    InsertPosting(tid, id, positions, pos);
    ++num_postings_;
  }
  RefreshDirtyTerms();
}

void InvertedIndex::RemoveDocument(model::DocId id) {
  auto fwd_it = doc_terms_.find(id);
  if (fwd_it == doc_terms_.end()) return;
  const std::vector<TermId> tids = std::move(fwd_it->second);
  doc_terms_.erase(fwd_it);
  total_tokens_ -= doc_lengths_.at(id);
  doc_lengths_.erase(id);
  for (TermId tid : tids) {
    RemovePosting(tid, id);
    --num_postings_;
  }
  RefreshDirtyTerms();
}

TermId InvertedIndex::InternTerm(std::string_view term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  const TermId tid = static_cast<TermId>(terms_.size());
  term_ids_.emplace(std::string(term), tid);
  terms_.emplace_back();
  return tid;
}

TermId InvertedIndex::FindTerm(std::string_view term) const {
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? kNoTerm : it->second;
}

void InvertedIndex::InsertPosting(TermId tid, model::DocId doc,
                                  const std::vector<uint32_t>& positions,
                                  uint32_t doc_len) {
  TermPostings& list = terms_[tid];
  if (list.doc_count == 0) ++live_terms_;
  const uint32_t tf = static_cast<uint32_t>(positions.size());

  if (list.blocks.empty() || list.blocks.back().last_doc < doc) {
    // Append fast path: ids usually arrive ascending.
    if (list.blocks.empty() ||
        list.blocks.back().count >= PostingBlock::kTargetPostings) {
      list.blocks.emplace_back();
    }
    PostingBlock& block = list.blocks.back();
    AppendPosting(&block, doc, tf, positions.data());
    NotePostingDocLen(&block, doc_len);
  } else {
    // Out-of-order id (a re-added version): rewrite the one block that
    // must hold it, splitting when it outgrows the cap.
    const size_t bi = FindBlockIndex(list.blocks, doc);
    PostingBlock& old = list.blocks[bi];
    DecodedBlock dec;
    IMPLIANCE_CHECK(DecodeDocsFreqs(old, &dec));
    IMPLIANCE_CHECK(DecodePositions(old, &dec));
    const size_t at = static_cast<size_t>(
        std::lower_bound(dec.docs.begin(), dec.docs.end(), doc) -
        dec.docs.begin());
    IMPLIANCE_CHECK(at == dec.docs.size() || dec.docs[at] != doc);
    dec.docs.insert(dec.docs.begin() + static_cast<ptrdiff_t>(at), doc);
    dec.freqs.insert(dec.freqs.begin() + static_cast<ptrdiff_t>(at), tf);
    dec.positions.insert(dec.positions.begin() + static_cast<ptrdiff_t>(at),
                         positions);
    const uint32_t carried_min =
        old.min_len == 0 ? doc_len : std::min(old.min_len, doc_len);
    const bool was_dirty = old.dirty;
    std::vector<PostingBlock> rebuilt =
        EncodeChunks(dec, carried_min, was_dirty);
    list.blocks[bi] = std::move(rebuilt[0]);
    list.blocks.insert(list.blocks.begin() + static_cast<ptrdiff_t>(bi) + 1,
                       std::make_move_iterator(rebuilt.begin() + 1),
                       std::make_move_iterator(rebuilt.end()));
  }
  ++list.doc_count;
}

void InvertedIndex::RemovePosting(TermId tid, model::DocId doc) {
  TermPostings& list = terms_[tid];
  const size_t bi = FindBlockIndex(list.blocks, doc);
  IMPLIANCE_CHECK(bi < list.blocks.size());
  PostingBlock& old = list.blocks[bi];
  IMPLIANCE_CHECK(old.first_doc <= doc);
  if (old.count == 1) {
    IMPLIANCE_CHECK(old.first_doc == doc);
    list.blocks.erase(list.blocks.begin() + static_cast<ptrdiff_t>(bi));
  } else {
    DecodedBlock dec;
    IMPLIANCE_CHECK(DecodeDocsFreqs(old, &dec));
    IMPLIANCE_CHECK(DecodePositions(old, &dec));
    const size_t at = static_cast<size_t>(
        std::lower_bound(dec.docs.begin(), dec.docs.end(), doc) -
        dec.docs.begin());
    IMPLIANCE_CHECK(at < dec.docs.size() && dec.docs[at] == doc);
    dec.docs.erase(dec.docs.begin() + static_cast<ptrdiff_t>(at));
    dec.freqs.erase(dec.freqs.begin() + static_cast<ptrdiff_t>(at));
    dec.positions.erase(dec.positions.begin() + static_cast<ptrdiff_t>(at));
    // The surviving postings are a subset, so the old block's bounds stay
    // valid (merely loose); re-encode with them carried over and queue a
    // lazy exact refresh instead of paying doc-length lookups here.
    std::vector<PostingBlock> rebuilt =
        EncodeChunks(dec, old.min_len, /*dirty=*/true);
    IMPLIANCE_CHECK(rebuilt.size() == 1);
    list.blocks[bi] = std::move(rebuilt[0]);
    if (!list.queued_dirty) {
      list.queued_dirty = true;
      dirty_terms_.push_back(tid);
    }
  }
  --list.doc_count;
  if (list.doc_count == 0) {
    --live_terms_;
    list.blocks.clear();
    list.blocks.shrink_to_fit();
  }
}

void InvertedIndex::RefreshDirtyTerms() {
  // Bounded per write op: stale bounds are valid (only loose), so this is
  // a tightening pass, not a correctness requirement. Done on the write
  // path so Search stays const and race-free under concurrent readers.
  constexpr size_t kTermBudget = 4;
  DecodedBlock dec;
  for (size_t n = 0; n < kTermBudget && !dirty_terms_.empty(); ++n) {
    const TermId tid = dirty_terms_.back();
    dirty_terms_.pop_back();
    TermPostings& list = terms_[tid];
    list.queued_dirty = false;
    for (PostingBlock& block : list.blocks) {
      if (!block.dirty) continue;
      IMPLIANCE_CHECK(DecodeDocsFreqs(block, &dec));
      uint32_t max_tf = 0;
      uint32_t min_len = 0;
      for (size_t i = 0; i < dec.docs.size(); ++i) {
        max_tf = std::max(max_tf, dec.freqs[i]);
        const uint32_t len = doc_lengths_.at(dec.docs[i]);
        if (min_len == 0 || len < min_len) min_len = len;
      }
      block.max_tf = max_tf;
      block.min_len = min_len;
      block.dirty = false;
    }
  }
}

// ------------------------------------------------------------------ query

double InvertedIndex::Idf(size_t doc_freq) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(doc_freq);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double InvertedIndex::AvgDocLen() const {
  return doc_lengths_.empty()
             ? 1.0
             : static_cast<double>(total_tokens_) /
                   static_cast<double>(doc_lengths_.size());
}

std::vector<TermId> InvertedIndex::LiveQueryTerms(
    std::string_view query) const {
  std::vector<TermId> tids;
  ForEachToken(query, [&](std::string_view token) {
    const TermId tid = FindTerm(token);
    if (tid == kNoTerm || terms_[tid].doc_count == 0) return;
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  });
  return tids;
}

bool InvertedIndex::RequiredQueryTerms(std::string_view query,
                                       std::vector<TermId>* out) const {
  out->clear();
  bool all_live = true;
  ForEachToken(query, [&](std::string_view token) {
    const TermId tid = FindTerm(token);
    if (tid == kNoTerm || terms_[tid].doc_count == 0) {
      all_live = false;
      return;
    }
    if (std::find(out->begin(), out->end(), tid) == out->end()) {
      out->push_back(tid);
    }
  });
  return all_live;
}

bool InvertedIndex::OrderedQueryTerms(std::string_view phrase,
                                      std::vector<TermId>* out) const {
  out->clear();
  bool all_live = true;
  ForEachToken(phrase, [&](std::string_view token) {
    const TermId tid = FindTerm(token);
    if (tid == kNoTerm || terms_[tid].doc_count == 0) {
      all_live = false;
      return;
    }
    out->push_back(tid);
  });
  return all_live;
}

std::vector<InvertedIndex::SearchResult> InvertedIndex::Search(
    std::string_view query, size_t k) const {
  obs::ScopedSpan span("index.search");
  const uint64_t start_us = NowMicros();
  SearchStats stats;
  std::vector<SearchResult> results = Search(query, k, &stats);
  SearchLatencyHistogram()->Add(static_cast<double>(NowMicros() - start_us));
  PostingsScoredCounter()->Increment(stats.postings_scored);
  BlocksSkippedCounter()->Increment(stats.blocks_skipped);
  return results;
}

std::vector<InvertedIndex::SearchResult> InvertedIndex::Search(
    std::string_view query, size_t k, SearchStats* stats) const {
  SearchStats scratch;
  if (stats == nullptr) stats = &scratch;
  if (k == 0) return {};
  const std::vector<TermId> tids = LiveQueryTerms(query);
  if (tids.empty()) return {};
  const double avg_len = AvgDocLen();

  std::vector<Cursor> cursors;
  cursors.reserve(tids.size());
  for (TermId tid : tids) {
    const TermPostings& list = terms_[tid];
    cursors.emplace_back(tid, &list.blocks, list.doc_count,
                         Idf(list.doc_count), avg_len, stats);
  }
  // MaxScore layout: ascending score ceilings; the prefix [0,
  // first_essential) is non-essential once its combined ceiling cannot
  // reach the heap threshold on its own.
  std::sort(cursors.begin(), cursors.end(),
            [](const Cursor& a, const Cursor& b) {
              return a.term_bound() < b.term_bound();
            });
  const size_t n = cursors.size();
  std::vector<double> prefix(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += cursors[i].term_bound();
    prefix[i] = acc;
  }
  // Canonical summation order (ascending TermId): final scores are built
  // by summing per-term contributions in this order, bit-identical to
  // SearchExhaustive, so near-tie rankings cannot diverge between the
  // two paths from floating-point association alone.
  std::vector<size_t> canonical(n);
  for (size_t i = 0; i < n; ++i) canonical[i] = i;
  std::sort(canonical.begin(), canonical.end(), [&](size_t a, size_t b) {
    return cursors[a].tid() < cursors[b].tid();
  });
  std::vector<double> contrib(n);

  // Bounded k-heap: front() is the current kth (worst kept) result.
  auto better = [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  };
  std::vector<SearchResult> heap;
  heap.reserve(std::min(k, static_cast<size_t>(1024)));
  double threshold = 0.0;  // meaningful only once the heap is full
  size_t first_essential = 0;
  auto repartition = [&] {
    while (first_essential < n &&
           prefix[first_essential] + kPruneEpsilon < threshold) {
      ++first_essential;
    }
  };

  while (first_essential < n) {
    // Pivot: the smallest current doc among essential cursors.
    model::DocId d = kSentinelDoc;
    for (size_t j = first_essential; j < n; ++j) {
      d = std::min(d, cursors[j].doc());
    }
    if (d == kSentinelDoc) break;
    const double doc_len = static_cast<double>(doc_lengths_.at(d));
    const bool full = heap.size() >= k;

    std::fill(contrib.begin(), contrib.end(), 0.0);
    double score = 0.0;  // running sum, used only for pruning decisions
    for (size_t j = first_essential; j < n; ++j) {
      Cursor& c = cursors[j];
      if (c.doc() == d) {
        contrib[j] = c.ScoreAt(doc_len);
        score += contrib[j];
        ++stats->postings_scored;
        c.Next();
      }
    }
    // Non-essential terms, highest ceiling first: probe only while the
    // doc can still reach the threshold.
    bool viable = true;
    for (size_t j = first_essential; j-- > 0;) {
      Cursor& c = cursors[j];
      if (full) {
        if (score + prefix[j] + kPruneEpsilon < threshold) {
          viable = false;
          break;
        }
        // Block-max refinement: replace term j's global ceiling with the
        // ceiling of the one block that could contain d.
        const double block_bound = c.UpperBoundFor(d);
        const double rest = j > 0 ? prefix[j - 1] : 0.0;
        if (score + rest + block_bound + kPruneEpsilon < threshold) {
          viable = false;
          break;
        }
        if (block_bound == 0.0) continue;  // d provably absent from term j
      }
      c.SeekTo(d);
      if (c.doc() == d) {
        contrib[j] = c.ScoreAt(doc_len);
        score += contrib[j];
        ++stats->postings_scored;
      }
    }
    if (viable) {
      // Exact score, summed in canonical order (x + 0.0 == x bit-exact,
      // so absent terms don't perturb the chain).
      double exact = 0.0;
      for (size_t idx : canonical) exact += contrib[idx];
      if (!full) {
        heap.push_back(SearchResult{d, exact});
        std::push_heap(heap.begin(), heap.end(), better);
        if (heap.size() >= k) {
          threshold = heap.front().score;
          repartition();
        }
      } else if (exact > heap.front().score ||
                 (exact == heap.front().score && d < heap.front().doc)) {
        std::pop_heap(heap.begin(), heap.end(), better);
        heap.back() = SearchResult{d, exact};
        std::push_heap(heap.begin(), heap.end(), better);
        if (heap.front().score > threshold) {
          threshold = heap.front().score;
          repartition();
        }
      }
    }
  }

  std::sort(heap.begin(), heap.end(), better);
  return heap;
}

std::vector<InvertedIndex::SearchResult> InvertedIndex::SearchExhaustive(
    std::string_view query, size_t k) const {
  if (k == 0) return {};
  std::vector<TermId> tids = LiveQueryTerms(query);
  if (tids.empty()) return {};
  // Ascending TermId: per-doc contributions then accumulate in the same
  // order as Search's canonical summation, so the two paths produce
  // bit-identical scores (and therefore identical near-tie rankings).
  std::sort(tids.begin(), tids.end());

  const double avg_len = AvgDocLen();
  std::unordered_map<model::DocId, double> scores;
  DecodedBlock dec;
  for (TermId tid : tids) {
    const TermPostings& list = terms_[tid];
    const double idf = Idf(list.doc_count);
    for (const PostingBlock& block : list.blocks) {
      IMPLIANCE_CHECK(DecodeDocsFreqs(block, &dec));
      for (size_t i = 0; i < dec.docs.size(); ++i) {
        const double len = static_cast<double>(doc_lengths_.at(dec.docs[i]));
        scores[dec.docs[i]] +=
            Bm25(static_cast<double>(dec.freqs[i]), len, idf, avg_len);
      }
    }
  }

  std::vector<SearchResult> results;
  results.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    results.push_back(SearchResult{doc, score});
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

std::vector<model::DocId> InvertedIndex::SearchAll(
    std::string_view query) const {
  return SearchAll(query, nullptr);
}

std::vector<model::DocId> InvertedIndex::SearchAll(std::string_view query,
                                                   SearchStats* stats) const {
  std::vector<TermId> tids;
  if (!RequiredQueryTerms(query, &tids) || tids.empty()) return {};
  const double avg_len = AvgDocLen();

  std::vector<Cursor> cursors;
  cursors.reserve(tids.size());
  for (TermId tid : tids) {
    const TermPostings& list = terms_[tid];
    cursors.emplace_back(tid, &list.blocks, list.doc_count,
                         Idf(list.doc_count), avg_len, stats);
  }
  // Rarest term drives; the others follow with galloping seeks.
  std::sort(cursors.begin(), cursors.end(),
            [](const Cursor& a, const Cursor& b) {
              return a.doc_count() < b.doc_count();
            });

  std::vector<model::DocId> result;
  Cursor& driver = cursors[0];
  model::DocId candidate = driver.doc();
  while (candidate != kSentinelDoc) {
    bool all_match = true;
    for (size_t j = 1; j < cursors.size(); ++j) {
      cursors[j].SeekTo(candidate);
      if (cursors[j].doc() != candidate) {
        if (cursors[j].AtEnd()) return result;
        driver.SeekTo(cursors[j].doc());
        candidate = driver.doc();
        all_match = false;
        break;
      }
    }
    if (all_match) {
      result.push_back(candidate);
      driver.Next();
      candidate = driver.doc();
    }
  }
  return result;
}

std::vector<model::DocId> InvertedIndex::SearchPhrase(
    std::string_view phrase) const {
  std::vector<TermId> ordered;
  if (!OrderedQueryTerms(phrase, &ordered) || ordered.empty()) return {};

  // Unique cursors plus a phrase-slot -> cursor mapping (repeated terms
  // share one cursor and its decoded positions).
  std::vector<TermId> unique;
  std::vector<size_t> slot_cursor(ordered.size());
  for (size_t i = 0; i < ordered.size(); ++i) {
    auto it = std::find(unique.begin(), unique.end(), ordered[i]);
    if (it == unique.end()) {
      slot_cursor[i] = unique.size();
      unique.push_back(ordered[i]);
    } else {
      slot_cursor[i] = static_cast<size_t>(it - unique.begin());
    }
  }

  const double avg_len = AvgDocLen();
  std::vector<Cursor> cursors;
  cursors.reserve(unique.size());
  for (TermId tid : unique) {
    const TermPostings& list = terms_[tid];
    cursors.emplace_back(tid, &list.blocks, list.doc_count,
                         Idf(list.doc_count), avg_len, nullptr);
  }

  std::vector<model::DocId> result;
  if (unique.size() == 1 && ordered.size() == 1) {
    // Single-token phrase: every doc holding the term matches.
    for (Cursor& c = cursors[0]; !c.AtEnd(); c.Next()) {
      result.push_back(c.doc());
    }
    return result;
  }

  // Conjunctive candidates driven by the rarest term; adjacency verified
  // from the already-positioned cursors (no per-candidate re-search of
  // the posting lists).
  size_t driver_idx = 0;
  for (size_t u = 1; u < cursors.size(); ++u) {
    if (cursors[u].doc_count() < cursors[driver_idx].doc_count()) {
      driver_idx = u;
    }
  }
  std::vector<std::vector<uint32_t>> positions(cursors.size());
  std::vector<size_t> ptr(ordered.size());
  Cursor& driver = cursors[driver_idx];
  model::DocId candidate = driver.doc();
  while (candidate != kSentinelDoc) {
    bool all_match = true;
    for (size_t u = 0; u < cursors.size(); ++u) {
      if (u == driver_idx) continue;
      cursors[u].SeekTo(candidate);
      if (cursors[u].doc() != candidate) {
        if (cursors[u].AtEnd()) return result;
        driver.SeekTo(cursors[u].doc());
        candidate = driver.doc();
        all_match = false;
        break;
      }
    }
    if (!all_match) continue;

    // Every cursor sits on `candidate`; verify adjacency with one
    // monotone pointer per phrase slot (starts ascend, so pointers only
    // move forward).
    for (size_t u = 0; u < cursors.size(); ++u) {
      cursors[u].CurrentPositions(&positions[u]);
    }
    std::fill(ptr.begin(), ptr.end(), 0);
    bool matched = false;
    bool exhausted = false;
    for (uint32_t start : positions[slot_cursor[0]]) {
      bool ok = true;
      for (size_t i = 1; i < ordered.size(); ++i) {
        const std::vector<uint32_t>& p = positions[slot_cursor[i]];
        const uint32_t want = start + static_cast<uint32_t>(i);
        while (ptr[i] < p.size() && p[ptr[i]] < want) ++ptr[i];
        if (ptr[i] == p.size()) {
          ok = false;
          exhausted = true;  // later starts only need larger positions
          break;
        }
        if (p[ptr[i]] != want) {
          ok = false;
          break;
        }
      }
      if (ok) {
        matched = true;
        break;
      }
      if (exhausted) break;
    }
    if (matched) result.push_back(candidate);
    driver.Next();
    candidate = driver.doc();
  }
  return result;
}

std::vector<model::DocId> InvertedIndex::DocsWithTerm(
    std::string_view term) const {
  const std::string lowered = ToLower(term);
  const TermId tid = FindTerm(lowered);
  if (tid == kNoTerm || terms_[tid].doc_count == 0) return {};
  const TermPostings& list = terms_[tid];
  std::vector<model::DocId> docs;
  docs.reserve(list.doc_count);
  DecodedBlock dec;
  for (const PostingBlock& block : list.blocks) {
    IMPLIANCE_CHECK(DecodeDocsFreqs(block, &dec));
    docs.insert(docs.end(), dec.docs.begin(), dec.docs.end());
  }
  return docs;
}

size_t InvertedIndex::num_blocks() const {
  size_t total = 0;
  for (const TermPostings& list : terms_) total += list.blocks.size();
  return total;
}

size_t InvertedIndex::num_dirty_blocks() const {
  size_t total = 0;
  for (const TermPostings& list : terms_) {
    for (const PostingBlock& block : list.blocks) {
      if (block.dirty) ++total;
    }
  }
  return total;
}

}  // namespace impliance::index
