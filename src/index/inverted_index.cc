#include "index/inverted_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace impliance::index {

namespace {
constexpr double kBm25K1 = 1.2;
constexpr double kBm25B = 0.75;
}  // namespace

void InvertedIndex::AddDocument(model::DocId id, std::string_view text) {
  IMPLIANCE_CHECK(doc_terms_.find(id) == doc_terms_.end())
      << "document " << id << " already indexed";

  std::vector<std::string> tokens = Tokenize(text);
  doc_lengths_[id] = static_cast<uint32_t>(tokens.size());
  total_tokens_ += tokens.size();

  // Group positions per term first so each term gets one posting.
  std::unordered_map<std::string, std::vector<uint32_t>> term_positions;
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    term_positions[tokens[pos]].push_back(pos);
  }
  std::vector<std::string>& forward = doc_terms_[id];
  forward.reserve(term_positions.size());
  for (auto& [term, positions] : term_positions) {
    forward.push_back(term);
    PostingList& list = postings_[term];
    Posting posting{id, std::move(positions)};
    // Ids usually arrive ascending; keep the list sorted either way.
    if (list.empty() || list.back().doc < id) {
      list.push_back(std::move(posting));
    } else {
      auto it = std::lower_bound(
          list.begin(), list.end(), id,
          [](const Posting& p, model::DocId d) { return p.doc < d; });
      list.insert(it, std::move(posting));
    }
    ++num_postings_;
  }
}

void InvertedIndex::RemoveDocument(model::DocId id) {
  auto fwd_it = doc_terms_.find(id);
  if (fwd_it == doc_terms_.end()) return;
  for (const std::string& term : fwd_it->second) {
    auto list_it = postings_.find(term);
    IMPLIANCE_CHECK(list_it != postings_.end());
    PostingList& list = list_it->second;
    auto it = std::lower_bound(
        list.begin(), list.end(), id,
        [](const Posting& p, model::DocId d) { return p.doc < d; });
    IMPLIANCE_CHECK(it != list.end() && it->doc == id);
    list.erase(it);
    --num_postings_;
    if (list.empty()) postings_.erase(list_it);
  }
  total_tokens_ -= doc_lengths_.at(id);
  doc_lengths_.erase(id);
  doc_terms_.erase(fwd_it);
}

double InvertedIndex::Idf(size_t doc_freq) const {
  const double n = static_cast<double>(num_documents());
  const double df = static_cast<double>(doc_freq);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<InvertedIndex::SearchResult> InvertedIndex::Search(
    std::string_view query, size_t k) const {
  std::vector<std::string> terms = Tokenize(query);
  if (terms.empty() || k == 0) return {};
  // Deduplicate query terms (BM25 treats repeats as one term here).
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  const double avg_len =
      doc_lengths_.empty() ? 1.0
                           : static_cast<double>(total_tokens_) /
                                 static_cast<double>(doc_lengths_.size());

  std::unordered_map<model::DocId, double> scores;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double idf = Idf(it->second.size());
    for (const Posting& p : it->second) {
      const double tf = static_cast<double>(p.positions.size());
      const double len = static_cast<double>(doc_lengths_.at(p.doc));
      const double denom =
          tf + kBm25K1 * (1.0 - kBm25B + kBm25B * len / avg_len);
      scores[p.doc] += idf * tf * (kBm25K1 + 1.0) / denom;
    }
  }

  std::vector<SearchResult> results;
  results.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    results.push_back(SearchResult{doc, score});
  }
  std::sort(results.begin(), results.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

std::vector<model::DocId> InvertedIndex::SearchAll(
    std::string_view query) const {
  std::vector<std::string> terms = Tokenize(query);
  if (terms.empty()) return {};
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::vector<model::DocId> result = DocsWithTerm(terms[0]);
  for (size_t i = 1; i < terms.size() && !result.empty(); ++i) {
    std::vector<model::DocId> next = DocsWithTerm(terms[i]);
    std::vector<model::DocId> merged;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

std::vector<model::DocId> InvertedIndex::SearchPhrase(
    std::string_view phrase) const {
  std::vector<std::string> terms = Tokenize(phrase);
  if (terms.empty()) return {};
  if (terms.size() == 1) return DocsWithTerm(terms[0]);

  // Candidates: conjunctive match, then verify adjacency via positions.
  std::vector<model::DocId> candidates = SearchAll(phrase);
  std::vector<model::DocId> result;
  for (model::DocId doc : candidates) {
    // Positions of the first term; then require each subsequent term at +i.
    const PostingList& first_list = postings_.at(terms[0]);
    auto first_it = std::lower_bound(
        first_list.begin(), first_list.end(), doc,
        [](const Posting& p, model::DocId d) { return p.doc < d; });
    IMPLIANCE_CHECK(first_it != first_list.end() && first_it->doc == doc);
    for (uint32_t start : first_it->positions) {
      bool match = true;
      for (size_t i = 1; i < terms.size(); ++i) {
        const PostingList& list = postings_.at(terms[i]);
        auto it = std::lower_bound(
            list.begin(), list.end(), doc,
            [](const Posting& p, model::DocId d) { return p.doc < d; });
        IMPLIANCE_CHECK(it != list.end() && it->doc == doc);
        if (!std::binary_search(it->positions.begin(), it->positions.end(),
                                start + static_cast<uint32_t>(i))) {
          match = false;
          break;
        }
      }
      if (match) {
        result.push_back(doc);
        break;
      }
    }
  }
  return result;
}

std::vector<model::DocId> InvertedIndex::DocsWithTerm(
    std::string_view term) const {
  std::string lowered = ToLower(term);
  auto it = postings_.find(lowered);
  if (it == postings_.end()) return {};
  std::vector<model::DocId> docs;
  docs.reserve(it->second.size());
  for (const Posting& p : it->second) docs.push_back(p.doc);
  return docs;
}

}  // namespace impliance::index
