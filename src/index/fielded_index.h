#ifndef IMPLIANCE_INDEX_FIELDED_INDEX_H_
#define IMPLIANCE_INDEX_FIELDED_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/inverted_index.h"
#include "model/document.h"

namespace impliance::index {

// Hierarchy-aware full-text index (Section 3.3: "for certain kinds of
// documents, the text indexer has to support hierarchies natively" —
// the Lucene/Indri extension the paper says it would need). Every string
// leaf of a document is indexed both into a global index (whole-document
// keyword search) and into a per-path index, so queries can be scoped to
// a field: "widget anywhere" vs "widget in /doc/subject".
//
// Not internally synchronized.
class FieldedTextIndex {
 public:
  // Indexes every string leaf of `doc` (document-wide and per path).
  void AddDocument(const model::Document& doc);
  void RemoveDocument(const model::Document& doc);

  // Document-wide BM25 top-k (same semantics as InvertedIndex::Search).
  std::vector<InvertedIndex::SearchResult> Search(std::string_view query,
                                                  size_t k) const;

  // BM25 top-k restricted to the text under `path`. Unknown paths return
  // nothing.
  std::vector<InvertedIndex::SearchResult> SearchField(std::string_view path,
                                                       std::string_view query,
                                                       size_t k) const;

  // Field-scoped conjunctive and phrase variants.
  std::vector<model::DocId> SearchFieldAll(std::string_view path,
                                           std::string_view query) const;
  std::vector<model::DocId> SearchFieldPhrase(std::string_view path,
                                              std::string_view phrase) const;

  // Paths that have any indexed text, sorted.
  std::vector<std::string> TextPaths() const;

  const InvertedIndex& global() const { return global_; }

 private:
  InvertedIndex global_;
  // Lazily created per-path indexes (only paths with string leaves).
  std::map<std::string, std::unique_ptr<InvertedIndex>, std::less<>> fields_;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_FIELDED_INDEX_H_
