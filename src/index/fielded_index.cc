#include "index/fielded_index.h"

#include "model/item.h"

namespace impliance::index {

namespace {

// Collects per-path text: repeated siblings' text concatenates under the
// same path (one field posting per document per path).
std::map<std::string, std::string> FieldTexts(const model::Document& doc) {
  std::map<std::string, std::string> texts;
  for (const model::PathValue& pv : model::CollectPaths(doc.root)) {
    if (!pv.value->is_string()) continue;
    std::string& text = texts[pv.path];
    if (!text.empty()) text.push_back(' ');
    text += pv.value->string_value();
  }
  return texts;
}

}  // namespace

void FieldedTextIndex::AddDocument(const model::Document& doc) {
  global_.AddDocument(doc.id, doc.Text());
  for (const auto& [path, text] : FieldTexts(doc)) {
    std::unique_ptr<InvertedIndex>& field = fields_[path];
    if (field == nullptr) field = std::make_unique<InvertedIndex>();
    field->AddDocument(doc.id, text);
  }
}

void FieldedTextIndex::RemoveDocument(const model::Document& doc) {
  if (global_.ContainsDocument(doc.id)) global_.RemoveDocument(doc.id);
  for (const auto& [path, text] : FieldTexts(doc)) {
    auto it = fields_.find(path);
    if (it != fields_.end()) it->second->RemoveDocument(doc.id);
  }
}

std::vector<InvertedIndex::SearchResult> FieldedTextIndex::Search(
    std::string_view query, size_t k) const {
  return global_.Search(query, k);
}

std::vector<InvertedIndex::SearchResult> FieldedTextIndex::SearchField(
    std::string_view path, std::string_view query, size_t k) const {
  auto it = fields_.find(path);
  if (it == fields_.end()) return {};
  return it->second->Search(query, k);
}

std::vector<model::DocId> FieldedTextIndex::SearchFieldAll(
    std::string_view path, std::string_view query) const {
  auto it = fields_.find(path);
  if (it == fields_.end()) return {};
  return it->second->SearchAll(query);
}

std::vector<model::DocId> FieldedTextIndex::SearchFieldPhrase(
    std::string_view path, std::string_view phrase) const {
  auto it = fields_.find(path);
  if (it == fields_.end()) return {};
  return it->second->SearchPhrase(phrase);
}

std::vector<std::string> FieldedTextIndex::TextPaths() const {
  std::vector<std::string> paths;
  paths.reserve(fields_.size());
  for (const auto& [path, field] : fields_) paths.push_back(path);
  return paths;
}

}  // namespace impliance::index
