#ifndef IMPLIANCE_INDEX_PATH_INDEX_H_
#define IMPLIANCE_INDEX_PATH_INDEX_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "model/document.h"

namespace impliance::index {

// Structural index: which documents contain which paths, plus a kind
// (schema-class) index. Supports structural search — "find documents that
// have a /doc/claim/procedure element" — independent of values, and drives
// view binding (all documents of a kind).
//
// Not internally synchronized.
class PathIndex {
 public:
  void AddDocument(const model::Document& doc);
  void RemoveDocument(const model::Document& doc);

  // Documents containing at least one node at `path`, ascending.
  std::vector<model::DocId> DocsWithPath(std::string_view path) const;

  // Documents of the given kind, ascending.
  std::vector<model::DocId> DocsOfKind(std::string_view kind) const;

  // Distinct paths under documents of `kind` (union over documents).
  std::vector<std::string> PathsOfKind(std::string_view kind) const;

  // All kinds seen, sorted.
  std::vector<std::string> Kinds() const;

  // All paths seen, sorted.
  std::vector<std::string> AllPaths() const;

  size_t num_paths() const { return path_docs_.size(); }

 private:
  static void EraseFrom(std::vector<model::DocId>* docs, model::DocId id);

  std::map<std::string, std::vector<model::DocId>, std::less<>> path_docs_;
  std::map<std::string, std::vector<model::DocId>, std::less<>> kind_docs_;
  std::map<std::string, std::map<std::string, size_t>, std::less<>>
      kind_paths_;  // kind -> path -> #docs containing it
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_PATH_INDEX_H_
