#include "index/value_index.h"

#include <algorithm>

#include "model/item.h"

namespace impliance::index {

void ValueIndex::AddDocument(const model::Document& doc) {
  for (const model::PathValue& pv : model::CollectPaths(doc.root)) {
    if (pv.value->is_null()) continue;
    trees_[pv.path].Insert(*pv.value, doc.id);
  }
}

void ValueIndex::RemoveDocument(const model::Document& doc) {
  for (const model::PathValue& pv : model::CollectPaths(doc.root)) {
    if (pv.value->is_null()) continue;
    auto it = trees_.find(pv.path);
    if (it != trees_.end()) it->second.Erase(*pv.value, doc.id);
  }
}

std::vector<model::DocId> ValueIndex::Lookup(std::string_view path,
                                             const model::Value& value) const {
  return Range(path, &value, true, &value, true);
}

std::vector<model::DocId> ValueIndex::Range(std::string_view path,
                                            const model::Value* lo,
                                            bool lo_inclusive,
                                            const model::Value* hi,
                                            bool hi_inclusive) const {
  auto it = trees_.find(path);
  if (it == trees_.end()) return {};
  std::vector<model::DocId> docs;
  it->second.ScanRange(lo, lo_inclusive, hi, hi_inclusive,
                       [&docs](const model::Value&, model::DocId doc) {
                         docs.push_back(doc);
                         return true;
                       });
  std::sort(docs.begin(), docs.end());
  docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  return docs;
}

void ValueIndex::Scan(
    std::string_view path,
    const std::function<bool(const model::Value&, model::DocId)>& fn) const {
  auto it = trees_.find(path);
  if (it == trees_.end()) return;
  it->second.ScanRange(nullptr, true, nullptr, true, fn);
}

std::vector<std::string> ValueIndex::Paths() const {
  std::vector<std::string> paths;
  paths.reserve(trees_.size());
  for (const auto& [path, tree] : trees_) paths.push_back(path);
  return paths;
}

size_t ValueIndex::num_entries() const {
  size_t total = 0;
  for (const auto& [path, tree] : trees_) total += tree.size();
  return total;
}

}  // namespace impliance::index
