#ifndef IMPLIANCE_INDEX_JOIN_INDEX_H_
#define IMPLIANCE_INDEX_JOIN_INDEX_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "model/document.h"

namespace impliance::index {

// Materialized relationships between documents. Section 3.2: "Discovered
// relationships can be stored as join indexes and utilized at query time."
// Edges are typed (relation name) and weighted (discovery confidence); the
// same structure also backs the graph query interface's connection search.
//
// Not internally synchronized.
class JoinIndex {
 public:
  struct Edge {
    model::DocId src = model::kInvalidDocId;
    model::DocId dst = model::kInvalidDocId;
    std::string relation;
    double confidence = 1.0;

    bool operator==(const Edge& other) const {
      return src == other.src && dst == other.dst &&
             relation == other.relation;
    }
  };

  // Inserts (or updates the confidence of) a directed edge.
  void AddEdge(model::DocId src, model::DocId dst, std::string_view relation,
               double confidence = 1.0);

  // Outgoing edges of `src`, optionally filtered by relation.
  std::vector<Edge> EdgesFrom(model::DocId src,
                              std::string_view relation = {}) const;

  // Incoming edges of `dst`, optionally filtered by relation.
  std::vector<Edge> EdgesTo(model::DocId dst,
                            std::string_view relation = {}) const;

  // Neighbors in either direction (deduplicated, ascending).
  std::vector<model::DocId> Neighbors(model::DocId doc) const;

  // Shortest undirected path between two documents (BFS over all relations),
  // as the sequence of edges traversed; nullopt if not connected within
  // `max_depth` hops. This answers the paper's "given two pieces of data,
  // ask how they are connected" (Section 3.2.1).
  std::optional<std::vector<Edge>> FindConnection(model::DocId from,
                                                  model::DocId to,
                                                  size_t max_depth) const;

  // Every document reachable from `seed` within `max_depth` undirected hops,
  // including the seed — the transitive closure needed by the legal
  // discovery use case (Section 2.1.3).
  std::vector<model::DocId> TransitiveClosure(model::DocId seed,
                                              size_t max_depth) const;

  size_t num_edges() const { return num_edges_; }
  std::vector<std::string> Relations() const;

 private:
  // src -> edges out; dst -> edges in (edge stored once in each map).
  std::map<model::DocId, std::vector<Edge>> out_;
  std::map<model::DocId, std::vector<Edge>> in_;
  std::map<std::string, size_t> relation_counts_;
  size_t num_edges_ = 0;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_JOIN_INDEX_H_
