#ifndef IMPLIANCE_INDEX_POSTING_BLOCK_H_
#define IMPLIANCE_INDEX_POSTING_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "model/document.h"

namespace impliance::index {

// One fixed-capacity block of a compressed posting list. Doc ids are
// delta+varint encoded (the first id in a block is absolute), term
// frequencies are one varint each, and token positions are a varint count
// followed by delta+varint offsets per posting. Alongside the bytes each
// block carries skip metadata — first/last doc id and the block-max
// ingredients (max_tf, min_len) — so readers can decide whether to decode
// or skip a whole block from the metadata alone.
//
// Block-max invariant: for every posting in the block, tf <= max_tf and
// doc_len >= min_len, so BM25(max_tf, min_len) computed with the current
// idf/avg-length upper-bounds every posting's contribution. Removals keep
// the invariant without touching metadata (a stale max_tf/min_len is
// merely looser, never wrong); `dirty` marks blocks whose bounds may be
// loose so the owner can re-tighten them lazily.
struct PostingBlock {
  // Append path cuts a new block at this many postings.
  static constexpr uint32_t kTargetPostings = 128;
  // Out-of-order inserts may grow a block past the target; a rewrite
  // splits it once it exceeds this.
  static constexpr uint32_t kMaxPostings = 192;

  std::string docs;       // delta+varint doc ids (first absolute)
  std::string freqs;      // varint term frequency per posting
  std::string positions;  // per posting: varint count, delta+varint offsets

  model::DocId first_doc = 0;
  model::DocId last_doc = 0;
  uint32_t count = 0;

  uint32_t max_tf = 0;   // >= every tf in the block
  uint32_t min_len = 0;  // <= every posting's doc length; 0 = unknown
  bool dirty = false;    // bounds may be loose (tightened lazily)
};

// Struct-of-arrays view of one decoded block.
struct DecodedBlock {
  std::vector<model::DocId> docs;
  std::vector<uint32_t> freqs;
  std::vector<std::vector<uint32_t>> positions;  // only via DecodePositions
};

// Appends one posting (doc must exceed last_doc; positions ascending).
// Maintains first/last/count/max_tf; doc length bookkeeping is separate
// (NotePostingDocLen) because rewrite paths do not always know lengths.
void AppendPosting(PostingBlock* block, model::DocId doc, uint32_t tf,
                   const uint32_t* positions);

// Folds one posting's doc length into min_len.
inline void NotePostingDocLen(PostingBlock* block, uint32_t doc_len) {
  if (block->min_len == 0 || doc_len < block->min_len) {
    block->min_len = doc_len;
  }
}

// Decodes doc ids + term frequencies. Returns false on malformed bytes
// (cannot happen for blocks this process encoded; callers CHECK).
bool DecodeDocsFreqs(const PostingBlock& block, DecodedBlock* out);

// Decodes every posting's position list into out->positions.
bool DecodePositions(const PostingBlock& block, DecodedBlock* out);

// Byte offset of each posting's entry within block.positions, so a single
// posting's positions can be decoded without scanning its predecessors
// again (phrase verification decodes a few postings per block).
bool BuildPositionOffsets(const PostingBlock& block,
                          std::vector<size_t>* offsets);

// Decodes the position list starting at `byte_offset` (from
// BuildPositionOffsets) into *out (cleared first).
bool DecodePositionsAt(const PostingBlock& block, size_t byte_offset,
                       std::vector<uint32_t>* out);

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_POSTING_BLOCK_H_
