#ifndef IMPLIANCE_INDEX_INVERTED_INDEX_H_
#define IMPLIANCE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/document.h"

namespace impliance::index {

// Positional full-text inverted index with BM25 ranking. Built from scratch
// (the paper would embed Lucene/Indri but notes the need to extend them);
// supports the two properties Section 3.3 calls out: incremental
// maintenance as annotation documents stream in, and top-k retrieval for
// the keyword interface. A small forward index (doc -> distinct terms)
// makes document removal — needed when a new version supersedes an old one —
// a targeted physical delete rather than a tombstone.
//
// Not internally synchronized; callers serialize writes against reads.
class InvertedIndex {
 public:
  struct SearchResult {
    model::DocId doc = model::kInvalidDocId;
    double score = 0.0;
  };

  // Tokenizes `text` and appends postings for document `id`. A document may
  // be indexed once; to replace it (new version), Remove then Add.
  void AddDocument(model::DocId id, std::string_view text);

  // Physically removes every posting of `id`. No-op for unknown ids.
  void RemoveDocument(model::DocId id);

  bool ContainsDocument(model::DocId id) const {
    return doc_terms_.count(id) > 0;
  }

  // Disjunctive BM25 top-k. Ties broken by doc id (ascending) so results
  // are deterministic.
  std::vector<SearchResult> Search(std::string_view query, size_t k) const;

  // Conjunctive match: ids of documents containing every query term,
  // ascending. Unranked.
  std::vector<model::DocId> SearchAll(std::string_view query) const;

  // Exact phrase match using token positions.
  std::vector<model::DocId> SearchPhrase(std::string_view phrase) const;

  // Documents containing `term` (single token), ascending.
  std::vector<model::DocId> DocsWithTerm(std::string_view term) const;

  size_t num_documents() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }
  uint64_t num_postings() const { return num_postings_; }

 private:
  struct Posting {
    model::DocId doc;
    std::vector<uint32_t> positions;  // token offsets, ascending
  };

  using PostingList = std::vector<Posting>;  // sorted by doc id

  double Idf(size_t doc_freq) const;

  std::unordered_map<std::string, PostingList> postings_;
  std::unordered_map<model::DocId, uint32_t> doc_lengths_;  // tokens per doc
  std::unordered_map<model::DocId, std::vector<std::string>> doc_terms_;
  uint64_t total_tokens_ = 0;
  uint64_t num_postings_ = 0;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_INVERTED_INDEX_H_
