#ifndef IMPLIANCE_INDEX_INVERTED_INDEX_H_
#define IMPLIANCE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/posting_block.h"
#include "model/document.h"

namespace impliance::index {

// Interned term identifier: index into the term table. Ids are stable for
// the life of the index (a term whose postings all vanish keeps its id).
using TermId = uint32_t;

// Positional full-text inverted index with BM25 ranking. Built from scratch
// (the paper would embed Lucene/Indri but notes the need to extend them);
// supports the two properties Section 3.3 calls out: incremental
// maintenance as annotation documents stream in, and top-k retrieval for
// the keyword interface.
//
// Storage: a term dictionary interns terms to TermIds; each term owns a
// block-compressed posting list — fixed-size blocks (~128 postings) of
// delta+varint doc ids, varint term frequencies, and delta+varint token
// positions, with per-block skip metadata (last_doc, block-max BM25
// ingredients). The forward index (doc -> distinct TermIds) makes document
// removal — needed when a new version supersedes an old one — a targeted
// physical delete rather than a tombstone.
//
// Serving: Search runs document-at-a-time top-k with MaxScore/block-max
// early termination — once the k-heap's threshold exceeds a term's score
// ceiling the term is only probed, and whole blocks are skipped from
// metadata alone. SearchExhaustive keeps the straight-line scorer as the
// reference path (equivalence tests and benchmark baseline).
//
// Not internally synchronized; callers serialize writes against reads.
// Concurrent reads are safe (Search/SearchAll/SearchPhrase never mutate).
class InvertedIndex {
 public:
  struct SearchResult {
    model::DocId doc = model::kInvalidDocId;
    double score = 0.0;
  };

  // Per-query work counters, filled by the stats overloads so tests and
  // benches can see early-termination effectiveness without the process-
  // wide metrics registry.
  struct SearchStats {
    uint64_t postings_scored = 0;  // postings whose BM25 term was evaluated
    uint64_t blocks_decoded = 0;
    uint64_t blocks_skipped = 0;   // blocks passed over without decoding
  };

  // Tokenizes `text` and appends postings for document `id`. A document may
  // be indexed once; to replace it (new version), Remove then Add.
  void AddDocument(model::DocId id, std::string_view text);

  // Physically removes every posting of `id`. No-op for unknown ids.
  void RemoveDocument(model::DocId id);

  bool ContainsDocument(model::DocId id) const {
    return doc_terms_.count(id) > 0;
  }

  // Disjunctive BM25 top-k with block-max early termination. Ties broken
  // by doc id (ascending) so results are deterministic.
  std::vector<SearchResult> Search(std::string_view query, size_t k) const;
  std::vector<SearchResult> Search(std::string_view query, size_t k,
                                   SearchStats* stats) const;

  // Reference scorer: exhaustively evaluates every posting of every query
  // term. Same contract as Search; exists as the equivalence oracle and
  // benchmark baseline for the early-termination path.
  std::vector<SearchResult> SearchExhaustive(std::string_view query,
                                             size_t k) const;

  // Conjunctive match: ids of documents containing every query term,
  // ascending. Unranked. Galloping skip-based intersection.
  std::vector<model::DocId> SearchAll(std::string_view query) const;
  std::vector<model::DocId> SearchAll(std::string_view query,
                                      SearchStats* stats) const;

  // Exact phrase match using token positions.
  std::vector<model::DocId> SearchPhrase(std::string_view phrase) const;

  // Documents containing `term` (single token), ascending.
  std::vector<model::DocId> DocsWithTerm(std::string_view term) const;

  size_t num_documents() const { return doc_lengths_.size(); }
  // Terms with at least one live posting.
  size_t num_terms() const { return live_terms_; }
  uint64_t num_postings() const { return num_postings_; }
  // Posting blocks across all terms (storage shape, for tests/bench).
  size_t num_blocks() const;
  // Blocks whose block-max metadata is pending a lazy re-tighten.
  size_t num_dirty_blocks() const;

 private:
  struct TermPostings {
    std::vector<PostingBlock> blocks;
    uint64_t doc_count = 0;  // live postings (== docs) in this list
    bool queued_dirty = false;
  };

  // Heterogeneous hashing so query-time lookups take string_views straight
  // from the tokenizer's reused buffer without materializing std::strings.
  struct TermHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
    size_t operator()(const std::string& s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  double Idf(size_t doc_freq) const;
  double AvgDocLen() const;

  TermId InternTerm(std::string_view term);
  // kNoTerm when the term was never seen.
  TermId FindTerm(std::string_view term) const;

  // Unique query terms that have live postings (unknown terms dropped —
  // disjunctive semantics).
  std::vector<TermId> LiveQueryTerms(std::string_view query) const;
  // Unique query terms; false when any token has no live postings
  // (conjunctive semantics: the result is necessarily empty).
  bool RequiredQueryTerms(std::string_view query,
                          std::vector<TermId>* out) const;
  // Terms in token order, duplicates preserved (phrase semantics); false
  // when any token has no live postings.
  bool OrderedQueryTerms(std::string_view phrase,
                         std::vector<TermId>* out) const;

  // Inserts a posting (append fast path; out-of-order ids rewrite the one
  // affected block, splitting it if it outgrows kMaxPostings).
  void InsertPosting(TermId tid, model::DocId doc,
                     const std::vector<uint32_t>& positions,
                     uint32_t doc_len);
  // Physically deletes `doc` from `tid`'s list, rewriting its block. The
  // rewritten block keeps loose-but-valid block-max bounds and is queued
  // for a lazy exact refresh.
  void RemovePosting(TermId tid, model::DocId doc);
  // Re-tightens block-max metadata for a bounded number of queued-dirty
  // terms; called from the write paths so Search stays const and
  // race-free under concurrent readers.
  void RefreshDirtyTerms();

  static constexpr TermId kNoTerm = ~TermId{0};

  std::unordered_map<std::string, TermId, TermHash, std::equal_to<>>
      term_ids_;
  std::vector<TermPostings> terms_;  // indexed by TermId
  std::vector<TermId> dirty_terms_;  // FIFO of lists with dirty blocks
  std::unordered_map<model::DocId, uint32_t> doc_lengths_;  // tokens per doc
  std::unordered_map<model::DocId, std::vector<TermId>> doc_terms_;
  uint64_t total_tokens_ = 0;
  uint64_t num_postings_ = 0;
  size_t live_terms_ = 0;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_INVERTED_INDEX_H_
