#include "index/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace impliance::index {

namespace {
// Max entries per node; split at overflow. Small enough to exercise deep
// trees in tests, large enough to be cache-friendly.
constexpr size_t kMaxEntries = 32;
}  // namespace

struct BPlusTree::Node {
  bool is_leaf = true;
  std::vector<BTreeEntry> entries;             // leaf: data; internal: separators
  std::vector<std::unique_ptr<Node>> children; // internal only: entries.size()+1
  Node* next = nullptr;                        // leaf chaining

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

BPlusTree::BPlusTree() : root_(std::make_unique<Node>(true)) {}
BPlusTree::~BPlusTree() = default;

int BPlusTree::CompareEntry(const BTreeEntry& a, const BTreeEntry& b) {
  int c = a.value.Compare(b.value);
  if (c != 0) return c;
  if (a.doc != b.doc) return a.doc < b.doc ? -1 : 1;
  return 0;
}

namespace {

bool EntryLess(const BTreeEntry& a, const BTreeEntry& b) {
  int c = a.value.Compare(b.value);
  if (c != 0) return c < 0;
  return a.doc < b.doc;
}

}  // namespace

void BPlusTree::Insert(const model::Value& value, model::DocId doc) {
  std::optional<Split> split = InsertInto(root_.get(), BTreeEntry{value, doc});
  if (split.has_value()) {
    auto new_root = std::make_unique<Node>(false);
    new_root->entries.push_back(std::move(split->separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::optional<BPlusTree::Split> BPlusTree::InsertInto(Node* node,
                                                      BTreeEntry entry) {
  if (node->is_leaf) {
    auto it = std::upper_bound(node->entries.begin(), node->entries.end(),
                               entry, EntryLess);
    node->entries.insert(it, std::move(entry));
    if (node->entries.size() <= kMaxEntries) return std::nullopt;

    // Split leaf: right half moves to a new node; separator is the first
    // key of the right node (copied, B+-tree style).
    auto right = std::make_unique<Node>(true);
    const size_t mid = node->entries.size() / 2;
    right->entries.assign(std::make_move_iterator(node->entries.begin() + mid),
                          std::make_move_iterator(node->entries.end()));
    node->entries.resize(mid);
    right->next = node->next;
    node->next = right.get();
    Split split{right->entries.front(), std::move(right)};
    return split;
  }

  // Internal: descend into the child whose range covers `entry`.
  size_t child_index =
      std::upper_bound(node->entries.begin(), node->entries.end(), entry,
                       EntryLess) -
      node->entries.begin();
  std::optional<Split> child_split =
      InsertInto(node->children[child_index].get(), std::move(entry));
  if (!child_split.has_value()) return std::nullopt;

  node->entries.insert(node->entries.begin() + child_index,
                       std::move(child_split->separator));
  node->children.insert(node->children.begin() + child_index + 1,
                        std::move(child_split->right));
  if (node->entries.size() <= kMaxEntries) return std::nullopt;

  // Split internal node: the middle separator moves up (not copied).
  auto right = std::make_unique<Node>(false);
  const size_t mid = node->entries.size() / 2;
  BTreeEntry up = std::move(node->entries[mid]);
  right->entries.assign(
      std::make_move_iterator(node->entries.begin() + mid + 1),
      std::make_move_iterator(node->entries.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + mid + 1),
      std::make_move_iterator(node->children.end()));
  node->entries.resize(mid);
  node->children.resize(mid + 1);
  Split split{std::move(up), std::move(right)};
  return split;
}

const BPlusTree::Node* BPlusTree::FindLeaf(const BTreeEntry& probe) const {
  // Descends to the LEFTMOST leaf that may contain an entry equal to
  // `probe`: duplicates of a separator key can straddle a split, so on
  // separator equality we go left and rely on the leaf chain to continue
  // rightward.
  const Node* node = root_.get();
  while (!node->is_leaf) {
    size_t child_index =
        std::lower_bound(node->entries.begin(), node->entries.end(), probe,
                         EntryLess) -
        node->entries.begin();
    node = node->children[child_index].get();
  }
  return node;
}

bool BPlusTree::Erase(const model::Value& value, model::DocId doc) {
  BTreeEntry probe{value, doc};
  // Lazy deletion: walk the leaf chain from the leftmost candidate leaf and
  // remove the first entry equal to `probe`.
  Node* leaf = const_cast<Node*>(FindLeaf(probe));
  for (; leaf != nullptr; leaf = leaf->next) {
    auto it = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                               probe, EntryLess);
    if (it != leaf->entries.end()) {
      if (CompareEntry(*it, probe) != 0) return false;  // passed probe's slot
      leaf->entries.erase(it);
      --size_;
      return true;
    }
    // Leaf exhausted with every entry < probe (or empty): keep walking.
  }
  return false;
}

std::vector<model::DocId> BPlusTree::Lookup(const model::Value& value) const {
  std::vector<model::DocId> docs;
  ScanRange(&value, true, &value, true,
            [&docs](const model::Value&, model::DocId doc) {
              docs.push_back(doc);
              return true;
            });
  return docs;
}

void BPlusTree::ScanRange(
    const model::Value* lo, bool lo_inclusive, const model::Value* hi,
    bool hi_inclusive,
    const std::function<bool(const model::Value&, model::DocId)>& fn) const {
  const Node* leaf;
  size_t start_index = 0;
  if (lo != nullptr) {
    BTreeEntry probe{*lo, 0};  // doc 0 sorts before every real doc id
    leaf = FindLeaf(probe);
    start_index = std::lower_bound(leaf->entries.begin(), leaf->entries.end(),
                                   probe, EntryLess) -
                  leaf->entries.begin();
    // The probe's leaf may have ended before any >= entry; move on.
    if (start_index == leaf->entries.size() && leaf->next != nullptr) {
      leaf = leaf->next;
      start_index = 0;
    }
  } else {
    const Node* node = root_.get();
    while (!node->is_leaf) node = node->children.front().get();
    leaf = node;
  }

  for (const Node* node = leaf; node != nullptr; node = node->next) {
    for (size_t i = (node == leaf ? start_index : 0); i < node->entries.size();
         ++i) {
      const BTreeEntry& entry = node->entries[i];
      if (lo != nullptr && !lo_inclusive && entry.value.Compare(*lo) == 0) {
        continue;
      }
      if (hi != nullptr) {
        int c = entry.value.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      if (!fn(entry.value, entry.doc)) return;
    }
  }
}

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BPlusTree::CheckInvariants() const {
  // 1. Uniform leaf depth + sorted entries + separator bounds, via DFS.
  struct Frame {
    const Node* node;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 1}};
  int leaf_depth = -1;
  size_t counted = 0;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;
    // Multiset semantics: adjacent entries may be equal, never decreasing.
    for (size_t i = 1; i < node->entries.size(); ++i) {
      if (EntryLess(node->entries[i], node->entries[i - 1])) return false;
    }
    if (node->is_leaf) {
      if (leaf_depth == -1) leaf_depth = frame.depth;
      if (leaf_depth != frame.depth) return false;
      counted += node->entries.size();
    } else {
      if (node->children.size() != node->entries.size() + 1) return false;
      for (const auto& child : node->children) {
        stack.push_back({child.get(), frame.depth + 1});
      }
      // Separator bounds: keys in child i must be <= entries[i] (duplicates
      // of a separator may straddle the split), keys in child i+1 >= it.
      for (size_t i = 0; i < node->entries.size(); ++i) {
        const Node* left = node->children[i].get();
        const Node* right = node->children[i + 1].get();
        if (!left->entries.empty() &&
            EntryLess(node->entries[i], left->entries.back())) {
          return false;
        }
        if (!right->entries.empty() &&
            EntryLess(right->entries.front(), node->entries[i])) {
          return false;
        }
      }
    }
  }
  if (counted != size_) return false;

  // 2. Leaf chain visits exactly the leaves, in order.
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children.front().get();
  size_t chained = 0;
  const BTreeEntry* prev = nullptr;
  for (; node != nullptr; node = node->next) {
    chained += node->entries.size();
    for (const BTreeEntry& entry : node->entries) {
      if (prev != nullptr && EntryLess(entry, *prev)) return false;
      prev = &entry;
    }
  }
  return chained == size_;
}

}  // namespace impliance::index
