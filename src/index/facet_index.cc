#include "index/facet_index.h"

#include <algorithm>

#include "model/item.h"

namespace impliance::index {

void FacetIndex::AddDocument(const model::Document& doc) {
  for (const model::PathValue& pv : model::CollectPaths(doc.root)) {
    if (pv.value->is_null()) continue;
    std::vector<model::DocId>& docs = facets_[pv.path][*pv.value];
    auto it = std::lower_bound(docs.begin(), docs.end(), doc.id);
    if (it == docs.end() || *it != doc.id) docs.insert(it, doc.id);
  }
}

void FacetIndex::RemoveDocument(const model::Document& doc) {
  for (const model::PathValue& pv : model::CollectPaths(doc.root)) {
    if (pv.value->is_null()) continue;
    auto path_it = facets_.find(pv.path);
    if (path_it == facets_.end()) continue;
    auto value_it = path_it->second.find(*pv.value);
    if (value_it == path_it->second.end()) continue;
    std::vector<model::DocId>& docs = value_it->second;
    auto it = std::lower_bound(docs.begin(), docs.end(), doc.id);
    if (it != docs.end() && *it == doc.id) docs.erase(it);
    if (docs.empty()) path_it->second.erase(value_it);
  }
}

std::vector<FacetIndex::FacetCount> FacetIndex::CountFacet(
    std::string_view path, const std::vector<model::DocId>& candidates,
    size_t max_values) const {
  auto path_it = facets_.find(path);
  if (path_it == facets_.end()) return {};
  std::vector<FacetCount> counts;
  for (const auto& [value, docs] : path_it->second) {
    // Both lists are sorted; count the intersection size.
    size_t n = 0;
    auto ci = candidates.begin();
    auto di = docs.begin();
    while (ci != candidates.end() && di != docs.end()) {
      if (*ci < *di) {
        ++ci;
      } else if (*di < *ci) {
        ++di;
      } else {
        ++n;
        ++ci;
        ++di;
      }
    }
    if (n > 0) counts.push_back(FacetCount{value, n});
  }
  std::sort(counts.begin(), counts.end(),
            [](const FacetCount& a, const FacetCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (counts.size() > max_values) counts.resize(max_values);
  return counts;
}

std::vector<FacetIndex::FacetCount> FacetIndex::CountFacetAll(
    std::string_view path, size_t max_values) const {
  auto path_it = facets_.find(path);
  if (path_it == facets_.end()) return {};
  std::vector<FacetCount> counts;
  for (const auto& [value, docs] : path_it->second) {
    counts.push_back(FacetCount{value, docs.size()});
  }
  std::sort(counts.begin(), counts.end(),
            [](const FacetCount& a, const FacetCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (counts.size() > max_values) counts.resize(max_values);
  return counts;
}

std::vector<model::DocId> FacetIndex::Restrict(
    std::string_view path, const model::Value& value,
    const std::vector<model::DocId>& candidates) const {
  std::vector<model::DocId> with_value = DocsWithValue(path, value);
  std::vector<model::DocId> out;
  std::set_intersection(candidates.begin(), candidates.end(),
                        with_value.begin(), with_value.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<model::DocId> FacetIndex::DocsWithValue(
    std::string_view path, const model::Value& value) const {
  auto path_it = facets_.find(path);
  if (path_it == facets_.end()) return {};
  auto value_it = path_it->second.find(value);
  if (value_it == path_it->second.end()) return {};
  return value_it->second;
}

}  // namespace impliance::index
