#ifndef IMPLIANCE_INDEX_BTREE_H_
#define IMPLIANCE_INDEX_BTREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "model/document.h"
#include "model/value.h"

namespace impliance::index {

// Entry of the ordered value index: a (value, doc) pair. Duplicate values
// across documents — and even within one document (repeated siblings) —
// are allowed; entries are totally ordered by (value, doc).
struct BTreeEntry {
  model::Value value;
  model::DocId doc = model::kInvalidDocId;
};

// In-memory B+-tree with leaf chaining, the ordered index behind range
// predicates and index scans. Multiset semantics. Deletion is by lazy
// removal without node merging (the PostgreSQL approach): ordering and
// uniform depth are preserved, underfull nodes are tolerated — acceptable
// because Impliance's documents are immutable and deletes only arise from
// version supersession.
class BPlusTree {
 public:
  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  void Insert(const model::Value& value, model::DocId doc);

  // Removes one occurrence of (value, doc); returns false if absent.
  bool Erase(const model::Value& value, model::DocId doc);

  // Documents whose entry equals `value`, ascending by doc id.
  std::vector<model::DocId> Lookup(const model::Value& value) const;

  // Visits entries in [lo, hi] order; nullptr bound = unbounded. Returns
  // early if `fn` returns false.
  void ScanRange(const model::Value* lo, bool lo_inclusive,
                 const model::Value* hi, bool hi_inclusive,
                 const std::function<bool(const model::Value&,
                                          model::DocId)>& fn) const;

  size_t size() const { return size_; }
  int height() const;

  // Structural invariants for tests: sorted keys everywhere, uniform leaf
  // depth, correct leaf chaining, separator correctness.
  bool CheckInvariants() const;

 private:
  struct Node;

  // Result of inserting into a full child: the new right sibling plus the
  // separator that should be pushed into the parent.
  struct Split {
    BTreeEntry separator;  // first key of the new right node's subtree
    std::unique_ptr<Node> right;
  };

  static int CompareEntry(const BTreeEntry& a, const BTreeEntry& b);
  std::optional<Split> InsertInto(Node* node, BTreeEntry entry);
  const Node* FindLeaf(const BTreeEntry& probe) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_BTREE_H_
