#include "index/path_index.h"

#include <algorithm>

#include "model/item.h"

namespace impliance::index {

void PathIndex::AddDocument(const model::Document& doc) {
  std::vector<std::string> paths = model::CollectDistinctPaths(doc.root);
  for (const std::string& path : paths) {
    std::vector<model::DocId>& docs = path_docs_[path];
    auto it = std::lower_bound(docs.begin(), docs.end(), doc.id);
    if (it == docs.end() || *it != doc.id) docs.insert(it, doc.id);
    kind_paths_[doc.kind][path]++;
  }
  std::vector<model::DocId>& kind_docs = kind_docs_[doc.kind];
  auto it = std::lower_bound(kind_docs.begin(), kind_docs.end(), doc.id);
  if (it == kind_docs.end() || *it != doc.id) kind_docs.insert(it, doc.id);
}

void PathIndex::EraseFrom(std::vector<model::DocId>* docs, model::DocId id) {
  auto it = std::lower_bound(docs->begin(), docs->end(), id);
  if (it != docs->end() && *it == id) docs->erase(it);
}

void PathIndex::RemoveDocument(const model::Document& doc) {
  for (const std::string& path : model::CollectDistinctPaths(doc.root)) {
    auto it = path_docs_.find(path);
    if (it != path_docs_.end()) {
      EraseFrom(&it->second, doc.id);
      if (it->second.empty()) path_docs_.erase(it);
    }
    auto kp = kind_paths_.find(doc.kind);
    if (kp != kind_paths_.end()) {
      auto count_it = kp->second.find(path);
      if (count_it != kp->second.end() && --count_it->second == 0) {
        kp->second.erase(count_it);
      }
    }
  }
  auto it = kind_docs_.find(doc.kind);
  if (it != kind_docs_.end()) {
    EraseFrom(&it->second, doc.id);
    if (it->second.empty()) kind_docs_.erase(it);
  }
}

std::vector<model::DocId> PathIndex::DocsWithPath(std::string_view path) const {
  auto it = path_docs_.find(path);
  return it == path_docs_.end() ? std::vector<model::DocId>{} : it->second;
}

std::vector<model::DocId> PathIndex::DocsOfKind(std::string_view kind) const {
  auto it = kind_docs_.find(kind);
  return it == kind_docs_.end() ? std::vector<model::DocId>{} : it->second;
}

std::vector<std::string> PathIndex::PathsOfKind(std::string_view kind) const {
  auto it = kind_paths_.find(kind);
  if (it == kind_paths_.end()) return {};
  std::vector<std::string> paths;
  paths.reserve(it->second.size());
  for (const auto& [path, count] : it->second) paths.push_back(path);
  return paths;
}

std::vector<std::string> PathIndex::Kinds() const {
  std::vector<std::string> kinds;
  kinds.reserve(kind_docs_.size());
  for (const auto& [kind, docs] : kind_docs_) kinds.push_back(kind);
  return kinds;
}

std::vector<std::string> PathIndex::AllPaths() const {
  std::vector<std::string> paths;
  paths.reserve(path_docs_.size());
  for (const auto& [path, docs] : path_docs_) paths.push_back(path);
  return paths;
}

}  // namespace impliance::index
