#include "index/posting_block.h"

#include "common/coding.h"
#include "common/logging.h"

namespace impliance::index {

void AppendPosting(PostingBlock* block, model::DocId doc, uint32_t tf,
                   const uint32_t* positions) {
  IMPLIANCE_CHECK(block->count == 0 || doc > block->last_doc)
      << "postings must be appended in ascending doc order";
  IMPLIANCE_CHECK(tf > 0);
  PutVarint64(&block->docs, doc - (block->count == 0 ? 0 : block->last_doc));
  PutVarint32(&block->freqs, tf);
  PutVarint32(&block->positions, tf);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < tf; ++i) {
    PutVarint32(&block->positions, positions[i] - prev);
    prev = positions[i];
  }
  if (block->count == 0) block->first_doc = doc;
  block->last_doc = doc;
  ++block->count;
  if (tf > block->max_tf) block->max_tf = tf;
}

bool DecodeDocsFreqs(const PostingBlock& block, DecodedBlock* out) {
  out->docs.clear();
  out->freqs.clear();
  out->docs.reserve(block.count);
  out->freqs.reserve(block.count);
  std::string_view dv(block.docs);
  std::string_view fv(block.freqs);
  model::DocId prev = 0;
  for (uint32_t i = 0; i < block.count; ++i) {
    uint64_t delta = 0;
    uint32_t tf = 0;
    if (!GetVarint64(&dv, &delta) || !GetVarint32(&fv, &tf)) return false;
    prev += delta;
    out->docs.push_back(prev);
    out->freqs.push_back(tf);
  }
  return true;
}

bool DecodePositions(const PostingBlock& block, DecodedBlock* out) {
  out->positions.clear();
  out->positions.resize(block.count);
  std::string_view pv(block.positions);
  for (uint32_t i = 0; i < block.count; ++i) {
    uint32_t n = 0;
    if (!GetVarint32(&pv, &n)) return false;
    std::vector<uint32_t>& entry = out->positions[i];
    entry.reserve(n);
    uint32_t prev = 0;
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t delta = 0;
      if (!GetVarint32(&pv, &delta)) return false;
      prev += delta;
      entry.push_back(prev);
    }
  }
  return true;
}

bool BuildPositionOffsets(const PostingBlock& block,
                          std::vector<size_t>* offsets) {
  offsets->clear();
  offsets->reserve(block.count);
  std::string_view pv(block.positions);
  const char* base = block.positions.data();
  for (uint32_t i = 0; i < block.count; ++i) {
    offsets->push_back(static_cast<size_t>(pv.data() - base));
    uint32_t n = 0;
    if (!GetVarint32(&pv, &n)) return false;
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t delta = 0;
      if (!GetVarint32(&pv, &delta)) return false;
    }
  }
  return true;
}

bool DecodePositionsAt(const PostingBlock& block, size_t byte_offset,
                       std::vector<uint32_t>* out) {
  out->clear();
  if (byte_offset > block.positions.size()) return false;
  std::string_view pv(block.positions);
  pv.remove_prefix(byte_offset);
  uint32_t n = 0;
  if (!GetVarint32(&pv, &n)) return false;
  out->reserve(n);
  uint32_t prev = 0;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t delta = 0;
    if (!GetVarint32(&pv, &delta)) return false;
    prev += delta;
    out->push_back(prev);
  }
  return true;
}

}  // namespace impliance::index
