#ifndef IMPLIANCE_INDEX_FACET_INDEX_H_
#define IMPLIANCE_INDEX_FACET_INDEX_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "model/document.h"
#include "model/value.h"

namespace impliance::index {

// Facet counting structure for the guided-search interface (Section 3.2.1):
// per path, per distinct value, the sorted list of documents carrying it.
// Drill-down restricts a candidate set by a facet value; counting produces
// the navigational links shown next to search results.
//
// Not internally synchronized.
class FacetIndex {
 public:
  struct FacetCount {
    model::Value value;
    size_t count = 0;
  };

  void AddDocument(const model::Document& doc);
  void RemoveDocument(const model::Document& doc);

  // Value distribution of `path` over `candidates` (sorted doc ids),
  // descending by count then ascending by value. At most `max_values`.
  std::vector<FacetCount> CountFacet(std::string_view path,
                                     const std::vector<model::DocId>& candidates,
                                     size_t max_values) const;

  // Value distribution of `path` over the whole corpus.
  std::vector<FacetCount> CountFacetAll(std::string_view path,
                                        size_t max_values) const;

  // Members of `candidates` whose `path` equals `value` (drill-down).
  std::vector<model::DocId> Restrict(std::string_view path,
                                     const model::Value& value,
                                     const std::vector<model::DocId>&
                                         candidates) const;

  // All documents with `path` == `value`, ascending.
  std::vector<model::DocId> DocsWithValue(std::string_view path,
                                          const model::Value& value) const;

 private:
  // path -> value -> sorted doc ids.
  std::map<std::string, std::map<model::Value, std::vector<model::DocId>>,
           std::less<>>
      facets_;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_FACET_INDEX_H_
