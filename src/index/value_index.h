#ifndef IMPLIANCE_INDEX_VALUE_INDEX_H_
#define IMPLIANCE_INDEX_VALUE_INDEX_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "index/btree.h"
#include "model/document.h"

namespace impliance::index {

// Ordered index over (path, value) pairs: one B+-tree per document path.
// Together with the path index this realizes "automatically indexes each
// document by its values as well as its structures" (Section 3.2) — every
// leaf value of every document is indexed without any CREATE INDEX.
//
// Not internally synchronized.
class ValueIndex {
 public:
  // Indexes every non-null leaf (path, value) of `doc`.
  void AddDocument(const model::Document& doc);

  // Removes the entries of `doc` (exact same tree must be passed, i.e. the
  // version that was added).
  void RemoveDocument(const model::Document& doc);

  // Documents where `path` has exactly `value`, ascending, deduplicated.
  std::vector<model::DocId> Lookup(std::string_view path,
                                   const model::Value& value) const;

  // Documents where `path` falls in [lo, hi] (nullptr = unbounded),
  // ascending, deduplicated.
  std::vector<model::DocId> Range(std::string_view path,
                                  const model::Value* lo, bool lo_inclusive,
                                  const model::Value* hi,
                                  bool hi_inclusive) const;

  // Visits (value, doc) pairs of `path` in value order.
  void Scan(std::string_view path,
            const std::function<bool(const model::Value&, model::DocId)>& fn)
      const;

  // All indexed paths, sorted.
  std::vector<std::string> Paths() const;

  size_t num_paths() const { return trees_.size(); }
  size_t num_entries() const;

 private:
  std::map<std::string, BPlusTree, std::less<>> trees_;
};

}  // namespace impliance::index

#endif  // IMPLIANCE_INDEX_VALUE_INDEX_H_
