#ifndef IMPLIANCE_COMMON_STRING_UTIL_H_
#define IMPLIANCE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace impliance {

// Splits on a single delimiter character; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char delim);

// Splits and drops empty fields after trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view text, char delim);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view TrimWhitespace(std::string_view text);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Lowercased alphanumeric tokens, splitting on any other character.
// This is the tokenizer shared by the full-text indexer and keyword queries
// so that indexing and search agree on term boundaries.
std::vector<std::string> Tokenize(std::string_view text);

// Like Tokenize but also reports the byte offset of each token, for
// annotators that need spans.
struct Token {
  std::string text;    // lowercased
  size_t offset = 0;   // byte offset of the token start in the input
};
std::vector<Token> TokenizeWithOffsets(std::string_view text);

// Jaccard similarity of the token sets of two strings, in [0, 1].
double TokenJaccard(std::string_view a, std::string_view b);

// Jaro-Winkler similarity in [0, 1]; used by entity resolution.
double JaroWinkler(std::string_view a, std::string_view b);

// Levenshtein edit distance.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_STRING_UTIL_H_
