#ifndef IMPLIANCE_COMMON_STRING_UTIL_H_
#define IMPLIANCE_COMMON_STRING_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace impliance {

// Splits on a single delimiter character; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char delim);

// Splits and drops empty fields after trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view text, char delim);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string_view TrimWhitespace(std::string_view text);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Lowercased alphanumeric tokens, splitting on any other character.
// This is the tokenizer shared by the full-text indexer and keyword queries
// so that indexing and search agree on term boundaries.
std::vector<std::string> Tokenize(std::string_view text);

// Streaming variant of Tokenize: invokes `fn(std::string_view token)` for
// each lowercased alphanumeric token without materializing a
// vector<std::string>. The token's bytes live in a single lowered buffer
// that is reused across tokens, so the string_view is only valid for the
// duration of the callback — copy it if it must outlive the call. This is
// the indexer/search hot-path tokenizer (zero allocations after the buffer
// warms up).
template <typename Fn>
void ForEachToken(std::string_view text, Fn&& fn) {
  std::string token;  // lowered bytes, reused across tokens
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           !std::isalnum(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    token.clear();
    while (i < text.size() &&
           std::isalnum(static_cast<unsigned char>(text[i]))) {
      token.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text[i]))));
      ++i;
    }
    if (!token.empty()) fn(std::string_view(token));
  }
}

// Like Tokenize but also reports the byte offset of each token, for
// annotators that need spans.
struct Token {
  std::string text;    // lowercased
  size_t offset = 0;   // byte offset of the token start in the input
};
std::vector<Token> TokenizeWithOffsets(std::string_view text);

// Jaccard similarity of the token sets of two strings, in [0, 1].
double TokenJaccard(std::string_view a, std::string_view b);

// Jaro-Winkler similarity in [0, 1]; used by entity resolution.
double JaroWinkler(std::string_view a, std::string_view b);

// Levenshtein edit distance.
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_STRING_UTIL_H_
