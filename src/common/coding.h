#ifndef IMPLIANCE_COMMON_CODING_H_
#define IMPLIANCE_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace impliance {

// Little-endian fixed and LEB128 varint encodings used by the storage layer
// (WAL records and segment files) and the index serializers.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Each Get* consumes bytes from the front of *input and returns false on
// malformed/short input (leaving *input unspecified).
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

// ZigZag for signed payloads (document scalar values).
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_CODING_H_
