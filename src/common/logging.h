#ifndef IMPLIANCE_COMMON_LOGGING_H_
#define IMPLIANCE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace impliance {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Minimum level actually emitted; default kWarning so tests/benches run quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Aborts the process in the destructor after flushing the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

struct Voidify {
  // Lowest-precedence operator that still binds looser than <<.
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace impliance

#define IMPLIANCE_LOG(level)                                              \
  (::impliance::LogLevel::k##level < ::impliance::GetLogLevel())          \
      ? (void)0                                                           \
      : ::impliance::internal_logging::Voidify() &                        \
            ::impliance::internal_logging::LogMessage(                    \
                ::impliance::LogLevel::k##level, __FILE__, __LINE__)      \
                .stream()

// Internal invariant check: always on, aborts on violation.
#define IMPLIANCE_CHECK(condition)                                     \
  (condition) ? (void)0                                                \
              : ::impliance::internal_logging::Voidify() &             \
                    ::impliance::internal_logging::FatalLogMessage(    \
                        __FILE__, __LINE__, #condition)                \
                        .stream()

#define IMPLIANCE_CHECK_OK(expr)                                     \
  do {                                                               \
    ::impliance::Status _st_check = (expr);                          \
    IMPLIANCE_CHECK(_st_check.ok()) << _st_check.ToString();         \
  } while (0)

#endif  // IMPLIANCE_COMMON_LOGGING_H_
