#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace impliance {

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / samples_.size();
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double sum_sq = 0.0;
  for (double s : samples_) sum_sq += (s - mean) * (s - mean);
  return std::sqrt(sum_sq / (samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  IMPLIANCE_CHECK(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

}  // namespace impliance
