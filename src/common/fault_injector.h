#ifndef IMPLIANCE_COMMON_FAULT_INJECTOR_H_
#define IMPLIANCE_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace impliance {

// Deterministic, seeded fault injection. Instrumented code declares named
// fault points (e.g. "node.submit.crash", "wal.sync"); tests and benches
// install an injector and arm points either probabilistically (seeded RNG
// per point, so two runs with the same seed fire identically) or at an
// exact hit number. When no injector is installed every point is a single
// relaxed atomic load — cheap enough to leave compiled into release code.
//
// Crash-point catalog (kept in sync with DESIGN.md):
//   node.submit.drop    task acked to the caller but silently discarded
//   node.submit.crash   node dies between submit and run (queue lost)
//   node.task.delay     task execution delayed by `delay_micros`
//   wal.sync            WAL fsync/fdatasync fails (stream is poisoned)
//   wal.append.torn     only a prefix of a WAL record reaches the file
//   segment.sync        segment fsync fails at Finish()
//   segment.finish.torn only a prefix of the segment file is written
//   server.worker.drop  serving worker drops an admitted request
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `point` to fire with probability `p` per hit, at most
  // `max_triggers` times (-1 = unlimited). `delay_micros` is advisory —
  // consumed by points that model slowness rather than loss.
  void Arm(const std::string& point, double probability,
           int64_t max_triggers = -1, uint64_t delay_micros = 0);

  // Arms `point` to fire exactly on its `nth_hit`-th hit (1-based) and
  // never again — the deterministic single-crash primitive.
  void ArmAtHit(const std::string& point, uint64_t nth_hit);

  void Disarm(const std::string& point);

  // The instrumented side: records a hit and reports whether the fault
  // fires. Unarmed points still count hits, so tests can assert code paths
  // were exercised (e.g. one wal.sync hit per appended record).
  bool ShouldFail(std::string_view point);

  // Advisory delay for the most recent Arm of `point` (0 if unarmed).
  uint64_t DelayMicros(std::string_view point) const;

  uint64_t hits(const std::string& point) const;
  uint64_t triggers(const std::string& point) const;

  uint64_t seed() const { return seed_; }

  // Process-wide installation. Instrumented code calls Get(); nullptr
  // (the default) disables all points.
  static FaultInjector* Get() {
    return installed_.load(std::memory_order_acquire);
  }
  static void Install(FaultInjector* injector) {
    installed_.store(injector, std::memory_order_release);
  }

 private:
  struct Point {
    // Armed state.
    bool armed = false;
    double probability = 0.0;
    int64_t triggers_left = -1;  // -1 = unlimited
    uint64_t fire_at_hit = 0;    // nonzero: fire exactly on this hit
    uint64_t delay_micros = 0;
    // Accounting.
    uint64_t hits = 0;
    uint64_t triggers = 0;
    // Per-point stream so arming one point never perturbs another.
    Rng rng{0};
  };

  Point& PointFor(std::string_view name);  // caller holds mutex_

  const uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::string, Point, std::less<>> points_;

  static std::atomic<FaultInjector*> installed_;
};

// True iff an injector is installed and `point` fires this hit.
inline bool FaultPoint(std::string_view point) {
  FaultInjector* injector = FaultInjector::Get();
  return injector != nullptr && injector->ShouldFail(point);
}

// Advisory delay of an armed delay-style point; 0 when disabled.
inline uint64_t FaultDelayMicros(std::string_view point) {
  FaultInjector* injector = FaultInjector::Get();
  return injector == nullptr ? 0 : injector->DelayMicros(point);
}

// RAII install/uninstall for tests: exactly one scope at a time.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(uint64_t seed) : injector_(seed) {
    FaultInjector::Install(&injector_);
  }
  ~ScopedFaultInjection() { FaultInjector::Install(nullptr); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  FaultInjector* operator->() { return &injector_; }
  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_FAULT_INJECTOR_H_
