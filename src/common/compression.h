#ifndef IMPLIANCE_COMMON_COMPRESSION_H_
#define IMPLIANCE_COMMON_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace impliance {

// Byte-oriented LZ77-family compressor (greedy hash-chain matcher,
// LZ4-style token stream). Section 3.1 pushes compression down into the
// storage unit's software so it runs on commodity hardware — this is that
// codec. Self-contained, no third-party dependency.
//
// Format: sequence of ops.
//   literal run:  0x00 | varint len | bytes
//   match:        0x01 | varint len (>= kMinMatch) | varint distance
// The uncompressed size is prefixed as a varint for allocation.

// Appends the compressed form of `input` to *dst.
void LzCompress(std::string_view input, std::string* dst);

// Decompresses a full LzCompress output. Fails on malformed input.
Result<std::string> LzDecompress(std::string_view compressed);

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_COMPRESSION_H_
