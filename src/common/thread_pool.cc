#include "common/thread_pool.h"

#include <exception>

#include "common/logging.h"
#include "obs/metrics.h"

namespace impliance {

ThreadPool::ThreadPool(size_t num_threads) {
  IMPLIANCE_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task, Priority priority) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IMPLIANCE_CHECK(!shutting_down_) << "Submit after shutdown";
    if (priority == Priority::kHigh) {
      high_queue_.push_back(std::move(task));
    } else {
      low_queue_.push_back(std::move(task));
    }
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] {
    return high_queue_.empty() && low_queue_.empty() && in_flight_ == 0;
  });
}

size_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_queue_.size() + low_queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || !high_queue_.empty() || !low_queue_.empty();
      });
      if (high_queue_.empty() && low_queue_.empty()) {
        // Woken for shutdown with no remaining work.
        return;
      }
      if (!high_queue_.empty()) {
        task = std::move(high_queue_.front());
        high_queue_.pop_front();
      } else {
        task = std::move(low_queue_.front());
        low_queue_.pop_front();
      }
      ++in_flight_;
    }
    // A throwing task must not escape the worker thread — that calls
    // std::terminate and takes the whole appliance down with it. Count it,
    // log it, keep serving.
    try {
      task();
    } catch (const std::exception& e) {
      obs::Registry::Global()
          .GetCounter("threadpool.task_exceptions")
          ->Increment();
      IMPLIANCE_LOG(Error) << "task threw: " << e.what();
    } catch (...) {
      obs::Registry::Global()
          .GetCounter("threadpool.task_exceptions")
          ->Increment();
      IMPLIANCE_LOG(Error) << "task threw a non-std::exception";
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (high_queue_.empty() && low_queue_.empty() && in_flight_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace impliance
