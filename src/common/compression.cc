#include "common/compression.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace impliance {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 1 << 16;
constexpr size_t kHashBits = 14;
constexpr uint8_t kOpLiteral = 0x00;
constexpr uint8_t kOpMatch = 0x01;

uint32_t HashAt(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

void LzCompress(std::string_view input, std::string* dst) {
  PutVarint64(dst, input.size());
  if (input.empty()) return;

  // head[h] = most recent position with hash h (+1; 0 = empty).
  std::vector<uint32_t> head(1u << kHashBits, 0);
  const char* base = input.data();
  size_t pos = 0;
  size_t literal_start = 0;

  auto flush_literals = [&](size_t end) {
    if (end == literal_start) return;
    dst->push_back(static_cast<char>(kOpLiteral));
    PutVarint64(dst, end - literal_start);
    dst->append(base + literal_start, end - literal_start);
  };

  while (pos + kMinMatch <= input.size()) {
    const uint32_t h = HashAt(base + pos);
    const uint32_t candidate = head[h];
    head[h] = static_cast<uint32_t>(pos + 1);

    size_t match_len = 0;
    size_t match_pos = 0;
    if (candidate != 0) {
      match_pos = candidate - 1;
      const size_t distance = pos - match_pos;
      if (distance > 0 && distance <= kMaxDistance) {
        const size_t max_len = input.size() - pos;
        size_t len = 0;
        while (len < max_len && base[match_pos + len] == base[pos + len]) {
          ++len;
        }
        if (len >= kMinMatch) match_len = len;
      }
    }

    if (match_len > 0) {
      flush_literals(pos);
      dst->push_back(static_cast<char>(kOpMatch));
      PutVarint64(dst, match_len);
      PutVarint64(dst, pos - match_pos);
      // Insert hash entries inside the match sparsely (every 4th byte)
      // to keep compression fast on long repeats.
      const size_t end = pos + match_len;
      for (size_t i = pos + 1; i + kMinMatch <= input.size() && i < end;
           i += 4) {
        head[HashAt(base + i)] = static_cast<uint32_t>(i + 1);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  flush_literals(input.size());
}

Result<std::string> LzDecompress(std::string_view compressed) {
  uint64_t expected_size = 0;
  if (!GetVarint64(&compressed, &expected_size)) {
    return Status::Corruption("bad compressed header");
  }
  std::string out;
  out.reserve(expected_size);
  while (!compressed.empty()) {
    const uint8_t op = static_cast<uint8_t>(compressed[0]);
    compressed.remove_prefix(1);
    uint64_t len = 0;
    if (!GetVarint64(&compressed, &len)) {
      return Status::Corruption("bad op length");
    }
    if (op == kOpLiteral) {
      if (compressed.size() < len) {
        return Status::Corruption("short literal run");
      }
      out.append(compressed.substr(0, len));
      compressed.remove_prefix(len);
    } else if (op == kOpMatch) {
      uint64_t distance = 0;
      if (!GetVarint64(&compressed, &distance)) {
        return Status::Corruption("bad match distance");
      }
      if (distance == 0 || distance > out.size() || len < kMinMatch) {
        return Status::Corruption("invalid match");
      }
      // Overlapping copies are legal (distance < len): byte-by-byte.
      size_t from = out.size() - distance;
      for (uint64_t i = 0; i < len; ++i) {
        out.push_back(out[from + i]);
      }
    } else {
      return Status::Corruption("unknown op");
    }
    if (out.size() > expected_size) {
      return Status::Corruption("decompressed past declared size");
    }
  }
  if (out.size() != expected_size) {
    return Status::Corruption("decompressed size mismatch");
  }
  return out;
}

}  // namespace impliance
