#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace impliance {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitAndTrim(std::string_view text, char delim) {
  std::vector<std::string> parts;
  for (const std::string& raw : Split(text, delim)) {
    std::string_view trimmed = TrimWhitespace(raw);
    if (!trimmed.empty()) parts.emplace_back(trimmed);
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  ForEachToken(text,
               [&](std::string_view token) { tokens.emplace_back(token); });
  return tokens;
}

std::vector<Token> TokenizeWithOffsets(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           !std::isalnum(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           std::isalnum(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      Token tok;
      tok.offset = start;
      tok.text = ToLower(text.substr(start, i - start));
      tokens.push_back(std::move(tok));
    }
  }
  return tokens;
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

double Jaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max<size_t>(1, std::max(a.size(), b.size()) / 2) - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && a[i] == b[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Transpositions: matched characters out of order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
}

}  // namespace

double JaroWinkler(std::string_view a, std::string_view b) {
  double jaro = Jaro(a, b);
  // Winkler prefix bonus, standard scaling factor 0.1 over at most 4 chars.
  size_t prefix = 0;
  while (prefix < std::min({a.size(), b.size(), size_t{4}}) &&
         a[prefix] == b[prefix]) {
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace impliance
