#include "common/hash.h"

#include <array>

namespace impliance {

uint64_t Hash64(std::string_view data, uint64_t seed) {
  uint64_t h = 14695981039346656037ULL ^ Mix64(seed);
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // Final avalanche so short keys spread over all bits.
  return Mix64(h);
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82F63B78;  // CRC-32C (Castagnoli), reflected.
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFF;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ c) & 0xFF];
  }
  return crc ^ 0xFFFFFFFF;
}

}  // namespace impliance
