#include "common/rng.h"

#include <cmath>

namespace impliance {

uint64_t Rng::Zipf(uint64_t n, double theta) {
  IMPLIANCE_CHECK(n > 0);
  if (theta <= 0.0) return Uniform(n);
  // Inverse-CDF approximation for the continuous Zipf distribution,
  // adequate for skewed workload generation.
  const double u = NextDouble();
  const double one_minus = 1.0 - theta;
  double rank;
  if (std::abs(one_minus) < 1e-9) {
    rank = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double npow = std::pow(static_cast<double>(n), one_minus);
    rank = std::pow(u * (npow - 1.0) + 1.0, 1.0 / one_minus);
  }
  uint64_t r = static_cast<uint64_t>(rank);
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace impliance
