#ifndef IMPLIANCE_COMMON_RNG_H_
#define IMPLIANCE_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace impliance {

// Deterministic xoshiro256**-style generator. All workload generation and
// simulation randomness flows through this class so experiments are exactly
// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      s = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t Uniform(uint64_t n) {
    IMPLIANCE_CHECK(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    IMPLIANCE_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Zipfian rank in [0, n) with exponent theta (approximate inverse-CDF).
  uint64_t Zipf(uint64_t n, double theta);

  // Picks an element of `items` uniformly.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    IMPLIANCE_CHECK(!items.empty());
    return items[Uniform(items.size())];
  }

  // Random lowercase identifier of length `len`.
  std::string Word(size_t len) {
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return s;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_RNG_H_
