#ifndef IMPLIANCE_COMMON_RESULT_H_
#define IMPLIANCE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace impliance {

// Result<T> carries either a value or an error Status (the StatusOr idiom).
// Accessing value() on an error Result aborts the process; callers must
// check ok() first or use IMPLIANCE_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    IMPLIANCE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IMPLIANCE_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IMPLIANCE_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IMPLIANCE_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace impliance

// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
// binds the value to `lhs`.
#define IMPLIANCE_ASSIGN_OR_RETURN(lhs, expr)             \
  IMPLIANCE_ASSIGN_OR_RETURN_IMPL_(                       \
      IMPLIANCE_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define IMPLIANCE_CONCAT_INNER_(a, b) a##b
#define IMPLIANCE_CONCAT_(a, b) IMPLIANCE_CONCAT_INNER_(a, b)

#define IMPLIANCE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // IMPLIANCE_COMMON_RESULT_H_
