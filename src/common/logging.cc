#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace impliance {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[FATAL " << base << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace impliance
