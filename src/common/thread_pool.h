#ifndef IMPLIANCE_COMMON_THREAD_POOL_H_
#define IMPLIANCE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace impliance {

// Fixed-size worker pool with a two-level priority queue. High-priority
// tasks (interactive queries) always run before low-priority ones
// (background discovery) — the paper's execution-management requirement
// that long-running analysis tasks be interleaved behind queries with
// stringent response-time requirements (Section 3.4).
class ThreadPool {
 public:
  enum class Priority { kHigh, kLow };

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task, Priority priority = Priority::kHigh);

  // Blocks until every submitted task has finished executing.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }
  size_t pending_tasks() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> high_queue_;
  std::deque<std::function<void()>> low_queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_THREAD_POOL_H_
