#ifndef IMPLIANCE_COMMON_CLOCK_H_
#define IMPLIANCE_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace impliance {

// Monotonic wall-clock helpers for timing experiments.
inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}

  void Reset() { start_ = NowMicros(); }
  uint64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  uint64_t start_;
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_CLOCK_H_
