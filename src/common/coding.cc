#include "common/coding.h"

namespace impliance {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value);
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>((*input)[i]))
         << (8 * i);
  }
  *value = v;
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v) || v > 0xFFFFFFFFULL) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t v = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = v;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

}  // namespace impliance
