#ifndef IMPLIANCE_COMMON_HASH_H_
#define IMPLIANCE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace impliance {

// 64-bit FNV-1a. Stable across platforms/runs; used for partitioning,
// bloom filters, and hash indexes.
uint64_t Hash64(std::string_view data, uint64_t seed = 0);

// Integer mixing (SplitMix64 finalizer). Used to derive independent hash
// functions from one base hash.
uint64_t Mix64(uint64_t x);

// CRC32 (Castagnoli polynomial, software implementation) for storage
// block/record checksums.
uint32_t Crc32c(std::string_view data);

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_HASH_H_
