#ifndef IMPLIANCE_COMMON_STATUS_H_
#define IMPLIANCE_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace impliance {

// Error handling follows the RocksDB/LevelDB idiom: operations that can fail
// return a Status (or a Result<T>, see result.h). Exceptions are not used
// anywhere in the library.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kCorruption,
    kIOError,
    kNotSupported,
    kAborted,
    kBusy,
    kAlreadyExists,
    kOutOfRange,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

}  // namespace impliance

// Propagates a non-OK Status to the caller.
#define IMPLIANCE_RETURN_IF_ERROR(expr)              \
  do {                                               \
    ::impliance::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // IMPLIANCE_COMMON_STATUS_H_
