#include "common/fault_injector.h"

#include "common/hash.h"

namespace impliance {

std::atomic<FaultInjector*> FaultInjector::installed_{nullptr};

FaultInjector::Point& FaultInjector::PointFor(std::string_view name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), Point{}).first;
    // Each point gets its own deterministic stream derived from the
    // injector seed and the point name, so the firing sequence of one
    // point is independent of how often the others are hit.
    it->second.rng = Rng(seed_ ^ Hash64(it->first));
  }
  return it->second;
}

void FaultInjector::Arm(const std::string& point, double probability,
                        int64_t max_triggers, uint64_t delay_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = PointFor(point);
  p.armed = true;
  p.probability = probability;
  p.triggers_left = max_triggers;
  p.fire_at_hit = 0;
  p.delay_micros = delay_micros;
}

void FaultInjector::ArmAtHit(const std::string& point, uint64_t nth_hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = PointFor(point);
  p.armed = true;
  p.probability = 0.0;
  p.triggers_left = 1;
  p.fire_at_hit = p.hits + nth_hit;  // relative to hits already recorded
  p.delay_micros = 0;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  PointFor(point).armed = false;
}

bool FaultInjector::ShouldFail(std::string_view point) {
  std::lock_guard<std::mutex> lock(mutex_);
  Point& p = PointFor(point);
  ++p.hits;
  if (!p.armed || p.triggers_left == 0) return false;
  bool fire = false;
  if (p.fire_at_hit != 0) {
    fire = p.hits == p.fire_at_hit;
  } else {
    fire = p.rng.Bernoulli(p.probability);
  }
  if (!fire) return false;
  if (p.triggers_left > 0) --p.triggers_left;
  ++p.triggers;
  return true;
}

uint64_t FaultInjector::DelayMicros(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return 0;
  return it->second.delay_micros;
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::triggers(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

}  // namespace impliance
