#ifndef IMPLIANCE_COMMON_HISTOGRAM_H_
#define IMPLIANCE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace impliance {

// Exact-sample histogram for experiment reporting (latencies are recorded
// in full; experiments are small enough that this is fine and it keeps
// percentiles exact).
class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const;

  // One-line summary "n=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_HISTOGRAM_H_
