#ifndef IMPLIANCE_COMMON_HISTOGRAM_H_
#define IMPLIANCE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace impliance {

// Exact-sample histogram for experiment reporting (latencies are recorded
// in full; experiments are small enough that this is fine and it keeps
// percentiles exact).
class Histogram {
 public:
  void Add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  // p in [0, 100]; nearest-rank percentile.
  double Percentile(double p) const;
  // The tail percentiles every latency report wants, by name.
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  // One-line summary "n=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;

  // Absorbs every sample of `other` — exact (sample-level) merge, used to
  // combine per-thread latency recordings into one distribution.
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace impliance

#endif  // IMPLIANCE_COMMON_HISTOGRAM_H_
