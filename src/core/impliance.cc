#include "core/impliance.h"

#include <algorithm>

#include "cluster/scheduler.h"
#include "discovery/entity_resolver.h"
#include "discovery/pattern_annotator.h"
#include "discovery/relationship_discovery.h"
#include "discovery/sentiment_annotator.h"
#include "common/string_util.h"
#include "ingest/ingest.h"
#include "obs/trace.h"
#include "query/planner_registry.h"
#include "query/sql_parser.h"
#include "model/item.h"

namespace impliance::core {

namespace {

std::string SnippetOf(const std::string& text) {
  constexpr size_t kSnippetChars = 100;
  if (text.size() <= kSnippetChars) return text;
  return text.substr(0, kSnippetChars) + "...";
}

}  // namespace

// ----------------------------------------------------------------- Tables

// SQL view over the documents of one kind. Every leaf path is
// automatically value-indexed, so HasIndexOn is unconditionally true —
// "Impliance automatically indexes each document by its values as well as
// its structures" (Section 3.2).
class Impliance::DocumentTable : public query::Table {
 public:
  DocumentTable(const Impliance* owner, std::string kind, model::ViewDef view,
                std::shared_ptr<const std::set<model::DocId>> available)
      : owner_(owner),
        kind_(std::move(kind)),
        view_(std::move(view)),
        available_(std::move(available)) {
    for (const model::ViewColumn& column : view_.columns) {
      schema_.AddColumn(column.name);
    }
  }

  const std::string& table_name() const override { return kind_; }
  const exec::Schema& schema() const override { return schema_; }

  std::vector<exec::Row> ScanAll() const override {
    std::vector<exec::Row> rows;
    for (model::DocId id : owner_->paths_.DocsOfKind(kind_)) {
      if (!Servable(id)) continue;
      Result<model::Document> doc = owner_->store_->Get(id);
      if (doc.ok()) rows.push_back(model::DocumentToRow(view_, *doc));
    }
    return rows;
  }

  bool HasIndexOn(int column) const override { return true; }

  std::vector<exec::Row> IndexLookup(int column,
                                     const model::Value& value) const override {
    return RowsFor(owner_->values_.Lookup(view_.columns[column].path, value));
  }

  std::vector<exec::Row> IndexRange(int column, const model::Value* lo,
                                    const model::Value* hi) const override {
    return RowsFor(
        owner_->values_.Range(view_.columns[column].path, lo, true, hi, true));
  }

  size_t RowCount() const override {
    return owner_->paths_.DocsOfKind(kind_).size();
  }

  // The store epoch is appliance-wide, so any ingest "moves" every view;
  // the stats cache's row-drift check keeps that from forcing recollection
  // on untouched kinds. +1 keeps a fresh store out of the 0 = "untracked"
  // convention.
  uint64_t DataVersion() const override {
    return owner_->store_->change_epoch() + 1;
  }

 private:
  std::vector<exec::Row> RowsFor(const std::vector<model::DocId>& ids) const {
    // Value-index hits may include other kinds sharing the path; restrict.
    std::vector<model::DocId> of_kind = owner_->paths_.DocsOfKind(kind_);
    std::vector<exec::Row> rows;
    for (model::DocId id : ids) {
      if (!std::binary_search(of_kind.begin(), of_kind.end(), id)) continue;
      if (!Servable(id)) continue;
      Result<model::Document> doc = owner_->store_->Get(id);
      if (doc.ok()) rows.push_back(model::DocumentToRow(view_, *doc));
    }
    return rows;
  }

  // Documents outside the availability set are on unreachable partitions;
  // the caller reports them as missing rather than serving them from the
  // local mirror as if the cluster were healthy.
  bool Servable(model::DocId id) const {
    return available_ == nullptr || available_->count(id) != 0;
  }

  const Impliance* owner_;
  std::string kind_;
  model::ViewDef view_;
  std::shared_ptr<const std::set<model::DocId>> available_;
  exec::Schema schema_;
};

// Consolidated view over a discovered schema class: purchase orders from
// CSV, XML, and e-mail queryable as ONE relation (Section 3.2).
class Impliance::ClassTable : public query::Table {
 public:
  ClassTable(const Impliance* owner, discovery::SchemaClass schema_class,
             std::shared_ptr<const std::set<model::DocId>> available)
      : owner_(owner),
        class_(std::move(schema_class)),
        available_(std::move(available)) {
    schema_ = exec::Schema(class_.attributes);
  }

  const std::string& table_name() const override { return class_.name; }
  const exec::Schema& schema() const override { return schema_; }

  std::vector<exec::Row> ScanAll() const override {
    std::vector<exec::Row> rows;
    for (const std::string& kind : class_.kinds) {
      const auto& mapping = class_.path_mapping.at(kind);
      // attribute -> path for this kind.
      std::map<std::string, std::string> attr_to_path;
      for (const auto& [path, attr] : mapping) attr_to_path[attr] = path;
      for (model::DocId id : owner_->paths_.DocsOfKind(kind)) {
        if (available_ != nullptr && available_->count(id) == 0) continue;
        Result<model::Document> doc = owner_->store_->Get(id);
        if (!doc.ok()) continue;
        exec::Row row;
        row.reserve(schema_.size());
        for (const std::string& attr : class_.attributes) {
          auto it = attr_to_path.find(attr);
          const model::Value* value =
              it == attr_to_path.end()
                  ? nullptr
                  : model::ResolvePath(doc->root, it->second);
          row.push_back(value == nullptr ? model::Value::Null() : *value);
        }
        rows.push_back(std::move(row));
      }
    }
    return rows;
  }

  bool HasIndexOn(int column) const override { return false; }
  std::vector<exec::Row> IndexLookup(int, const model::Value&) const override {
    return {};
  }
  std::vector<exec::Row> IndexRange(int, const model::Value*,
                                    const model::Value*) const override {
    return {};
  }
  size_t RowCount() const override {
    size_t count = 0;
    for (const std::string& kind : class_.kinds) {
      count += owner_->paths_.DocsOfKind(kind).size();
    }
    return count;
  }
  uint64_t DataVersion() const override {
    return owner_->store_->change_epoch() + 1;
  }

 private:
  const Impliance* owner_;
  discovery::SchemaClass class_;
  std::shared_ptr<const std::set<model::DocId>> available_;
  exec::Schema schema_;
};

// ------------------------------------------------------------------ Open

Impliance::Impliance(ImplianceOptions options) : options_(std::move(options)) {}

Impliance::~Impliance() {
  Quiesce();
  // Join the pool threads *now*: the index members are declared after
  // execution_ and would otherwise be destroyed while a late background
  // task could still be touching them.
  execution_.reset();
}

void Impliance::Quiesce() {
  quiesced_.store(true, std::memory_order_release);
  if (execution_ != nullptr) execution_->WaitIdle();
  // Stop the autonomic balancer before teardown: its passes run blocking
  // tasks on blade mailboxes that are about to be destroyed.
  if (scale_out_ != nullptr) scale_out_->StopBalancer();
}

Result<std::unique_ptr<Impliance>> Impliance::Open(ImplianceOptions options) {
  auto impliance = std::unique_ptr<Impliance>(new Impliance(options));

  storage::StoreOptions store_options;
  store_options.dir = options.data_dir;
  store_options.memtable_max_docs = options.memtable_max_docs;
  store_options.sync_wal = options.sync_wal;
  IMPLIANCE_ASSIGN_OR_RETURN(impliance->store_,
                             storage::DocumentStore::Open(store_options));
  if (options.scale_out_data_nodes > 0) {
    cluster::SimulatedCluster::Options cluster_options;
    cluster_options.num_data_nodes = options.scale_out_data_nodes;
    cluster_options.num_grid_nodes =
        std::max<size_t>(1, options.scale_out_data_nodes / 2);
    cluster_options.num_cluster_nodes = 1;
    cluster_options.replication =
        std::min(std::max<size_t>(1, options.scale_out_replication),
                 options.scale_out_data_nodes);
    cluster_options.split_doc_threshold = options.scale_out_split_docs;
    cluster_options.merge_doc_threshold = options.scale_out_merge_docs;
    impliance->scale_out_ =
        std::make_unique<cluster::SimulatedCluster>(cluster_options);
    if (options.scale_out_balancer_interval_ms > 0) {
      impliance->scale_out_->StartBalancer(
          options.scale_out_balancer_interval_ms);
    }
  }
  impliance->execution_ = std::make_unique<virt::ExecutionManager>(
      std::max<size_t>(1, options.discovery_threads),
      /*priority_scheduling=*/true);

  // Built-in annotators: pattern (emails, phones, money, dates, ids),
  // sentiment, and an initially-empty dictionary the user can extend.
  auto pattern = std::make_unique<discovery::PatternAnnotator>();
  pattern->AddIdPattern("PO-", "purchase_order_id");
  pattern->AddIdPattern("CLM-", "claim_id");
  impliance->annotators_.push_back(std::move(pattern));
  impliance->annotators_.push_back(
      std::make_unique<discovery::SentimentAnnotator>());
  auto dictionary = std::make_unique<discovery::DictionaryAnnotator>();
  impliance->dictionary_ = dictionary.get();
  impliance->annotators_.push_back(std::move(dictionary));

  // Recovery: the store is durable, the indexes are memory-resident —
  // rebuild them from the latest versions.
  std::unique_lock<std::shared_mutex> lock(impliance->mutex_);
  Impliance* raw = impliance.get();
  Status mirror_status = Status::OK();
  IMPLIANCE_RETURN_IF_ERROR(
      raw->store_->Scan([raw, &mirror_status](const model::Document& doc) {
        IMPLIANCE_CHECK_OK(raw->IndexDocumentLocked(doc));
        if (raw->scale_out_ != nullptr) {
          // Rebuild the mirror from the durable store (blade contents are
          // memory-resident and were lost with the process). A failed
          // mirror here would leave the document with no directory entry,
          // so every distributed query would silently omit it while
          // reporting degraded=false — fail Open instead, like
          // InfuseLocked/Update fail the write.
          Result<model::DocId> mirrored = raw->scale_out_->Ingest(doc);
          if (!mirrored.ok()) {
            mirror_status = Status::IOError(
                "recovery mirror failed for doc " + std::to_string(doc.id) +
                ": " + mirrored.status().ToString());
            return false;
          }
        }
        if (doc.kind == "annotation") {
          const model::Value* annotator =
              model::ResolvePath(doc.root, "/doc/annotator");
          const model::Value* base =
              model::ResolvePath(doc.root, "/doc/base_doc");
          if (annotator != nullptr && base != nullptr) {
            raw->annotated_.insert(
                {annotator->AsString(),
                 static_cast<model::DocId>(base->AsDouble())});
          }
        }
        return true;
      }));
  // Scan stops early (returning OK) on a mirror failure; surface it.
  IMPLIANCE_RETURN_IF_ERROR(mirror_status);
  lock.unlock();
  return impliance;
}

// ---------------------------------------------------------------- Indexing

Status Impliance::IndexDocumentLocked(const model::Document& doc) {
  text_index_.AddDocument(doc);
  paths_.AddDocument(doc);
  values_.AddDocument(doc);
  facets_.AddDocument(doc);
  for (const model::DocRef& ref : doc.refs) {
    joins_.AddEdge(doc.id, ref.target, ref.relation);
  }
  dirty_kinds_.insert(doc.kind);
  return Status::OK();
}

Status Impliance::DeindexDocumentLocked(const model::Document& doc) {
  text_index_.RemoveDocument(doc);
  paths_.RemoveDocument(doc);
  values_.RemoveDocument(doc);
  facets_.RemoveDocument(doc);
  dirty_kinds_.insert(doc.kind);
  return Status::OK();
}

Result<model::DocId> Impliance::InfuseLocked(model::Document doc) {
  IMPLIANCE_ASSIGN_OR_RETURN(model::DocId id, store_->Insert(doc));
  doc.id = id;
  doc.version = 1;
  IMPLIANCE_RETURN_IF_ERROR(IndexDocumentLocked(doc));
  if (scale_out_ != nullptr) {
    // Mirror under the store-assigned id. A failed mirror (no replica
    // acked) is surfaced: the cluster would otherwise silently omit this
    // document from every scatter-gather answer.
    Result<model::DocId> mirrored = scale_out_->Ingest(doc);
    if (!mirrored.ok()) return mirrored.status();
  }
  return id;
}

// ------------------------------------------------------------------ Infuse

Result<std::vector<model::DocId>> Impliance::InfuseContent(
    std::string_view kind, std::string_view raw) {
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<model::Document> docs,
                             ingest::IngestAny(kind, raw));
  std::vector<model::DocId> ids;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (model::Document& doc : docs) {
    IMPLIANCE_ASSIGN_OR_RETURN(model::DocId id, InfuseLocked(std::move(doc)));
    ids.push_back(id);
  }
  return ids;
}

Result<model::DocId> Impliance::Infuse(model::Document doc) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return InfuseLocked(std::move(doc));
}

Result<uint32_t> Impliance::Update(model::DocId id, model::Document doc) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  IMPLIANCE_ASSIGN_OR_RETURN(model::Document old_doc, store_->Get(id));
  IMPLIANCE_ASSIGN_OR_RETURN(uint32_t version,
                             store_->AddVersion(id, doc));
  IMPLIANCE_RETURN_IF_ERROR(DeindexDocumentLocked(old_doc));
  doc.id = id;
  doc.version = version;
  IMPLIANCE_RETURN_IF_ERROR(IndexDocumentLocked(doc));
  if (scale_out_ != nullptr) {
    // Re-mirror so the blades serve the latest version.
    Result<model::DocId> mirrored = scale_out_->Ingest(doc);
    if (!mirrored.ok()) return mirrored.status();
  }
  return version;
}

Result<model::Document> Impliance::Get(model::DocId id) const {
  return store_->Get(id);
}

Result<model::Document> Impliance::GetVersion(model::DocId id,
                                              uint32_t version) const {
  return store_->GetVersion(id, version);
}

// ------------------------------------------------------------------- Query

std::vector<SearchHit> Impliance::Search(const std::string& keywords, size_t k,
                                         QueryHealth* health) const {
  Result<std::vector<SearchHit>> hits =
      SearchAs(AccessController::kAdmin, keywords, k, health);
  IMPLIANCE_CHECK(hits.ok());  // admin is never denied
  return std::move(hits).value();
}

Result<std::vector<SearchHit>> Impliance::SearchAs(
    const std::string& principal, const std::string& keywords, size_t k,
    QueryHealth* health) const {
  if (!access_.HasPrincipal(principal)) {
    return Status::InvalidArgument("unknown principal: " + principal);
  }
  if (health != nullptr) *health = QueryHealth{};
  std::vector<SearchHit> hits;
  if (scale_out_ != nullptr) {
    // Route through the blade tier's failure-aware scatter-gather; the
    // local store stays authoritative for bodies and access checks.
    cluster::ShipStats ship;
    const auto results = scale_out_->KeywordSearch(keywords, k * 4 + 16, &ship);
    if (health != nullptr) {
      health->degraded = ship.degraded;
      health->missing_partitions = ship.missing_partitions;
    }
    for (const auto& result : results) {
      Result<model::Document> doc = store_->Get(result.doc);
      if (!doc.ok()) continue;
      if (!access_.CanRead(principal, doc->kind)) continue;
      SearchHit hit;
      hit.doc = result.doc;
      hit.score = result.score;
      hit.kind = doc->kind;
      hit.snippet = SnippetOf(doc->Text());
      hits.push_back(std::move(hit));
      if (hits.size() >= k) break;
    }
  } else {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    // Over-fetch so the permission filter can still return k results.
    for (const auto& result : text_index_.Search(keywords, k * 4 + 16)) {
      Result<model::Document> doc = store_->Get(result.doc);
      if (!doc.ok()) continue;
      if (!access_.CanRead(principal, doc->kind)) continue;
      SearchHit hit;
      hit.doc = result.doc;
      hit.score = result.score;
      hit.kind = doc->kind;
      hit.snippet = SnippetOf(doc->Text());
      hits.push_back(std::move(hit));
      if (hits.size() >= k) break;
    }
  }
  std::vector<model::DocId> accessed;
  for (const SearchHit& hit : hits) accessed.push_back(hit.doc);
  audit_.Record(principal, "keyword", keywords, std::move(accessed));
  return hits;
}

Result<model::Document> Impliance::GetAs(const std::string& principal,
                                         model::DocId id) const {
  if (!access_.HasPrincipal(principal)) {
    return Status::InvalidArgument("unknown principal: " + principal);
  }
  IMPLIANCE_ASSIGN_OR_RETURN(model::Document doc, store_->Get(id));
  if (!access_.CanRead(principal, doc.kind)) {
    return Status::Aborted("principal " + principal +
                           " may not read kind " + doc.kind);
  }
  audit_.Record(principal, "get", std::to_string(id), {id});
  return doc;
}

query::FacetedResult Impliance::Faceted(const query::FacetedQuery& faceted_query,
                                        QueryHealth* health) const {
  if (health != nullptr) *health = QueryHealth{};
  query::FacetedQuery restricted = faceted_query;
  if (scale_out_ != nullptr) {
    // The local indexes cover every document ever mirrored — including
    // documents whose partitions are down right now. Restrict counts and
    // aggregates to what the blades can actually serve and report the
    // unreachable remainder, instead of answering from ghosts.
    cluster::ShipStats ship;
    restricted.restrict_to = scale_out_->AvailableDocs(&ship);
    if (health != nullptr) {
      health->degraded = ship.degraded;
      health->missing_partitions = ship.missing_partitions;
    }
  }
  std::shared_lock<std::shared_mutex> lock(mutex_);
  query::FacetedSearch search(&text_index_.global(), &paths_, &facets_,
                              &values_);
  // Facet counts / range buckets / aggregates fan out like a SQL segment:
  // DOP capped by the scheduler's view of free workers.
  cluster::Scheduler scheduler;
  cluster::Scheduler::LoadSnapshot load;
  load.grid_queue_depth = static_cast<double>(execution_->pending_tasks());
  search.set_parallelism(
      scheduler.ChooseDop(exec::ParallelExecutor::Shared().num_threads(), load));
  return search.Run(restricted);
}

std::vector<SearchHit> Impliance::SearchField(const std::string& path,
                                              const std::string& keywords,
                                              size_t k) const {
  std::vector<SearchHit> hits;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& result : text_index_.SearchField(path, keywords, k)) {
      Result<model::Document> doc = store_->Get(result.doc);
      if (!doc.ok()) continue;
      SearchHit hit;
      hit.doc = result.doc;
      hit.score = result.score;
      hit.kind = doc->kind;
      hit.snippet = SnippetOf(doc->Text());
      hits.push_back(std::move(hit));
    }
  }
  std::vector<model::DocId> accessed;
  for (const SearchHit& hit : hits) accessed.push_back(hit.doc);
  audit_.Record(AccessController::kAdmin, "keyword-field",
                path + " : " + keywords, std::move(accessed));
  return hits;
}

model::ViewDef Impliance::ViewForLocked(const std::string& kind) const {
  auto cached = view_cache_.find(kind);
  if (cached != view_cache_.end() && !dirty_kinds_.count(kind)) {
    return cached->second;
  }
  // Infer from up to 32 sample documents of the kind.
  std::vector<model::Document> sample_docs;
  std::vector<const model::Document*> sample;
  for (model::DocId id : paths_.DocsOfKind(kind)) {
    Result<model::Document> doc = store_->Get(id);
    if (doc.ok()) sample_docs.push_back(std::move(doc).value());
    if (sample_docs.size() >= 32) break;
  }
  for (const model::Document& doc : sample_docs) sample.push_back(&doc);
  model::ViewDef view = model::InferView(kind, kind, sample);
  view_cache_[kind] = view;
  dirty_kinds_.erase(kind);
  return view;
}

query::Catalog Impliance::BuildCatalogLocked(
    std::shared_ptr<const std::set<model::DocId>> available) const {
  query::Catalog catalog;
  for (const std::string& kind : paths_.Kinds()) {
    catalog.Register(std::make_shared<DocumentTable>(
        this, kind, ViewForLocked(kind), available));
  }
  for (const discovery::SchemaClass& schema_class : schema_classes_) {
    catalog.Register(
        std::make_shared<ClassTable>(this, schema_class, available));
  }
  return catalog;
}

Result<std::vector<exec::Row>> Impliance::Sql(const std::string& sql,
                                              QueryHealth* health,
                                              const std::string& planner) const {
  return SqlAs(AccessController::kAdmin, sql, health, planner);
}

Result<Impliance::ExplainResult> Impliance::ExplainSql(
    const std::string& sql, const std::string& planner_name) const {
  IMPLIANCE_ASSIGN_OR_RETURN(query::SelectStatement stmt, query::ParseSql(sql));
  std::shared_lock<std::shared_mutex> lock(mutex_);
  query::Catalog catalog = BuildCatalogLocked();
  IMPLIANCE_ASSIGN_OR_RETURN(
      std::unique_ptr<query::Planner> planner,
      query::CreatePlanner(planner_name, &stats_cache_));
  IMPLIANCE_ASSIGN_OR_RETURN(query::PlanResult plan,
                             planner->Plan(stmt, catalog));
  return ExplainResult{std::move(plan.explain), std::move(plan.nodes)};
}

Result<std::vector<exec::Row>> Impliance::SqlAs(const std::string& principal,
                                                const std::string& sql,
                                                QueryHealth* health,
                                                const std::string& planner_name) const {
  if (health != nullptr) *health = QueryHealth{};
  if (!access_.HasPrincipal(principal)) {
    return Status::InvalidArgument("unknown principal: " + principal);
  }
  // Intra-query parallelism: cap the morsel DOP by the cluster scheduler's
  // view of free workers. Queued background discovery counts as grid load,
  // so a busy appliance degrades gracefully to serial execution.
  exec::ExecOptions exec_options;
  {
    obs::ScopedSpan plan_span("core.plan");
    IMPLIANCE_ASSIGN_OR_RETURN(query::SelectStatement stmt,
                               query::ParseSql(sql));
    // Kind-level policy: the statement's table(s) map to kinds (or schema
    // classes, readable when every member kind is).
    auto kind_readable = [this, &principal](const std::string& table) {
      if (access_.CanRead(principal, table)) return true;
      std::shared_lock<std::shared_mutex> lock(mutex_);
      for (const discovery::SchemaClass& schema_class : schema_classes_) {
        if (schema_class.name != table) continue;
        for (const std::string& kind : schema_class.kinds) {
          if (!access_.CanRead(principal, kind)) return false;
        }
        return true;
      }
      return false;
    };
    bool readable = kind_readable(stmt.table);
    for (const query::JoinClause& join : stmt.joins) {
      readable = readable && kind_readable(join.table);
    }
    if (!readable) {
      audit_.Record(principal, "sql(denied)", sql, {});
      return Status::Aborted("principal " + principal +
                             " may not read the queried kinds");
    }
    cluster::Scheduler scheduler;
    cluster::Scheduler::LoadSnapshot load;
    load.grid_queue_depth = static_cast<double>(execution_->pending_tasks());
    exec_options.dop = scheduler.ChooseDop(
        exec::ParallelExecutor::Shared().num_threads(), load);
  }
  // Availability before the scan: with a scale-out tier, table scans may
  // only read documents the blades can serve; the rest is reported through
  // `health` — the same complete-or-degraded contract keyword search has.
  std::shared_ptr<const std::set<model::DocId>> available;
  if (scale_out_ != nullptr) {
    cluster::ShipStats ship;
    available = scale_out_->AvailableDocs(&ship);
    if (health != nullptr) {
      health->degraded = ship.degraded;
      health->missing_partitions = ship.missing_partitions;
    }
  }
  Result<std::vector<exec::Row>> rows =
      [&]() -> Result<std::vector<exec::Row>> {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    query::Catalog catalog = BuildCatalogLocked(available);
    IMPLIANCE_ASSIGN_OR_RETURN(
        std::unique_ptr<query::Planner> planner,
        query::CreatePlanner(planner_name, &stats_cache_));
    return query::RunSql(sql, catalog, planner.get(), exec_options);
  }();
  if (rows.ok()) {
    // Row-level ids are not surfaced by SQL; audit the kinds touched.
    audit_.Record(principal, "sql", sql, {});
  }
  return rows;
}

std::vector<Impliance::LineageStep> Impliance::Lineage(model::DocId id) const {
  std::vector<LineageStep> chain;
  std::set<model::DocId> seen;
  model::DocId current = id;
  std::string via;
  while (current != model::kInvalidDocId && seen.insert(current).second) {
    chain.push_back(LineageStep{current, via});
    Result<model::Document> doc = store_->Get(current);
    if (!doc.ok() || doc->refs.empty()) break;
    // Follow the first derivation ref (annotations reference their base).
    via = doc->refs.front().relation;
    current = doc->refs.front().target;
  }
  return chain;
}

std::string Impliance::LabelFor(model::DocId id) const {
  Result<model::Document> doc = store_->Get(id);
  if (!doc.ok()) return "";
  return doc->kind + "#" + std::to_string(id);
}

query::GraphQuery Impliance::Graph() const {
  // NOTE: graph queries read the join index without locking; do not run
  // them concurrently with an active discovery pass (WaitForDiscovery()
  // first). Interactive use after discovery is the intended pattern.
  query::GraphQuery graph(&joins_,
                          [this](model::DocId id) { return LabelFor(id); });
  cluster::Scheduler scheduler;
  cluster::Scheduler::LoadSnapshot load;
  load.grid_queue_depth = static_cast<double>(execution_->pending_tasks());
  graph.set_parallelism(
      scheduler.ChooseDop(exec::ParallelExecutor::Shared().num_threads(), load));
  return graph;
}

// --------------------------------------------------------------- Discovery

void Impliance::RegisterAnnotator(
    std::unique_ptr<discovery::Annotator> annotator) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  annotators_.push_back(std::move(annotator));
}

void Impliance::AddDictionaryEntries(const std::string& entity_type,
                                     const std::vector<std::string>& entries) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  dictionary_->AddEntries(entity_type, entries);
}

Result<DiscoveryReport> Impliance::RunDiscovery() {
  DiscoveryReport report;

  // Snapshot latest base documents (no index lock; the store has its own).
  std::vector<model::Document> corpus;
  IMPLIANCE_RETURN_IF_ERROR(store_->Scan([&corpus](const model::Document& doc) {
    corpus.push_back(doc);
    return true;
  }));

  // Phase 1: intra-document annotation for (annotator, doc) pairs not yet
  // processed. Annotate outside the lock; persist under it.
  struct PendingAnnotation {
    std::string annotator;
    model::DocId base;
    model::Document annotation;
    bool has_annotation;
  };
  std::vector<PendingAnnotation> pending;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const model::Document& doc : corpus) {
      if (doc.doc_class != model::DocClass::kBase) continue;
      for (const auto& annotator : annotators_) {
        if (annotated_.count({annotator->name(), doc.id})) continue;
        if (!annotator->InterestedIn(doc)) continue;
        PendingAnnotation item;
        item.annotator = annotator->name();
        item.base = doc.id;
        std::vector<discovery::AnnotationSpan> spans = annotator->Annotate(doc);
        item.has_annotation = !spans.empty();
        if (item.has_annotation) {
          item.annotation =
              discovery::MakeAnnotationDocument(doc, annotator->name(), spans);
        }
        pending.push_back(std::move(item));
      }
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    std::set<model::DocId> touched;
    for (PendingAnnotation& item : pending) {
      annotated_.insert({item.annotator, item.base});
      touched.insert(item.base);
      if (!item.has_annotation) continue;
      IMPLIANCE_ASSIGN_OR_RETURN(model::DocId id,
                                 InfuseLocked(std::move(item.annotation)));
      (void)id;
      ++report.annotations_created;
    }
    report.documents_annotated = touched.size();
  }

  // Phase 1b: entity-link edges. Documents mentioning the same extracted
  // entity become associated; to bound fan-out, each entity's documents
  // are chained rather than fully cross-linked (connectivity is what the
  // graph interface needs).
  {
    std::map<std::pair<std::string, std::string>, std::vector<model::DocId>>
        mentions;  // (type, text) -> base docs, in id order
    IMPLIANCE_RETURN_IF_ERROR(store_->Scan([&](const model::Document& doc) {
      if (doc.kind != "annotation") return true;
      const model::Value* base = model::ResolvePath(doc.root, "/doc/base_doc");
      if (base == nullptr) return true;
      const model::DocId base_id =
          static_cast<model::DocId>(base->AsDouble());
      for (const auto& span : discovery::SpansFromAnnotationDocument(doc)) {
        if (span.entity_type == "sentiment") continue;
        std::vector<model::DocId>& docs =
            mentions[{span.entity_type, span.text}];
        if (docs.empty() || docs.back() != base_id) docs.push_back(base_id);
      }
      return true;
    }));
    constexpr size_t kMaxDocsPerEntity = 64;
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const size_t before = joins_.num_edges();
    for (const auto& [key, docs] : mentions) {
      if (docs.size() < 2 || docs.size() > kMaxDocsPerEntity) continue;
      for (size_t i = 1; i < docs.size(); ++i) {
        joins_.AddEdge(docs[i - 1], docs[i],
                       "shares_entity:" + key.first, 0.8);
      }
    }
    report.entity_link_edges = joins_.num_edges() - before;
  }

  // Phase 2a: schema consolidation over base kinds.
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    std::vector<discovery::KindSchema> kind_schemas;
    for (const std::string& kind : paths_.Kinds()) {
      if (kind == "annotation") continue;
      kind_schemas.push_back(
          discovery::KindSchema{kind, paths_.PathsOfKind(kind)});
    }
    schema_classes_ = discovery::ConsolidateSchemas(kind_schemas);
    report.schema_classes = schema_classes_.size();
  }

  // Phase 2b: entity resolution over documents exposing a /doc/name leaf.
  {
    std::vector<discovery::EntityRecord> records;
    for (const model::Document& doc : corpus) {
      if (doc.doc_class != model::DocClass::kBase) continue;
      const model::Value* name = model::ResolvePath(doc.root, "/doc/name");
      if (name == nullptr || !name->is_string()) continue;
      discovery::EntityRecord record;
      record.doc = doc.id;
      record.name = name->string_value();
      const model::Value* email = model::ResolvePath(doc.root, "/doc/email");
      if (email != nullptr && email->is_string()) {
        record.email = email->string_value();
      }
      const model::Value* city = model::ResolvePath(doc.root, "/doc/city");
      if (city != nullptr && city->is_string()) {
        record.city = city->string_value();
      }
      records.push_back(std::move(record));
    }
    discovery::EntityResolver resolver;
    std::vector<std::vector<size_t>> clusters = resolver.Resolve(records);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    for (const std::vector<size_t>& cluster : clusters) {
      for (size_t i = 1; i < cluster.size(); ++i) {
        model::DocId a = records[cluster[0]].doc;
        model::DocId b = records[cluster[i]].doc;
        if (a > b) std::swap(a, b);
        if (merged_entities_.insert({a, b}).second) {
          joins_.AddEdge(a, b, "same_entity", 0.9);
          ++report.entity_clusters_merged;
        }
      }
    }
  }

  // Phase 3: inclusion-dependency join discovery + materialization.
  {
    std::vector<const model::Document*> corpus_ptrs;
    for (const model::Document& doc : corpus) corpus_ptrs.push_back(&doc);
    std::vector<discovery::DiscoveredJoin> found =
        discovery::DiscoverJoins(corpus_ptrs);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    const size_t before = joins_.num_edges();
    for (const discovery::DiscoveredJoin& join : found) {
      discovery::MaterializeJoinEdges(corpus_ptrs, join, &joins_);
    }
    report.join_edges_added = joins_.num_edges() - before;
  }
  return report;
}

void Impliance::StartBackgroundDiscovery() {
  if (quiesced_.load(std::memory_order_acquire)) return;
  execution_->SubmitBackground([this] {
    Result<DiscoveryReport> report = RunDiscovery();
    if (!report.ok()) {
      IMPLIANCE_LOG(Warning) << "background discovery failed: "
                             << report.status().ToString();
    }
  });
}

void Impliance::WaitForDiscovery() { execution_->WaitIdle(); }

// ----------------------------------------------------------- Introspection

std::vector<std::string> Impliance::Kinds() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return paths_.Kinds();
}

Result<model::ViewDef> Impliance::ViewFor(const std::string& kind) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<model::DocId> docs = paths_.DocsOfKind(kind);
  if (docs.empty()) return Status::NotFound("no documents of kind " + kind);
  return ViewForLocked(kind);
}

std::vector<discovery::SchemaClass> Impliance::SchemaClasses() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return schema_classes_;
}

std::vector<model::Document> Impliance::AnnotationsFor(model::DocId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<model::Document> annotations;
  for (const auto& edge : joins_.EdgesTo(id, "annotates")) {
    Result<model::Document> doc = store_->Get(edge.src);
    if (doc.ok() && doc->kind == "annotation") {
      annotations.push_back(std::move(doc).value());
    }
  }
  return annotations;
}

std::vector<model::DocId> Impliance::DocsOfKind(const std::string& kind) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return paths_.DocsOfKind(kind);
}

ImplianceStats Impliance::GetStats() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  ImplianceStats stats;
  stats.store = store_->GetStats();
  stats.indexed_documents = text_index_.global().num_documents();
  stats.indexed_terms = text_index_.global().num_terms();
  stats.indexed_paths = paths_.num_paths();
  stats.join_edges = joins_.num_edges();
  stats.kinds = paths_.Kinds().size();
  stats.admin_steps = 0;  // nothing to create, tune, or analyze — by design
  stats.interactive_latency_ms = execution_->interactive_latency_ms();
  return stats;
}

}  // namespace impliance::core
