#ifndef IMPLIANCE_CORE_IMPLIANCE_H_
#define IMPLIANCE_CORE_IMPLIANCE_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/result.h"
#include "discovery/annotator.h"
#include "discovery/dictionary_annotator.h"
#include "discovery/schema_mapper.h"
#include "index/facet_index.h"
#include "index/fielded_index.h"
#include "index/inverted_index.h"
#include "index/join_index.h"
#include "index/path_index.h"
#include "index/value_index.h"
#include "model/document.h"
#include "model/view.h"
#include "obs/metrics.h"
#include "query/faceted.h"
#include "query/graph_query.h"
#include "core/security.h"
#include "query/opt/stats_cache.h"
#include "query/planner.h"
#include "storage/document_store.h"
#include "virt/execution_manager.h"

namespace impliance::core {

struct ImplianceOptions {
  std::string data_dir;            // durable storage location (required)
  size_t discovery_threads = 2;    // background analysis workers
  size_t memtable_max_docs = 4096;
  bool sync_wal = false;
  // Scale-out tier (Section 3.3): when > 0 the appliance mirrors documents
  // onto a simulated blade cluster and routes keyword search through its
  // failure-aware scatter-gather, so node loss surfaces as a degraded
  // answer instead of a wrong one. 0 = single-node (default).
  size_t scale_out_data_nodes = 0;
  size_t scale_out_replication = 1;
  // Autonomic partition management on the scale-out tier (Section 3.4):
  // when > 0, a background balancer splits hot tablets, merges cold ones,
  // and migrates partitions off hot nodes every this-many milliseconds.
  // Stopped by Quiesce(). 0 = static partitions (default).
  uint64_t scale_out_balancer_interval_ms = 0;
  // Split/merge thresholds forwarded to the cluster (0 = disabled).
  size_t scale_out_split_docs = 0;
  size_t scale_out_merge_docs = 0;
};

struct SearchHit {
  model::DocId doc = model::kInvalidDocId;
  double score = 0.0;
  std::string kind;
  std::string snippet;
};

// Completeness of one query's answer. degraded=true means some partitions
// could not be reached even after failover; missing_partitions says how
// many units of work were lost. Complete answers are {false, 0}.
struct QueryHealth {
  bool degraded = false;
  uint64_t missing_partitions = 0;
};

struct DiscoveryReport {
  size_t documents_annotated = 0;
  size_t annotations_created = 0;
  size_t schema_classes = 0;
  size_t join_edges_added = 0;
  size_t entity_clusters_merged = 0;
  // Edges linking base documents that mention the same extracted entity
  // ("additional references forming an association between this document
  // and others already stored", Section 3.2).
  size_t entity_link_edges = 0;
};

struct ImplianceStats {
  storage::StoreStats store;
  // Interactive-path latency (queue wait + execution) recorded by the
  // execution manager; exposed so the serving layer's Stats op can report
  // core p50/p95/p99 alongside end-to-end numbers. A bounded-histogram
  // snapshot: the source lives on the hot path and must not grow per query.
  obs::HistogramSnapshot interactive_latency_ms;
  size_t indexed_documents = 0;
  size_t indexed_terms = 0;
  size_t indexed_paths = 0;
  size_t join_edges = 0;
  size_t kinds = 0;
  // The "zero knobs" claim, measurably: count of mandatory administrative
  // actions (schema/index/statistics DDL) a user had to perform. Always 0.
  size_t admin_steps = 0;
};

// The appliance facade: a single-system-image information store that
// ingests any format with no preparation, indexes every value and path
// automatically, runs discovery in the background, and answers through
// four interfaces — keyword, faceted, SQL-over-views, and graph
// (Sections 2.2, 3.2). Thread-safe.
class Impliance {
 public:
  static Result<std::unique_ptr<Impliance>> Open(ImplianceOptions options);
  ~Impliance();

  Impliance(const Impliance&) = delete;
  Impliance& operator=(const Impliance&) = delete;

  // -------------------------------------------------------------- Infuse

  // Throw anything in: sniffs the format (CSV/XML/JSON/e-mail/text),
  // maps to the uniform model, persists, and indexes. Returns the ids.
  Result<std::vector<model::DocId>> InfuseContent(std::string_view kind,
                                                  std::string_view raw);

  // Infuses an already-structured document.
  Result<model::DocId> Infuse(model::Document doc);

  // Logical update: appends an immutable new version and re-indexes
  // (old versions remain retrievable).
  Result<uint32_t> Update(model::DocId id, model::Document doc);

  Result<model::Document> Get(model::DocId id) const;
  Result<model::Document> GetVersion(model::DocId id, uint32_t version) const;

  // --------------------------------------------------------------- Query

  // Interface 1a: ranked keyword search, works out of the box. With a
  // scale-out tier configured, `health` (optional) reports whether the
  // answer is complete or degraded by node failures.
  std::vector<SearchHit> Search(const std::string& keywords, size_t k,
                                QueryHealth* health = nullptr) const;

  // Hierarchy-aware search (Section 3.3's native-hierarchy indexing):
  // restrict ranking to the text under one document path, e.g. search
  // only e-mail subjects with path "/doc/subject".
  std::vector<SearchHit> SearchField(const std::string& path,
                                     const std::string& keywords,
                                     size_t k) const;

  // Interface 1b: faceted/guided search with drill-down and aggregates.
  // With a scale-out tier, counts and aggregates are restricted to
  // documents the blades can currently serve; `health` (optional) reports
  // the unreachable remainder instead of silently counting a locally-
  // indexed ghost of a lost partition.
  query::FacetedResult Faceted(const query::FacetedQuery& faceted_query,
                               QueryHealth* health = nullptr) const;

  // SQL over system-supplied views: one view per kind (inferred), plus one
  // consolidated view per discovered schema class (Figure 2). `health` as
  // in Faceted: complete-or-degraded, never silently partial. `planner`
  // picks the engine: "" / "cost" = the cost-aware optimizer over
  // auto-maintained statistics (default), "simple" = the paper-faithful
  // baseline.
  Result<std::vector<exec::Row>> Sql(const std::string& sql,
                                     QueryHealth* health = nullptr,
                                     const std::string& planner = "") const;

  // EXPLAIN: plans `sql` without executing it and returns the costed plan
  // tree — text rendering plus structured nodes (empty for "simple", which
  // reports text only).
  struct ExplainResult {
    std::string text;
    std::vector<query::ExplainNode> nodes;
  };
  Result<ExplainResult> ExplainSql(const std::string& sql,
                                   const std::string& planner = "") const;

  // Interface 2: graph queries over ingested refs + discovered joins.
  // "How are these two pieces of data connected?"
  query::GraphQuery Graph() const;

  // ------------------------------------------------ Security & auditing

  // Policy-driven access control (Section 4): principal-scoped variants of
  // the query interfaces. Results are filtered to kinds the principal may
  // read, and every call is recorded in the audit log. The unscoped
  // methods act as the implicit "admin" principal (also audited).
  Result<std::vector<SearchHit>> SearchAs(const std::string& principal,
                                          const std::string& keywords,
                                          size_t k,
                                          QueryHealth* health = nullptr) const;
  Result<std::vector<exec::Row>> SqlAs(const std::string& principal,
                                       const std::string& sql,
                                       QueryHealth* health = nullptr,
                                       const std::string& planner = "") const;
  Result<model::Document> GetAs(const std::string& principal,
                                model::DocId id) const;

  AccessController& access_control() { return access_; }
  const AuditLog& audit_log() const { return audit_; }

  // Lineage (Section 4): the derivation chain of `id` — for an annotation,
  // the base document it annotates, recursively. Each element is
  // (document id, relation that produced it). The document itself is
  // first with an empty relation.
  struct LineageStep {
    model::DocId doc = model::kInvalidDocId;
    std::string relation;
  };
  std::vector<LineageStep> Lineage(model::DocId id) const;

  // ----------------------------------------------------------- Discovery

  // Additional annotators beyond the built-in pattern/sentiment pair.
  void RegisterAnnotator(std::unique_ptr<discovery::Annotator> annotator);
  // Convenience: feeds the built-in dictionary annotator.
  void AddDictionaryEntries(const std::string& entity_type,
                            const std::vector<std::string>& entries);

  // One full synchronous discovery pass: annotate new documents,
  // consolidate schemas, resolve entities, discover & materialize joins.
  Result<DiscoveryReport> RunDiscovery();

  // Queues the same pass at background priority; interactive queries keep
  // jumping the queue (Section 3.4 execution management). No-op once
  // Quiesce() has been called.
  void StartBackgroundDiscovery();
  void WaitForDiscovery();

  // Permanently stops accepting new background discovery work and blocks
  // until in-flight background tasks finish. Called by the serving layer
  // during graceful drain (and by the destructor) so discovery workers are
  // quiesced *before* the indexes and store they touch are torn down.
  void Quiesce();

  // -------------------------------------------------------- Introspection

  std::vector<std::string> Kinds() const;
  Result<model::ViewDef> ViewFor(const std::string& kind) const;
  std::vector<discovery::SchemaClass> SchemaClasses() const;
  // Annotation documents referencing `id`.
  std::vector<model::Document> AnnotationsFor(model::DocId id) const;
  // All documents of a kind (latest versions).
  std::vector<model::DocId> DocsOfKind(const std::string& kind) const;

  ImplianceStats GetStats() const;

  // Storage maintenance: merges segment files (all versions preserved).
  // Safe to run at any time; the appliance schedules it itself — exposed
  // for tests and operators who want to force it.
  Status CompactStorage() { return store_->Compact(); }

  // The scale-out tier, when configured (nullptr otherwise). Exposed so
  // operators and tests can drive membership (fail/recover/re-replicate).
  cluster::SimulatedCluster* scale_out() { return scale_out_.get(); }

 private:
  class DocumentTable;
  class ClassTable;

  explicit Impliance(ImplianceOptions options);

  Status IndexDocumentLocked(const model::Document& doc);
  Status DeindexDocumentLocked(const model::Document& doc);
  Result<model::DocId> InfuseLocked(model::Document doc);
  model::ViewDef ViewForLocked(const std::string& kind) const;
  // `available` (optional) restricts every table to that document set —
  // the scale-out tier's availability scan under partial failure.
  query::Catalog BuildCatalogLocked(
      std::shared_ptr<const std::set<model::DocId>> available = nullptr) const;
  std::string LabelFor(model::DocId id) const;

  ImplianceOptions options_;
  std::unique_ptr<storage::DocumentStore> store_;
  // Mirrors documents under their store-assigned ids; keyword search routes
  // through it when present. The local store stays authoritative for
  // document bodies (snippets, access checks).
  std::unique_ptr<cluster::SimulatedCluster> scale_out_;
  std::unique_ptr<virt::ExecutionManager> execution_;
  std::atomic<bool> quiesced_{false};

  mutable std::shared_mutex mutex_;
  index::FieldedTextIndex text_index_;
  index::PathIndex paths_;
  index::ValueIndex values_;
  index::FacetIndex facets_;
  index::JoinIndex joins_;

  std::vector<std::unique_ptr<discovery::Annotator>> annotators_;
  discovery::DictionaryAnnotator* dictionary_ = nullptr;  // owned via list
  // (annotator name, doc) pairs already processed.
  std::set<std::pair<std::string, model::DocId>> annotated_;
  std::vector<discovery::SchemaClass> schema_classes_;
  // Entity-resolution merges already recorded (doc pairs).
  std::set<std::pair<model::DocId, model::DocId>> merged_entities_;

  mutable std::map<std::string, model::ViewDef> view_cache_;
  mutable std::set<std::string> dirty_kinds_;

  mutable AccessController access_;
  mutable AuditLog audit_;

  // Auto-maintained optimizer statistics (the appliance never asks anyone
  // to run ANALYZE — Section 2.1's zero-knobs claim). Keyed by view name;
  // freshness tracked against the store's change epoch.
  mutable query::opt::TableStatsCache stats_cache_;
};

}  // namespace impliance::core

#endif  // IMPLIANCE_CORE_IMPLIANCE_H_
