#ifndef IMPLIANCE_CORE_SECURITY_H_
#define IMPLIANCE_CORE_SECURITY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "model/document.h"

namespace impliance::core {

// Policy-driven access control (Section 4): "information is provided to
// the right people, and only to the right people." Grants are per document
// kind (schema class), the natural policy unit in a system whose schemas
// are discovered rather than declared. The implicit "admin" principal can
// read everything. Thread-safe.
class AccessController {
 public:
  static constexpr const char* kAdmin = "admin";

  void CreatePrincipal(const std::string& principal);
  bool HasPrincipal(const std::string& principal) const;

  // Grants read on `kind` ("*" = every kind) to an existing principal.
  Status GrantRead(const std::string& principal, const std::string& kind);
  Status RevokeRead(const std::string& principal, const std::string& kind);

  // Admin: always. Unknown principals: never.
  bool CanRead(const std::string& principal, const std::string& kind) const;

  std::vector<std::string> Principals() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::set<std::string>> grants_;  // principal -> kinds
};

// Monitoring and auditing (Section 4): every query is recorded with the
// documents it surfaced, so one can "trace ... queries that have accessed"
// a piece of data. Thread-safe, append-only.
class AuditLog {
 public:
  struct Entry {
    uint64_t seq = 0;
    std::string principal;
    std::string interface;  // "keyword", "sql", "faceted", "graph", "get"
    std::string query;
    std::vector<model::DocId> docs_accessed;
  };

  // Returns the entry's sequence number.
  uint64_t Record(std::string principal, std::string interface,
                  std::string query, std::vector<model::DocId> docs);

  // Hippocratic-database style disclosure: which queries touched `doc`?
  std::vector<Entry> QueriesTouching(model::DocId doc) const;

  std::vector<Entry> ByPrincipal(const std::string& principal) const;

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  uint64_t next_seq_ = 1;
};

}  // namespace impliance::core

#endif  // IMPLIANCE_CORE_SECURITY_H_
