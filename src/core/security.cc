#include "core/security.h"

namespace impliance::core {

void AccessController::CreatePrincipal(const std::string& principal) {
  std::lock_guard<std::mutex> lock(mutex_);
  grants_.try_emplace(principal);
}

bool AccessController::HasPrincipal(const std::string& principal) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return principal == kAdmin || grants_.count(principal) > 0;
}

Status AccessController::GrantRead(const std::string& principal,
                                   const std::string& kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = grants_.find(principal);
  if (it == grants_.end()) {
    return Status::NotFound("no such principal: " + principal);
  }
  it->second.insert(kind);
  return Status::OK();
}

Status AccessController::RevokeRead(const std::string& principal,
                                    const std::string& kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = grants_.find(principal);
  if (it == grants_.end()) {
    return Status::NotFound("no such principal: " + principal);
  }
  it->second.erase(kind);
  return Status::OK();
}

bool AccessController::CanRead(const std::string& principal,
                               const std::string& kind) const {
  if (principal == kAdmin) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = grants_.find(principal);
  if (it == grants_.end()) return false;
  return it->second.count("*") > 0 || it->second.count(kind) > 0;
}

std::vector<std::string> AccessController::Principals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> principals;
  principals.reserve(grants_.size());
  for (const auto& [principal, kinds] : grants_) {
    principals.push_back(principal);
  }
  return principals;
}

uint64_t AuditLog::Record(std::string principal, std::string interface,
                          std::string query,
                          std::vector<model::DocId> docs) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.seq = next_seq_++;
  entry.principal = std::move(principal);
  entry.interface = std::move(interface);
  entry.query = std::move(query);
  entry.docs_accessed = std::move(docs);
  entries_.push_back(std::move(entry));
  return entries_.back().seq;
}

std::vector<AuditLog::Entry> AuditLog::QueriesTouching(
    model::DocId doc) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> matching;
  for (const Entry& entry : entries_) {
    for (model::DocId accessed : entry.docs_accessed) {
      if (accessed == doc) {
        matching.push_back(entry);
        break;
      }
    }
  }
  return matching;
}

std::vector<AuditLog::Entry> AuditLog::ByPrincipal(
    const std::string& principal) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> matching;
  for (const Entry& entry : entries_) {
    if (entry.principal == principal) matching.push_back(entry);
  }
  return matching;
}

size_t AuditLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace impliance::core
