#ifndef IMPLIANCE_DISCOVERY_PATTERN_ANNOTATOR_H_
#define IMPLIANCE_DISCOVERY_PATTERN_ANNOTATOR_H_

#include <string>
#include <vector>

#include "discovery/annotator.h"

namespace impliance::discovery {

// Hand-written lexical scanners for machine-shaped entities: e-mail
// addresses, phone numbers, money amounts, ISO dates, and prefixed business
// identifiers (e.g. "PO-12345", "CLM-9"). Deliberately scanner-based rather
// than std::regex for speed and deterministic behavior.
class PatternAnnotator : public Annotator {
 public:
  struct IdPattern {
    std::string prefix;       // e.g. "PO-"
    std::string entity_type;  // e.g. "purchase_order_id"
  };

  // Default id patterns: none. Add business-id prefixes via AddIdPattern.
  PatternAnnotator() = default;

  void AddIdPattern(std::string prefix, std::string entity_type) {
    id_patterns_.push_back(IdPattern{std::move(prefix), std::move(entity_type)});
  }

  std::string name() const override { return "pattern"; }

  std::vector<AnnotationSpan> Annotate(
      const model::Document& doc) const override;

  // Exposed for tests: scans raw text.
  std::vector<AnnotationSpan> ScanText(std::string_view text) const;

 private:
  std::vector<IdPattern> id_patterns_;
};

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_PATTERN_ANNOTATOR_H_
