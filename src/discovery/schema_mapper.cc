#include "discovery/schema_mapper.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace impliance::discovery {

namespace {

// Leaf attribute name of a path: last segment, attribute markers and
// case noise stripped.
std::string LeafName(const std::string& path) {
  std::vector<std::string> segments = Split(path, '/');
  std::string leaf = segments.empty() ? path : segments.back();
  if (!leaf.empty() && leaf.front() == '@') leaf.erase(leaf.begin());
  return ToLower(leaf);
}

std::set<std::string> LeafNames(const std::vector<std::string>& paths) {
  std::set<std::string> names;
  for (const std::string& path : paths) {
    std::string leaf = LeafName(path);
    // Structural interior segments like "doc" carry no schema signal.
    if (leaf == "doc" || leaf.empty()) continue;
    names.insert(std::move(leaf));
  }
  return names;
}

}  // namespace

double SchemaSimilarity(const std::vector<std::string>& paths_a,
                        const std::vector<std::string>& paths_b) {
  std::set<std::string> a = LeafNames(paths_a);
  std::set<std::string> b = LeafNames(paths_b);
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  for (const std::string& name : a) {
    if (b.count(name)) ++inter;
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

std::vector<SchemaClass> ConsolidateSchemas(
    const std::vector<KindSchema>& kinds, const SchemaMapperOptions& options) {
  std::vector<KindSchema> sorted = kinds;
  std::sort(sorted.begin(), sorted.end(),
            [](const KindSchema& a, const KindSchema& b) {
              return a.kind < b.kind;
            });

  struct Cluster {
    KindSchema representative;
    std::vector<const KindSchema*> members;
  };
  std::vector<Cluster> clusters;
  for (const KindSchema& kind : sorted) {
    bool placed = false;
    for (Cluster& cluster : clusters) {
      if (SchemaSimilarity(cluster.representative.leaf_paths,
                           kind.leaf_paths) >= options.similarity_threshold) {
        cluster.members.push_back(&kind);
        placed = true;
        break;
      }
    }
    if (!placed) {
      clusters.push_back(Cluster{kind, {&kind}});
    }
  }

  std::vector<SchemaClass> classes;
  classes.reserve(clusters.size());
  for (const Cluster& cluster : clusters) {
    SchemaClass schema_class;
    schema_class.name = "class_" + cluster.representative.kind;
    std::set<std::string> attributes;
    for (const KindSchema* member : cluster.members) {
      schema_class.kinds.push_back(member->kind);
      std::map<std::string, std::string>& mapping =
          schema_class.path_mapping[member->kind];
      for (const std::string& path : member->leaf_paths) {
        std::string leaf = LeafName(path);
        if (leaf == "doc" || leaf.empty()) continue;
        mapping[path] = leaf;
        attributes.insert(leaf);
      }
    }
    schema_class.attributes.assign(attributes.begin(), attributes.end());
    classes.push_back(std::move(schema_class));
  }
  return classes;
}

}  // namespace impliance::discovery
