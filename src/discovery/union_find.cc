#include "discovery/union_find.h"

#include <map>

namespace impliance::discovery {

std::vector<std::vector<size_t>> UnionFind::Sets() {
  std::map<size_t, std::vector<size_t>> by_root;
  for (size_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  // map keyed by root; roots found in index order are not necessarily the
  // smallest member, so re-key by first member for determinism.
  std::map<size_t, std::vector<size_t>> by_min;
  for (auto& [root, members] : by_root) {
    by_min[members.front()] = std::move(members);
  }
  std::vector<std::vector<size_t>> sets;
  sets.reserve(by_min.size());
  for (auto& [min_member, members] : by_min) {
    sets.push_back(std::move(members));
  }
  return sets;
}

}  // namespace impliance::discovery
