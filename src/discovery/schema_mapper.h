#ifndef IMPLIANCE_DISCOVERY_SCHEMA_MAPPER_H_
#define IMPLIANCE_DISCOVERY_SCHEMA_MAPPER_H_

#include <map>
#include <string>
#include <vector>

namespace impliance::discovery {

// Schema consolidation (Section 3.2, citing Clio): clusters document kinds
// whose structural fingerprints are similar, so that "customer purchase
// orders can all be searched together, whether they are ingested via e-mail,
// a spreadsheet, a Word document, a relational row, or other formats."
//
// Input: per-kind leaf paths. Kinds are clustered by Jaccard similarity of
// their leaf *names* (the path's last segment, since nesting differs across
// formats); each cluster gets a canonical schema class and a per-kind
// mapping from concrete path to canonical attribute name.

struct KindSchema {
  std::string kind;
  std::vector<std::string> leaf_paths;  // e.g. {"/doc/id", "/doc/total"}
};

struct SchemaClass {
  std::string name;                 // canonical class name
  std::vector<std::string> kinds;   // member kinds
  // kind -> (concrete path -> canonical attribute).
  std::map<std::string, std::map<std::string, std::string>> path_mapping;
  // canonical attributes, sorted.
  std::vector<std::string> attributes;
};

struct SchemaMapperOptions {
  double similarity_threshold = 0.5;  // leaf-name Jaccard to merge kinds
};

// Deterministic greedy clustering: kinds sorted by name; each joins the
// first existing cluster whose representative is similar enough, else
// starts a new cluster named "class_<representative kind>".
std::vector<SchemaClass> ConsolidateSchemas(
    const std::vector<KindSchema>& kinds,
    const SchemaMapperOptions& options = SchemaMapperOptions());

// Leaf-name Jaccard between two path sets (exposed for tests).
double SchemaSimilarity(const std::vector<std::string>& paths_a,
                        const std::vector<std::string>& paths_b);

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_SCHEMA_MAPPER_H_
