#include "discovery/entity_resolver.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"
#include "discovery/union_find.h"

namespace impliance::discovery {

namespace {

// Token-wise name similarity: tokens are matched greedily (best Jaro-
// Winkler counterpart, each used once) and the MINIMUM matched similarity
// is returned. This is deliberately stricter than Jaro-Winkler over the
// joined string: two names that agree on every token but one ("jon smith
// accounting" vs "jon smith engineering") must not match just because the
// long shared part dominates the string-level score. Token order is
// irrelevant ("Smith, Jon" == "jon smith"). Returns 0 when token counts
// differ by more than one or a token finds no counterpart.
double NameSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  if (ta.size() > tb.size()) std::swap(ta, tb);
  if (tb.size() - ta.size() > 1) return 0.0;

  std::vector<bool> used(tb.size(), false);
  double min_similarity = 1.0;
  for (const std::string& token : ta) {
    double best = -1.0;
    size_t best_index = 0;
    for (size_t j = 0; j < tb.size(); ++j) {
      if (used[j]) continue;
      const double sim = JaroWinkler(token, tb[j]);
      if (sim > best) {
        best = sim;
        best_index = j;
      }
    }
    if (best < 0) return 0.0;
    used[best_index] = true;
    min_similarity = std::min(min_similarity, best);
  }
  return min_similarity;
}

}  // namespace

std::string EntityResolver::BlockKey(const EntityRecord& record) {
  // Block on the first letter of the last alphabetical token (surname-ish)
  // plus name token count bucket. Coarse but cheap; designed so that true
  // duplicates (typos in the middle of names) usually share a block.
  std::vector<std::string> tokens = Tokenize(record.name);
  if (tokens.empty()) return "?";
  std::sort(tokens.begin(), tokens.end());
  std::string key;
  key.push_back(tokens.back().front());
  key.push_back(tokens.front().front());
  return key;
}

bool EntityResolver::Matches(const EntityRecord& a,
                             const EntityRecord& b) const {
  const double sim = NameSimilarity(a.name, b.name);
  if (sim == 0.0) return false;
  const bool corroborated =
      (!a.email.empty() && a.email == b.email) ||
      (!a.city.empty() && ToLower(a.city) == ToLower(b.city));
  // Exact email match with plausible name is decisive on its own.
  if (!a.email.empty() && a.email == b.email && sim > 0.5) return true;
  return sim >= (corroborated ? options_.corroborated_name_threshold
                              : options_.strict_name_threshold);
}

std::vector<std::vector<size_t>> EntityResolver::Resolve(
    const std::vector<EntityRecord>& records) {
  stats_ = Stats();
  UnionFind uf(records.size());

  if (options_.use_blocking) {
    std::map<std::string, std::vector<size_t>> blocks;
    for (size_t i = 0; i < records.size(); ++i) {
      blocks[BlockKey(records[i])].push_back(i);
    }
    // Exact-email blocks as a second pass so that identical e-mails match
    // across name blocks.
    std::map<std::string, std::vector<size_t>> email_blocks;
    for (size_t i = 0; i < records.size(); ++i) {
      if (!records[i].email.empty()) {
        email_blocks[records[i].email].push_back(i);
      }
    }
    stats_.num_blocks = blocks.size();
    auto compare_block = [&](const std::vector<size_t>& members) {
      for (size_t x = 0; x < members.size(); ++x) {
        for (size_t y = x + 1; y < members.size(); ++y) {
          ++stats_.pairs_compared;
          if (uf.Connected(members[x], members[y])) continue;
          if (Matches(records[members[x]], records[members[y]])) {
            ++stats_.matches;
            uf.Union(members[x], members[y]);
          }
        }
      }
    };
    for (const auto& [key, members] : blocks) compare_block(members);
    for (const auto& [key, members] : email_blocks) compare_block(members);
  } else {
    for (size_t i = 0; i < records.size(); ++i) {
      for (size_t j = i + 1; j < records.size(); ++j) {
        ++stats_.pairs_compared;
        if (Matches(records[i], records[j])) {
          ++stats_.matches;
          uf.Union(i, j);
        }
      }
    }
  }
  return uf.Sets();
}

}  // namespace impliance::discovery
