#ifndef IMPLIANCE_DISCOVERY_SENTIMENT_ANNOTATOR_H_
#define IMPLIANCE_DISCOVERY_SENTIMENT_ANNOTATOR_H_

#include <set>
#include <string>
#include <vector>

#include "discovery/annotator.h"

namespace impliance::discovery {

// Lexicon-based sentiment detection — the paper's canonical intra-document
// analysis besides entity extraction (Section 3.3). Emits a single
// document-level span of type "sentiment" with text "positive" /
// "negative" / "neutral" and confidence |pos-neg| / (pos+neg), plus a
// "sentiment_score" value in [-1, 1] recoverable from the confidence sign
// convention (text carries the label, confidence the strength).
class SentimentAnnotator : public Annotator {
 public:
  // Ships with a small built-in lexicon; extendable.
  SentimentAnnotator();

  void AddPositiveWord(std::string word);
  void AddNegativeWord(std::string word);

  std::string name() const override { return "sentiment"; }

  std::vector<AnnotationSpan> Annotate(
      const model::Document& doc) const override;

  // Score in [-1, 1]; 0 when no lexicon word occurs.
  double Score(std::string_view text) const;

 private:
  std::set<std::string> positive_;
  std::set<std::string> negative_;
};

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_SENTIMENT_ANNOTATOR_H_
