#ifndef IMPLIANCE_DISCOVERY_ENTITY_RESOLVER_H_
#define IMPLIANCE_DISCOVERY_ENTITY_RESOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/document.h"

namespace impliance::discovery {

// One mention of a (possibly duplicated) real-world entity, extracted from
// a document: a name plus optional corroborating attributes.
struct EntityRecord {
  model::DocId doc = model::kInvalidDocId;
  std::string name;   // e.g. "Jon Smith"
  std::string email;  // optional
  std::string city;   // optional
};

// Entity (identity) resolution (Section 3.2, citing Jonas): groups records
// that refer to the same real-world entity. Pipeline: optional blocking
// (records only compared within a block) -> pairwise similarity ->
// union-find transitive closure.
class EntityResolver {
 public:
  struct Options {
    // Blocking on by default; all-pairs mode exists for the E12 ablation.
    bool use_blocking = true;
    // Minimum token-wise name similarity for a match when no corroborating
    // attribute agrees (see NameSimilarity in the .cc).
    double strict_name_threshold = 0.88;
    // Lower threshold when email or city agrees.
    double corroborated_name_threshold = 0.85;
  };

  struct Stats {
    uint64_t pairs_compared = 0;
    uint64_t matches = 0;
    size_t num_blocks = 0;
  };

  EntityResolver() : options_(Options()) {}
  explicit EntityResolver(const Options& options) : options_(options) {}

  // Clusters of indices into `records`; each cluster's members refer to the
  // same entity. Deterministic order (by smallest member index).
  std::vector<std::vector<size_t>> Resolve(
      const std::vector<EntityRecord>& records);

  const Stats& stats() const { return stats_; }

  // Exposed for tests.
  bool Matches(const EntityRecord& a, const EntityRecord& b) const;
  static std::string BlockKey(const EntityRecord& record);

 private:
  Options options_;
  Stats stats_;
};

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_ENTITY_RESOLVER_H_
