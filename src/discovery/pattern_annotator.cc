#include "discovery/pattern_annotator.h"

#include <cctype>

namespace impliance::discovery {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
         c == '-' || c == '+';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// someone@domain.tld — word chars, one '@', domain with at least one dot.
size_t MatchEmail(std::string_view text, size_t pos) {
  size_t local_end = pos;
  while (local_end < text.size() && IsWordChar(text[local_end])) ++local_end;
  if (local_end == pos || local_end >= text.size() || text[local_end] != '@') {
    return 0;
  }
  size_t domain_start = local_end + 1;
  size_t i = domain_start;
  bool saw_dot = false;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '.' ||
          text[i] == '-')) {
    if (text[i] == '.') saw_dot = true;
    ++i;
  }
  if (!saw_dot || i == domain_start) return 0;
  // Trim a trailing dot (sentence period).
  if (text[i - 1] == '.') --i;
  return i - pos;
}

// 555-123-4567 or 555 123 4567 or (555) 123-4567.
size_t MatchPhone(std::string_view text, size_t pos) {
  size_t i = pos;
  auto digits = [&](int n) {
    int count = 0;
    while (i < text.size() && IsDigit(text[i]) && count < n) {
      ++i;
      ++count;
    }
    return count == n;
  };
  bool paren = false;
  if (i < text.size() && text[i] == '(') {
    paren = true;
    ++i;
  }
  if (!digits(3)) return 0;
  if (paren) {
    if (i >= text.size() || text[i] != ')') return 0;
    ++i;
    if (i < text.size() && text[i] == ' ') ++i;
  } else {
    if (i >= text.size() || (text[i] != '-' && text[i] != ' ')) return 0;
    ++i;
  }
  if (!digits(3)) return 0;
  if (i >= text.size() || (text[i] != '-' && text[i] != ' ')) return 0;
  ++i;
  if (!digits(4)) return 0;
  // Reject if more digits follow (would be a longer number).
  if (i < text.size() && IsDigit(text[i])) return 0;
  return i - pos;
}

// $1,234.56 or 1234.56 USD/EUR/GBP.
size_t MatchMoney(std::string_view text, size_t pos, std::string* normalized) {
  size_t i = pos;
  bool dollar = text[i] == '$';
  if (dollar) ++i;
  size_t digit_start = i;
  while (i < text.size() && (IsDigit(text[i]) || text[i] == ',')) ++i;
  if (i == digit_start) return 0;
  if (i < text.size() && text[i] == '.') {
    ++i;
    size_t frac = i;
    while (i < text.size() && IsDigit(text[i])) ++i;
    if (i == frac) --i;  // trailing period, not a fraction
  }
  if (!dollar) {
    // Need a currency code suffix.
    size_t j = i;
    if (j < text.size() && text[j] == ' ') ++j;
    static constexpr const char* kCodes[] = {"USD", "EUR", "GBP", "JPY"};
    for (const char* code : kCodes) {
      if (text.substr(j, 3) == code) {
        *normalized = std::string(text.substr(pos, j + 3 - pos));
        return j + 3 - pos;
      }
    }
    return 0;
  }
  *normalized = std::string(text.substr(pos, i - pos));
  return i - pos;
}

// YYYY-MM-DD.
size_t MatchIsoDate(std::string_view text, size_t pos) {
  if (pos + 10 > text.size()) return 0;
  for (size_t k : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!IsDigit(text[pos + k])) return 0;
  }
  if (text[pos + 4] != '-' || text[pos + 7] != '-') return 0;
  // Not part of a longer number/date.
  if (pos + 10 < text.size() && IsDigit(text[pos + 10])) return 0;
  int month = (text[pos + 5] - '0') * 10 + (text[pos + 6] - '0');
  int day = (text[pos + 8] - '0') * 10 + (text[pos + 9] - '0');
  if (month < 1 || month > 12 || day < 1 || day > 31) return 0;
  return 10;
}

}  // namespace

std::vector<AnnotationSpan> PatternAnnotator::ScanText(
    std::string_view text) const {
  std::vector<AnnotationSpan> spans;
  size_t pos = 0;
  while (pos < text.size()) {
    // Try matchers at token starts only (previous char is not a word char).
    const bool at_boundary =
        pos == 0 || !IsWordChar(text[pos - 1]);
    if (!at_boundary) {
      ++pos;
      continue;
    }
    char c = text[pos];
    size_t len = 0;
    AnnotationSpan span;

    if (std::isalnum(static_cast<unsigned char>(c))) {
      // Longest-first: email beats date beats phone for digit starts.
      if ((len = MatchEmail(text, pos)) > 0) {
        span.entity_type = "email";
      } else if (IsDigit(c) && (len = MatchIsoDate(text, pos)) > 0) {
        span.entity_type = "date";
      } else if (IsDigit(c) && (len = MatchPhone(text, pos)) > 0) {
        span.entity_type = "phone";
      } else if (IsDigit(c)) {
        std::string normalized;
        if ((len = MatchMoney(text, pos, &normalized)) > 0) {
          span.entity_type = "money";
          span.text = normalized;
        }
      }
      // Business ids: PREFIX-digits.
      if (len == 0) {
        for (const IdPattern& pattern : id_patterns_) {
          if (text.substr(pos, pattern.prefix.size()) == pattern.prefix) {
            size_t i = pos + pattern.prefix.size();
            size_t digit_start = i;
            while (i < text.size() && IsDigit(text[i])) ++i;
            if (i > digit_start &&
                (i == text.size() || !IsWordChar(text[i]))) {
              len = i - pos;
              span.entity_type = pattern.entity_type;
              break;
            }
          }
        }
      }
    } else if (c == '$' || c == '(') {
      std::string normalized;
      if (c == '$' && (len = MatchMoney(text, pos, &normalized)) > 0) {
        span.entity_type = "money";
        span.text = normalized;
      } else if (c == '(' && (len = MatchPhone(text, pos)) > 0) {
        span.entity_type = "phone";
      }
    }

    if (len > 0) {
      span.begin = static_cast<uint32_t>(pos);
      span.end = static_cast<uint32_t>(pos + len);
      if (span.text.empty()) {
        span.text = std::string(text.substr(pos, len));
      }
      spans.push_back(std::move(span));
      pos += len;
    } else if (IsWordChar(c)) {
      // Failed word: skip it whole so inner offsets are never probed.
      while (pos < text.size() && IsWordChar(text[pos])) ++pos;
    } else {
      ++pos;
    }
  }
  return spans;
}

std::vector<AnnotationSpan> PatternAnnotator::Annotate(
    const model::Document& doc) const {
  return ScanText(doc.Text());
}

}  // namespace impliance::discovery
