#ifndef IMPLIANCE_DISCOVERY_RELATIONSHIP_DISCOVERY_H_
#define IMPLIANCE_DISCOVERY_RELATIONSHIP_DISCOVERY_H_

#include <string>
#include <vector>

#include "index/join_index.h"
#include "model/document.h"

namespace impliance::discovery {

// A discovered cross-kind join: values at (kind_a, path_a) reference values
// at (kind_b, path_b). E.g. purchase orders' /doc/customer_id referencing
// customers' /doc/id. Section 3.2: "a purchase order can be identified to
// reference several master data records."
struct DiscoveredJoin {
  std::string kind_a;
  std::string path_a;
  std::string kind_b;
  std::string path_b;
  double containment = 0.0;  // |values(a) ∩ values(b)| / |values(a)|
  size_t matched_values = 0;
};

struct RelationshipDiscoveryOptions {
  // Minimum fraction of kind_a's distinct values that appear in kind_b's.
  double min_containment = 0.8;
  // Minimum distinct matched values; avoids joins discovered on tiny or
  // constant columns.
  size_t min_matched_values = 3;
  // Minimum distinct values on the referenced side; a 2-value column (e.g.
  // a boolean) matches everything and means nothing.
  size_t min_target_distinct = 3;
};

// Inspects the per-kind (path -> distinct values) profile of a corpus and
// proposes inclusion-dependency joins. The profile is computed from the
// given documents (latest versions). Deterministic output order.
std::vector<DiscoveredJoin> DiscoverJoins(
    const std::vector<const model::Document*>& corpus,
    const RelationshipDiscoveryOptions& options = RelationshipDiscoveryOptions());

// Materializes a discovered join into per-document edges in the join index:
// for every document of kind_a and every document of kind_b sharing the
// value, an edge "joins:<leaf_a>" with the given confidence. Returns the
// number of edges added.
size_t MaterializeJoinEdges(const std::vector<const model::Document*>& corpus,
                            const DiscoveredJoin& join,
                            index::JoinIndex* join_index);

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_RELATIONSHIP_DISCOVERY_H_
