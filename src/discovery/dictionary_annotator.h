#ifndef IMPLIANCE_DISCOVERY_DICTIONARY_ANNOTATOR_H_
#define IMPLIANCE_DISCOVERY_DICTIONARY_ANNOTATOR_H_

#include <map>
#include <string>
#include <vector>

#include "discovery/annotator.h"

namespace impliance::discovery {

// Gazetteer-based entity recognition: matches dictionary entries (one to
// three tokens, case-insensitive) against document text, longest match
// first. Used for person names, locations, product names — the entity
// classes the paper's use cases revolve around (Section 2.1).
class DictionaryAnnotator : public Annotator {
 public:
  explicit DictionaryAnnotator(std::string annotator_name = "dictionary")
      : name_(std::move(annotator_name)) {}

  // Registers `entry` (e.g. "new york") as an entity of `entity_type`.
  void AddEntry(std::string_view entity_type, std::string_view entry);

  // Bulk registration.
  void AddEntries(std::string_view entity_type,
                  const std::vector<std::string>& entries);

  std::string name() const override { return name_; }

  std::vector<AnnotationSpan> Annotate(
      const model::Document& doc) const override;

  std::vector<AnnotationSpan> ScanText(std::string_view text) const;

  size_t num_entries() const { return entries_.size(); }

 private:
  std::string name_;
  // normalized token-joined entry -> entity type.
  std::map<std::string, std::string> entries_;
  size_t max_entry_tokens_ = 1;
};

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_DICTIONARY_ANNOTATOR_H_
