#ifndef IMPLIANCE_DISCOVERY_ANNOTATOR_H_
#define IMPLIANCE_DISCOVERY_ANNOTATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "model/document.h"

namespace impliance::discovery {

// One extracted entity/fact: a typed span of the document's text.
struct AnnotationSpan {
  std::string entity_type;  // e.g. "email", "person", "money"
  std::string text;         // surface form (normalized for dictionary hits)
  uint32_t begin = 0;       // byte offsets into Document::Text()
  uint32_t end = 0;
  double confidence = 1.0;
};

// Interface of all intra-document analyses (Section 3.3: "tasks like entity
// extraction and sentiment detection within a single document", run on data
// nodes). Implementations must be stateless/thread-safe: the pipeline calls
// Annotate concurrently.
class Annotator {
 public:
  virtual ~Annotator() = default;

  virtual std::string name() const = 0;

  // Interest filter: annotators "have expressed an interest in this type of
  // data" (Section 3.2). Default: interested in everything.
  virtual bool InterestedIn(const model::Document& doc) const { return true; }

  virtual std::vector<AnnotationSpan> Annotate(
      const model::Document& doc) const = 0;
};

// Builds the annotation document for `spans` found in `base` by `annotator`:
// kind "annotation", DocClass::kAnnotation, one child per span, and a DocRef
// back to the base document per span (Figure 2's derived documents).
model::Document MakeAnnotationDocument(const model::Document& base,
                                       const std::string& annotator,
                                       const std::vector<AnnotationSpan>& spans);

// Extracts the spans back out of an annotation document (for consumers).
std::vector<AnnotationSpan> SpansFromAnnotationDocument(
    const model::Document& annotation);

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_ANNOTATOR_H_
