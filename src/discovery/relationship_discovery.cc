#include "discovery/relationship_discovery.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "model/item.h"

namespace impliance::discovery {

namespace {

struct PathProfile {
  std::set<std::string> distinct_values;  // rendered values
  // value -> documents carrying it at this path.
  std::map<std::string, std::vector<model::DocId>> value_docs;
};

// kind -> path -> profile. Only string/int-ish leaves participate (joins on
// floating-point measures are noise).
using CorpusProfile = std::map<std::string, std::map<std::string, PathProfile>>;

bool JoinableType(const model::Value& value) {
  switch (value.type()) {
    case model::ValueType::kInt:
    case model::ValueType::kString:
      return true;
    default:
      return false;
  }
}

CorpusProfile ProfileCorpus(const std::vector<const model::Document*>& corpus) {
  CorpusProfile profile;
  for (const model::Document* doc : corpus) {
    if (doc->doc_class != model::DocClass::kBase) continue;
    for (const model::PathValue& pv : model::CollectPaths(doc->root)) {
      if (pv.value->is_null() || !JoinableType(*pv.value)) continue;
      PathProfile& pp = profile[doc->kind][pv.path];
      std::string rendered = pv.value->AsString();
      pp.distinct_values.insert(rendered);
      std::vector<model::DocId>& docs = pp.value_docs[rendered];
      if (docs.empty() || docs.back() != doc->id) docs.push_back(doc->id);
    }
  }
  return profile;
}

}  // namespace

std::vector<DiscoveredJoin> DiscoverJoins(
    const std::vector<const model::Document*>& corpus,
    const RelationshipDiscoveryOptions& options) {
  CorpusProfile profile = ProfileCorpus(corpus);
  std::vector<DiscoveredJoin> joins;

  for (const auto& [kind_a, paths_a] : profile) {
    for (const auto& [path_a, profile_a] : paths_a) {
      if (profile_a.distinct_values.empty()) continue;
      for (const auto& [kind_b, paths_b] : profile) {
        if (kind_a == kind_b) continue;
        for (const auto& [path_b, profile_b] : paths_b) {
          if (profile_b.distinct_values.size() < options.min_target_distinct) {
            continue;
          }
          // Heuristic gate: leaf names must share a token ("customer_id"
          // vs "id", "sku" vs "sku") or be identical, keeping the search
          // O(paths^2) but cheap per pair.
          std::vector<std::string> seg_a = Split(path_a, '/');
          std::vector<std::string> seg_b = Split(path_b, '/');
          const std::string leaf_a = ToLower(seg_a.back());
          const std::string leaf_b = ToLower(seg_b.back());
          bool name_related =
              leaf_a == leaf_b ||
              leaf_a.find(leaf_b) != std::string::npos ||
              leaf_b.find(leaf_a) != std::string::npos;
          if (!name_related) continue;

          size_t matched = 0;
          for (const std::string& value : profile_a.distinct_values) {
            if (profile_b.distinct_values.count(value)) ++matched;
          }
          const double containment =
              static_cast<double>(matched) /
              static_cast<double>(profile_a.distinct_values.size());
          if (containment >= options.min_containment &&
              matched >= options.min_matched_values) {
            joins.push_back(DiscoveredJoin{kind_a, path_a, kind_b, path_b,
                                           containment, matched});
          }
        }
      }
    }
  }
  // Deterministic order.
  std::sort(joins.begin(), joins.end(),
            [](const DiscoveredJoin& a, const DiscoveredJoin& b) {
              return std::tie(a.kind_a, a.path_a, a.kind_b, a.path_b) <
                     std::tie(b.kind_a, b.path_a, b.kind_b, b.path_b);
            });
  return joins;
}

size_t MaterializeJoinEdges(const std::vector<const model::Document*>& corpus,
                            const DiscoveredJoin& join,
                            index::JoinIndex* join_index) {
  CorpusProfile profile = ProfileCorpus(corpus);
  auto kind_a_it = profile.find(join.kind_a);
  auto kind_b_it = profile.find(join.kind_b);
  if (kind_a_it == profile.end() || kind_b_it == profile.end()) return 0;
  auto path_a_it = kind_a_it->second.find(join.path_a);
  auto path_b_it = kind_b_it->second.find(join.path_b);
  if (path_a_it == kind_a_it->second.end() ||
      path_b_it == kind_b_it->second.end()) {
    return 0;
  }

  std::vector<std::string> segments = Split(join.path_a, '/');
  const std::string relation = "joins:" + segments.back();
  size_t edges = 0;
  for (const auto& [value, docs_a] : path_a_it->second.value_docs) {
    auto match = path_b_it->second.value_docs.find(value);
    if (match == path_b_it->second.value_docs.end()) continue;
    for (model::DocId a : docs_a) {
      for (model::DocId b : match->second) {
        join_index->AddEdge(a, b, relation, join.containment);
        ++edges;
      }
    }
  }
  return edges;
}

}  // namespace impliance::discovery
