#include "discovery/sentiment_annotator.h"

#include <cmath>

#include "common/string_util.h"

namespace impliance::discovery {

SentimentAnnotator::SentimentAnnotator() {
  positive_ = {"good",      "great",   "excellent", "happy",   "love",
               "wonderful", "pleased", "satisfied", "perfect", "recommend",
               "fantastic", "helpful", "thanks",    "thank",   "awesome"};
  negative_ = {"bad",      "terrible", "awful",        "angry",   "hate",
               "broken",   "refund",   "disappointed", "problem", "complaint",
               "horrible", "cancel",   "unacceptable", "worst",   "defective"};
}

void SentimentAnnotator::AddPositiveWord(std::string word) {
  positive_.insert(ToLower(word));
}

void SentimentAnnotator::AddNegativeWord(std::string word) {
  negative_.insert(ToLower(word));
}

double SentimentAnnotator::Score(std::string_view text) const {
  int pos = 0, neg = 0;
  for (const std::string& token : Tokenize(text)) {
    if (positive_.count(token)) ++pos;
    if (negative_.count(token)) ++neg;
  }
  if (pos + neg == 0) return 0.0;
  return static_cast<double>(pos - neg) / static_cast<double>(pos + neg);
}

std::vector<AnnotationSpan> SentimentAnnotator::Annotate(
    const model::Document& doc) const {
  const std::string text = doc.Text();
  const double score = Score(text);
  AnnotationSpan span;
  span.entity_type = "sentiment";
  span.text = score > 0.1 ? "positive" : (score < -0.1 ? "negative" : "neutral");
  span.begin = 0;
  span.end = static_cast<uint32_t>(text.size());
  span.confidence = std::abs(score);
  return {span};
}

}  // namespace impliance::discovery
