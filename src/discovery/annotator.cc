#include "discovery/annotator.h"

#include "model/item.h"

namespace impliance::discovery {

model::Document MakeAnnotationDocument(
    const model::Document& base, const std::string& annotator,
    const std::vector<AnnotationSpan>& spans) {
  model::Document doc;
  doc.kind = "annotation";
  doc.doc_class = model::DocClass::kAnnotation;
  doc.root = model::Item("doc");
  doc.root.AddChild("annotator", model::Value::String(annotator));
  doc.root.AddChild("base_doc",
                    model::Value::Int(static_cast<int64_t>(base.id)));
  for (const AnnotationSpan& span : spans) {
    model::Item& entity = doc.root.AddChild("entity");
    entity.AddChild("type", model::Value::String(span.entity_type));
    entity.AddChild("text", model::Value::String(span.text));
    entity.AddChild("begin", model::Value::Int(span.begin));
    entity.AddChild("end", model::Value::Int(span.end));
    entity.AddChild("confidence", model::Value::Double(span.confidence));
    doc.refs.push_back(model::DocRef{base.id, "annotates", "/doc/text",
                                     span.begin, span.end});
  }
  return doc;
}

std::vector<AnnotationSpan> SpansFromAnnotationDocument(
    const model::Document& annotation) {
  std::vector<AnnotationSpan> spans;
  for (const model::Item& child : annotation.root.children) {
    if (child.name != "entity") continue;
    AnnotationSpan span;
    if (const model::Item* type = child.FindChild("type")) {
      span.entity_type = type->value.AsString();
    }
    if (const model::Item* text = child.FindChild("text")) {
      span.text = text->value.AsString();
    }
    if (const model::Item* begin = child.FindChild("begin")) {
      span.begin = static_cast<uint32_t>(begin->value.AsDouble());
    }
    if (const model::Item* end = child.FindChild("end")) {
      span.end = static_cast<uint32_t>(end->value.AsDouble());
    }
    if (const model::Item* conf = child.FindChild("confidence")) {
      span.confidence = conf->value.AsDouble();
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace impliance::discovery
