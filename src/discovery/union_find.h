#ifndef IMPLIANCE_DISCOVERY_UNION_FIND_H_
#define IMPLIANCE_DISCOVERY_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace impliance::discovery {

// Disjoint-set forest with path compression and union by size; backs the
// entity resolver's transitive clustering.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true if the two sets were distinct before the union.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }
  size_t SetSize(size_t x) { return size_[Find(x)]; }

  // Groups element indices by root, sets in ascending order of their
  // smallest member, members ascending.
  std::vector<std::vector<size_t>> Sets();

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace impliance::discovery

#endif  // IMPLIANCE_DISCOVERY_UNION_FIND_H_
