#include "discovery/dictionary_annotator.h"

#include <algorithm>

#include "common/string_util.h"

namespace impliance::discovery {

void DictionaryAnnotator::AddEntry(std::string_view entity_type,
                                   std::string_view entry) {
  std::vector<std::string> tokens = Tokenize(entry);
  if (tokens.empty()) return;
  max_entry_tokens_ = std::max(max_entry_tokens_, tokens.size());
  entries_[Join(tokens, " ")] = std::string(entity_type);
}

void DictionaryAnnotator::AddEntries(std::string_view entity_type,
                                     const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) AddEntry(entity_type, entry);
}

std::vector<AnnotationSpan> DictionaryAnnotator::ScanText(
    std::string_view text) const {
  std::vector<AnnotationSpan> spans;
  std::vector<Token> tokens = TokenizeWithOffsets(text);
  size_t i = 0;
  while (i < tokens.size()) {
    size_t matched_tokens = 0;
    const std::string* matched_type = nullptr;
    // Longest match first.
    const size_t max_n = std::min(max_entry_tokens_, tokens.size() - i);
    for (size_t n = max_n; n >= 1; --n) {
      std::string candidate = tokens[i].text;
      for (size_t j = 1; j < n; ++j) {
        candidate += ' ';
        candidate += tokens[i + j].text;
      }
      auto it = entries_.find(candidate);
      if (it != entries_.end()) {
        matched_tokens = n;
        matched_type = &it->second;
        break;
      }
    }
    if (matched_tokens > 0) {
      const Token& first = tokens[i];
      const Token& last = tokens[i + matched_tokens - 1];
      AnnotationSpan span;
      span.entity_type = *matched_type;
      span.begin = static_cast<uint32_t>(first.offset);
      span.end = static_cast<uint32_t>(last.offset + last.text.size());
      // Normalized surface form so equal entities compare equal.
      span.text = first.text;
      for (size_t j = 1; j < matched_tokens; ++j) {
        span.text += ' ';
        span.text += tokens[i + j].text;
      }
      spans.push_back(std::move(span));
      i += matched_tokens;
    } else {
      ++i;
    }
  }
  return spans;
}

std::vector<AnnotationSpan> DictionaryAnnotator::Annotate(
    const model::Document& doc) const {
  return ScanText(doc.Text());
}

}  // namespace impliance::discovery
