#ifndef IMPLIANCE_EXEC_AGGREGATOR_H_
#define IMPLIANCE_EXEC_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace impliance::exec {

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  int column = -1;  // ignored for kCount
  std::string output_name;
};

// Hash group-by accumulator shared by HashAggregateOp and the parallel
// executor. Each worker accumulates into a private instance; partials are
// combined with Merge() (count/sum add, min/max compare — avg divides only
// at Finalize, so merging is exact). Finalize emits groups in key order,
// making serial and any-DOP parallel runs bitwise identical.
class GroupByAggregator {
 public:
  GroupByAggregator(std::vector<int> group_columns,
                    std::vector<AggSpec> aggregates);

  void Accumulate(const Row& row);
  void AccumulateBatch(const RowBatch& batch);

  // Folds `other`'s groups into this one. `other` is left empty.
  void Merge(GroupByAggregator&& other);

  // One output row per group, in key order: group columns ++ aggregates.
  std::vector<Row> Finalize() const;

  size_t num_groups() const { return groups_.size(); }

  // Output schema for the given child schema.
  static Schema OutputSchema(const Schema& input,
                             const std::vector<int>& group_columns,
                             const std::vector<AggSpec>& aggregates);

 private:
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    model::Value min;
    model::Value max;
  };

  void AccumulateInto(std::vector<AggState>& states, const Row& row) const;
  static void MergeState(AggState& into, const AggState& from);

  std::vector<int> group_columns_;
  std::vector<AggSpec> aggregates_;
  std::map<Row, std::vector<AggState>> groups_;  // Value has operator<
};

// Full sort on (column, ascending) keys, applied in order.
struct SortKey {
  int column = 0;
  bool ascending = true;
};

// Comparator used by SortOp/TopKOp (exposed for tests).
bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys);

// Bounded top-k accumulator (max-heap of the worst retained row) shared by
// TopKOp and the parallel executor: workers keep thread-local top-k sets,
// Merge() folds them, Finalize() sorts the survivors.
class TopKAccumulator {
 public:
  TopKAccumulator(std::vector<SortKey> keys, size_t k);

  void Add(Row row);
  void AddBatch(RowBatch&& batch);
  void Merge(TopKAccumulator&& other);

  // The k smallest rows under RowLess, sorted.
  std::vector<Row> Finalize() const;

  size_t k() const { return k_; }

 private:
  bool WorstFirst(const Row& a, const Row& b) const {
    return RowLess(a, b, keys_);  // max-heap: worst (largest) at front
  }

  std::vector<SortKey> keys_;
  size_t k_;
  std::vector<Row> heap_;
};

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_AGGREGATOR_H_
