#include "exec/aggregator.h"

#include <algorithm>

namespace impliance::exec {

// ------------------------------------------------------ GroupByAggregator

GroupByAggregator::GroupByAggregator(std::vector<int> group_columns,
                                     std::vector<AggSpec> aggregates)
    : group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {}

void GroupByAggregator::AccumulateInto(std::vector<AggState>& states,
                                       const Row& row) const {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& agg = aggregates_[i];
    AggState& state = states[i];
    if (agg.fn == AggFn::kCount) {
      ++state.count;
      continue;
    }
    const model::Value& value = row[agg.column];
    if (value.is_null()) continue;  // SQL semantics: nulls skipped
    ++state.count;
    state.sum += value.AsDouble();
    if (state.count == 1) {
      state.min = value;
      state.max = value;
    } else {
      if (value.Compare(state.min) < 0) state.min = value;
      if (value.Compare(state.max) > 0) state.max = value;
    }
  }
}

void GroupByAggregator::Accumulate(const Row& row) {
  Row key;
  key.reserve(group_columns_.size());
  for (int column : group_columns_) key.push_back(row[column]);
  std::vector<AggState>& states = groups_[std::move(key)];
  if (states.empty()) states.resize(aggregates_.size());
  AccumulateInto(states, row);
}

void GroupByAggregator::AccumulateBatch(const RowBatch& batch) {
  for (const Row& row : batch.rows) Accumulate(row);
}

void GroupByAggregator::MergeState(AggState& into, const AggState& from) {
  if (from.count > 0) {
    if (into.count == 0) {
      into.min = from.min;
      into.max = from.max;
    } else {
      if (from.min.Compare(into.min) < 0) into.min = from.min;
      if (from.max.Compare(into.max) > 0) into.max = from.max;
    }
  }
  into.count += from.count;
  into.sum += from.sum;
}

void GroupByAggregator::Merge(GroupByAggregator&& other) {
  for (auto& [key, other_states] : other.groups_) {
    auto [it, inserted] = groups_.try_emplace(key, std::move(other_states));
    if (inserted) continue;
    std::vector<AggState>& states = it->second;
    for (size_t i = 0; i < states.size(); ++i) {
      MergeState(states[i], other_states[i]);
    }
  }
  other.groups_.clear();
}

std::vector<Row> GroupByAggregator::Finalize() const {
  std::vector<Row> out;
  out.reserve(groups_.size());
  for (const auto& [key, states] : groups_) {
    Row row = key;
    row.reserve(key.size() + aggregates_.size());
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const AggSpec& agg = aggregates_[i];
      const AggState& state = states[i];
      switch (agg.fn) {
        case AggFn::kCount:
          row.push_back(model::Value::Int(state.count));
          break;
        case AggFn::kSum:
          row.push_back(state.count == 0 ? model::Value::Null()
                                         : model::Value::Double(state.sum));
          break;
        case AggFn::kAvg:
          row.push_back(state.count == 0
                            ? model::Value::Null()
                            : model::Value::Double(state.sum / state.count));
          break;
        case AggFn::kMin:
          row.push_back(state.count == 0 ? model::Value::Null() : state.min);
          break;
        case AggFn::kMax:
          row.push_back(state.count == 0 ? model::Value::Null() : state.max);
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Schema GroupByAggregator::OutputSchema(const Schema& input,
                                       const std::vector<int>& group_columns,
                                       const std::vector<AggSpec>& aggregates) {
  Schema schema;
  for (int column : group_columns) schema.AddColumn(input.columns[column]);
  for (const AggSpec& agg : aggregates) schema.AddColumn(agg.output_name);
  return schema;
}

// ------------------------------------------------------------- Sort order

bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    const int c = a[key.column].Compare(b[key.column]);
    if (c != 0) return key.ascending ? c < 0 : c > 0;
  }
  return false;
}

// -------------------------------------------------------- TopKAccumulator

TopKAccumulator::TopKAccumulator(std::vector<SortKey> keys, size_t k)
    : keys_(std::move(keys)), k_(k) {
  heap_.reserve(k_ < 4096 ? k_ : 4096);
}

void TopKAccumulator::Add(Row row) {
  auto worst_first = [this](const Row& a, const Row& b) {
    return WorstFirst(a, b);
  };
  if (heap_.size() < k_) {
    heap_.push_back(std::move(row));
    std::push_heap(heap_.begin(), heap_.end(), worst_first);
  } else if (k_ > 0 && RowLess(row, heap_.front(), keys_)) {
    std::pop_heap(heap_.begin(), heap_.end(), worst_first);
    heap_.back() = std::move(row);
    std::push_heap(heap_.begin(), heap_.end(), worst_first);
  }
}

void TopKAccumulator::AddBatch(RowBatch&& batch) {
  for (Row& row : batch.rows) Add(std::move(row));
  batch.clear();
}

void TopKAccumulator::Merge(TopKAccumulator&& other) {
  for (Row& row : other.heap_) Add(std::move(row));
  other.heap_.clear();
}

std::vector<Row> TopKAccumulator::Finalize() const {
  std::vector<Row> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), [this](const Row& a, const Row& b) {
    return RowLess(a, b, keys_);
  });
  return sorted;
}

}  // namespace impliance::exec
