#include "exec/operators.h"

#include <algorithm>

#include "common/logging.h"

namespace impliance::exec {

std::vector<Row> Execute(Operator* op) {
  std::vector<Row> rows;
  op->Open();
  Row row;
  while (op->Next(&row)) rows.push_back(row);
  op->Close();
  return rows;
}

// ------------------------------------------------------------- RowSource

bool RowSourceOp::Next(Row* row) {
  if (cursor_ >= rows_.size()) return false;
  *row = rows_[cursor_++];
  ++rows_produced_;
  return true;
}

// ---------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
                   bool adaptive)
    : child_(std::move(child)), adaptive_(adaptive) {
  predicates_.reserve(predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    Tracked tracked;
    tracked.predicate = std::move(predicates[i]);
    tracked.original_index = static_cast<int>(i);
    predicates_.push_back(std::move(tracked));
  }
}

void FilterOp::Open() {
  child_->Open();
  input_rows_ = 0;
}

bool FilterOp::Next(Row* row) {
  while (child_->Next(row)) {
    ++input_rows_;
    if (adaptive_ && input_rows_ % kAdaptBatch == 0) {
      // Most selective (lowest pass rate) first: cheapest way to reject.
      std::stable_sort(predicates_.begin(), predicates_.end(),
                       [](const Tracked& a, const Tracked& b) {
                         return a.Selectivity() < b.Selectivity();
                       });
    }
    bool pass = true;
    for (Tracked& tracked : predicates_) {
      ++tracked.evaluated;
      ++predicate_evals_;
      if (tracked.predicate.Eval(*row)) {
        ++tracked.passed;
      } else {
        pass = false;
        break;
      }
    }
    if (pass) {
      ++rows_produced_;
      return true;
    }
  }
  return false;
}

std::vector<int> FilterOp::EvaluationOrder() const {
  std::vector<int> order;
  order.reserve(predicates_.size());
  for (const Tracked& tracked : predicates_) {
    order.push_back(tracked.original_index);
  }
  return order;
}

// --------------------------------------------------------------- Project

ProjectOp::ProjectOp(OperatorPtr child, std::vector<int> columns,
                     std::vector<std::string> names)
    : child_(std::move(child)), columns_(std::move(columns)) {
  IMPLIANCE_CHECK(columns_.size() == names.size());
  schema_.columns = std::move(names);
}

bool ProjectOp::Next(Row* row) {
  Row input;
  if (!child_->Next(&input)) return false;
  row->clear();
  row->reserve(columns_.size());
  for (int column : columns_) {
    IMPLIANCE_CHECK(column >= 0 && static_cast<size_t>(column) < input.size());
    row->push_back(input[column]);
  }
  ++rows_produced_;
  return true;
}

// -------------------------------------------------------------- HashJoin

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, int left_key,
                       int right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  schema_.columns = left_->schema().columns;
  for (const std::string& column : right_->schema().columns) {
    schema_.columns.push_back(column);
  }
}

void HashJoinOp::Open() {
  left_->Open();
  right_->Open();
  hash_table_.clear();
  build_size_ = 0;
  Row row;
  while (right_->Next(&row)) {
    const model::Value& key = row[right_key_];
    if (key.is_null()) continue;  // nulls never join
    hash_table_[key.HashValue()].push_back(row);
    ++build_size_;
  }
  current_matches_ = nullptr;
  match_cursor_ = 0;
}

bool HashJoinOp::Next(Row* row) {
  while (true) {
    if (current_matches_ != nullptr) {
      // Advance within the current probe's match list, re-checking equality
      // to guard against hash collisions.
      while (match_cursor_ < current_matches_->size()) {
        const Row& right_row = (*current_matches_)[match_cursor_++];
        if (right_row[right_key_].Compare(current_left_[left_key_]) != 0) {
          continue;
        }
        *row = current_left_;
        row->insert(row->end(), right_row.begin(), right_row.end());
        ++rows_produced_;
        return true;
      }
      current_matches_ = nullptr;
    }
    if (!left_->Next(&current_left_)) return false;
    const model::Value& key = current_left_[left_key_];
    if (key.is_null()) continue;
    auto it = hash_table_.find(key.HashValue());
    if (it == hash_table_.end()) continue;
    current_matches_ = &it->second;
    match_cursor_ = 0;
  }
}

void HashJoinOp::Close() {
  left_->Close();
  right_->Close();
  hash_table_.clear();
}

// --------------------------------------------------------- IndexedNLJoin

IndexedNLJoinOp::IndexedNLJoinOp(OperatorPtr left, int left_key,
                                 LookupFn lookup, Schema right_schema)
    : left_(std::move(left)),
      left_key_(left_key),
      lookup_(std::move(lookup)) {
  schema_.columns = left_->schema().columns;
  for (const std::string& column : right_schema.columns) {
    schema_.columns.push_back(column);
  }
}

void IndexedNLJoinOp::Open() {
  left_->Open();
  current_matches_.clear();
  match_cursor_ = 0;
  index_probes_ = 0;
}

bool IndexedNLJoinOp::Next(Row* row) {
  while (true) {
    if (match_cursor_ < current_matches_.size()) {
      const Row& right_row = current_matches_[match_cursor_++];
      *row = current_left_;
      row->insert(row->end(), right_row.begin(), right_row.end());
      ++rows_produced_;
      return true;
    }
    if (!left_->Next(&current_left_)) return false;
    const model::Value& key = current_left_[left_key_];
    if (key.is_null()) {
      current_matches_.clear();
      match_cursor_ = 0;
      continue;
    }
    current_matches_ = lookup_(key);
    ++index_probes_;
    match_cursor_ = 0;
  }
}

// ------------------------------------------------------------- Aggregate

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<int> group_columns,
                                 std::vector<AggSpec> aggregates)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {
  for (int column : group_columns_) {
    schema_.columns.push_back(child_->schema().columns[column]);
  }
  for (const AggSpec& agg : aggregates_) {
    schema_.columns.push_back(agg.output_name);
  }
}

void HashAggregateOp::Open() {
  child_->Open();
  groups_.clear();
  materialized_ = false;

  Row row;
  while (child_->Next(&row)) {
    Row key;
    key.reserve(group_columns_.size());
    for (int column : group_columns_) key.push_back(row[column]);
    std::vector<AggState>& states = groups_[key];
    if (states.empty()) states.resize(aggregates_.size());
    for (size_t i = 0; i < aggregates_.size(); ++i) {
      const AggSpec& agg = aggregates_[i];
      AggState& state = states[i];
      if (agg.fn == AggFn::kCount) {
        ++state.count;
        continue;
      }
      const model::Value& value = row[agg.column];
      if (value.is_null()) continue;  // SQL semantics: nulls skipped
      ++state.count;
      state.sum += value.AsDouble();
      if (state.count == 1) {
        state.min = value;
        state.max = value;
      } else {
        if (value.Compare(state.min) < 0) state.min = value;
        if (value.Compare(state.max) > 0) state.max = value;
      }
    }
  }
  emit_cursor_ = groups_.begin();
  materialized_ = true;
}

bool HashAggregateOp::Next(Row* row) {
  IMPLIANCE_CHECK(materialized_);
  if (emit_cursor_ == groups_.end()) return false;
  const Row& key = emit_cursor_->first;
  const std::vector<AggState>& states = emit_cursor_->second;
  *row = key;
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggSpec& agg = aggregates_[i];
    const AggState& state = states[i];
    switch (agg.fn) {
      case AggFn::kCount:
        row->push_back(model::Value::Int(state.count));
        break;
      case AggFn::kSum:
        row->push_back(state.count == 0 ? model::Value::Null()
                                        : model::Value::Double(state.sum));
        break;
      case AggFn::kAvg:
        row->push_back(state.count == 0
                           ? model::Value::Null()
                           : model::Value::Double(state.sum / state.count));
        break;
      case AggFn::kMin:
        row->push_back(state.count == 0 ? model::Value::Null() : state.min);
        break;
      case AggFn::kMax:
        row->push_back(state.count == 0 ? model::Value::Null() : state.max);
        break;
    }
  }
  ++emit_cursor_;
  ++rows_produced_;
  return true;
}

// ------------------------------------------------------------ Sort/TopK

bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys) {
  for (const SortKey& key : keys) {
    const int c = a[key.column].Compare(b[key.column]);
    if (c != 0) return key.ascending ? c < 0 : c > 0;
  }
  return false;
}

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

void SortOp::Open() {
  child_->Open();
  rows_.clear();
  Row row;
  while (child_->Next(&row)) rows_.push_back(std::move(row));
  std::stable_sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
    return RowLess(a, b, keys_);
  });
  cursor_ = 0;
}

bool SortOp::Next(Row* row) {
  if (cursor_ >= rows_.size()) return false;
  *row = rows_[cursor_++];
  ++rows_produced_;
  return true;
}

TopKOp::TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k)
    : child_(std::move(child)), keys_(std::move(keys)), k_(k) {}

void TopKOp::Open() {
  child_->Open();
  heap_.clear();
  sorted_.clear();
  auto worst_first = [this](const Row& a, const Row& b) {
    return RowLess(a, b, keys_);  // max-heap: worst (largest) at front
  };
  Row row;
  while (child_->Next(&row)) {
    if (heap_.size() < k_) {
      heap_.push_back(std::move(row));
      std::push_heap(heap_.begin(), heap_.end(), worst_first);
    } else if (k_ > 0 && RowLess(row, heap_.front(), keys_)) {
      std::pop_heap(heap_.begin(), heap_.end(), worst_first);
      heap_.back() = std::move(row);
      std::push_heap(heap_.begin(), heap_.end(), worst_first);
    }
  }
  sorted_ = heap_;
  std::sort(sorted_.begin(), sorted_.end(), [this](const Row& a, const Row& b) {
    return RowLess(a, b, keys_);
  });
  cursor_ = 0;
}

bool TopKOp::Next(Row* row) {
  if (cursor_ >= sorted_.size()) return false;
  *row = sorted_[cursor_++];
  ++rows_produced_;
  return true;
}

// ----------------------------------------------------------------- Limit

bool LimitOp::Next(Row* row) {
  if (emitted_ >= limit_) return false;
  if (!child_->Next(row)) return false;
  ++emitted_;
  ++rows_produced_;
  return true;
}

}  // namespace impliance::exec
