#include "exec/operators.h"

#include <algorithm>

#include "common/logging.h"

namespace impliance::exec {

std::vector<Row> Execute(Operator* op) {
  std::vector<Row> rows;
  op->Open();
  rows.reserve(op->EstimatedRows());
  RowBatch batch;
  while (op->NextBatch(&batch)) {
    for (Row& row : batch.rows) rows.push_back(std::move(row));
  }
  op->Close();
  return rows;
}

// ------------------------------------------------------------- RowSource

bool RowSourceOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= rows_.size()) return false;
  const size_t end = std::min(rows_.size(), cursor_ + batch_rows_);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) batch->AppendCopy(rows_[cursor_]);
  rows_produced_ += batch->size();
  return true;
}

bool RowSliceSourceOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= end_) return false;
  const size_t end = std::min(end_, cursor_ + batch_rows_);
  batch->reserve(end - cursor_);
  const std::vector<Row>& rows = *rows_;
  for (; cursor_ < end; ++cursor_) batch->AppendCopy(rows[cursor_]);
  rows_produced_ += batch->size();
  return true;
}

// ---------------------------------------------------------------- Filter

FilterOp::FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
                   bool adaptive)
    : child_(std::move(child)), adaptive_(adaptive) {
  predicates_.reserve(predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    Tracked tracked;
    tracked.predicate = std::move(predicates[i]);
    tracked.original_index = static_cast<int>(i);
    predicates_.push_back(std::move(tracked));
  }
}

void FilterOp::Open() {
  child_->Open();
  input_rows_ = 0;
}

bool FilterOp::NextBatch(RowBatch* batch) {
  batch->clear();
  // Keep pulling child batches until at least one row survives, so false
  // still means end-of-stream.
  while (batch->empty()) {
    if (!child_->NextBatch(&input_)) return false;
    batch->reserve(input_.size());
    if (adaptive_) {
      for (Row& row : input_.rows) {
        ++input_rows_;
        if (input_rows_ % kAdaptBatch == 0) {
          // Most selective (lowest pass rate) first: cheapest way to reject.
          std::stable_sort(predicates_.begin(), predicates_.end(),
                           [](const Tracked& a, const Tracked& b) {
                             return a.Selectivity() < b.Selectivity();
                           });
        }
        bool pass = true;
        for (Tracked& tracked : predicates_) {
          ++tracked.evaluated;
          ++predicate_evals_;
          if (tracked.predicate.Eval(row)) {
            ++tracked.passed;
          } else {
            pass = false;
            break;
          }
        }
        if (pass) batch->push_back(std::move(row));
      }
    } else {
      // Lean loop: no per-predicate selectivity tracking, no reorder check.
      uint64_t evals = 0;
      for (Row& row : input_.rows) {
        bool pass = true;
        for (Tracked& tracked : predicates_) {
          ++evals;
          if (!tracked.predicate.Eval(row)) {
            pass = false;
            break;
          }
        }
        if (pass) batch->push_back(std::move(row));
      }
      input_rows_ += input_.size();
      predicate_evals_ += evals;
    }
  }
  rows_produced_ += batch->size();
  return true;
}

std::vector<int> FilterOp::EvaluationOrder() const {
  std::vector<int> order;
  order.reserve(predicates_.size());
  for (const Tracked& tracked : predicates_) {
    order.push_back(tracked.original_index);
  }
  return order;
}

// --------------------------------------------------------------- Project

ProjectOp::ProjectOp(OperatorPtr child, std::vector<int> columns,
                     std::vector<std::string> names)
    : child_(std::move(child)), columns_(std::move(columns)) {
  IMPLIANCE_CHECK(columns_.size() == names.size());
  schema_ = Schema(std::move(names));
  for (int column : columns_) {
    IMPLIANCE_CHECK(column >= 0 &&
                    static_cast<size_t>(column) < child_->schema().size());
  }
  std::vector<int> sorted = columns_;
  std::sort(sorted.begin(), sorted.end());
  distinct_columns_ =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

bool ProjectOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (!child_->NextBatch(&input_)) return false;
  batch->reserve(input_.size());
  for (Row& row : input_.rows) {
    Row& projected = batch->AppendRow();
    projected.reserve(columns_.size());
    for (int column : columns_) {
      // Input rows are dead after this pass; stealing their values saves a
      // copy — unless the same column is projected twice.
      if (distinct_columns_) {
        projected.push_back(std::move(row[column]));
      } else {
        projected.push_back(row[column]);
      }
    }
  }
  rows_produced_ += batch->size();
  return true;
}

// -------------------------------------------------------------- HashJoin

void JoinHashTable::Insert(const Row& row) {
  const model::Value& key = row[key_column];
  if (key.is_null()) return;  // nulls never join
  buckets[key.HashValue()].push_back(row);
  ++build_rows;
}

std::shared_ptr<const JoinHashTable> JoinHashTable::Build(Operator* build,
                                                          int key_column) {
  auto table = std::make_shared<JoinHashTable>();
  table->key_column = key_column;
  table->schema = build->schema();
  build->Open();
  RowBatch batch;
  while (build->NextBatch(&batch)) {
    for (const Row& row : batch.rows) table->Insert(row);
  }
  build->Close();
  return table;
}

namespace {

// Appends all matches of `input` against `table` to `out`: probe rows keep
// their order, each extended with every equal-keyed build row. Shared by
// HashProbeOp and HashJoinOp.
void ProbeBatch(const JoinHashTable& table, RowBatch& input, int left_key,
                RowBatch* out) {
  for (Row& left_row : input.rows) {
    const model::Value& key = left_row[left_key];
    if (key.is_null()) continue;
    auto it = table.buckets.find(key.HashValue());
    if (it == table.buckets.end()) continue;
    for (const Row& right_row : it->second) {
      // Re-check equality to guard against hash collisions.
      if (right_row[table.key_column].Compare(key) != 0) continue;
      Row& joined = out->AppendRow();
      joined.reserve(left_row.size() + right_row.size());
      joined.insert(joined.end(), left_row.begin(), left_row.end());
      joined.insert(joined.end(), right_row.begin(), right_row.end());
    }
  }
}

Schema ConcatSchemas(const Schema& left, const Schema& right) {
  Schema schema;
  for (const std::string& column : left.columns) schema.AddColumn(column);
  for (const std::string& column : right.columns) schema.AddColumn(column);
  return schema;
}

}  // namespace

HashProbeOp::HashProbeOp(OperatorPtr left,
                         std::shared_ptr<const JoinHashTable> table,
                         int left_key)
    : left_(std::move(left)), table_(std::move(table)), left_key_(left_key) {
  schema_ = ConcatSchemas(left_->schema(), table_->schema);
}

bool HashProbeOp::NextBatch(RowBatch* batch) {
  batch->clear();
  while (batch->empty()) {
    if (!left_->NextBatch(&input_)) return false;
    ProbeBatch(*table_, input_, left_key_, batch);
  }
  rows_produced_ += batch->size();
  return true;
}

HashJoinOp::HashJoinOp(OperatorPtr left, OperatorPtr right, int left_key,
                       int right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
}

void HashJoinOp::Open() {
  left_->Open();
  table_ = JoinHashTable::Build(right_.get(), right_key_);
}

bool HashJoinOp::NextBatch(RowBatch* batch) {
  batch->clear();
  while (batch->empty()) {
    if (!left_->NextBatch(&input_)) return false;
    ProbeBatch(*table_, input_, left_key_, batch);
  }
  rows_produced_ += batch->size();
  return true;
}

void HashJoinOp::Close() {
  left_->Close();
  table_.reset();
}

// --------------------------------------------------------- IndexedNLJoin

IndexedNLJoinOp::IndexedNLJoinOp(OperatorPtr left, int left_key,
                                 LookupFn lookup, Schema right_schema)
    : left_(std::move(left)),
      left_key_(left_key),
      lookup_(std::move(lookup)) {
  schema_ = ConcatSchemas(left_->schema(), right_schema);
}

void IndexedNLJoinOp::Open() {
  left_->Open();
  index_probes_ = 0;
}

bool IndexedNLJoinOp::NextBatch(RowBatch* batch) {
  batch->clear();
  while (batch->empty()) {
    if (!left_->NextBatch(&input_)) return false;
    for (Row& left_row : input_.rows) {
      const model::Value& key = left_row[left_key_];
      if (key.is_null()) continue;
      std::vector<Row> matches = lookup_(key);
      ++index_probes_;
      for (Row& right_row : matches) {
        Row& joined = batch->AppendRow();
        joined.reserve(left_row.size() + right_row.size());
        joined.insert(joined.end(), left_row.begin(), left_row.end());
        joined.insert(joined.end(),
                      std::make_move_iterator(right_row.begin()),
                      std::make_move_iterator(right_row.end()));
      }
    }
  }
  rows_produced_ += batch->size();
  return true;
}

// ----------------------------------------------------------- SortMerge

SortMergeJoinOp::SortMergeJoinOp(OperatorPtr left, OperatorPtr right,
                                 int left_key, int right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  schema_ = ConcatSchemas(left_->schema(), right_->schema());
}

void SortMergeJoinOp::Open() {
  left_rows_ = Execute(left_.get());
  right_rows_ = Execute(right_.get());
  auto by_key = [](int key) {
    return [key](const Row& a, const Row& b) {
      return a[key].Compare(b[key]) < 0;
    };
  };
  std::stable_sort(left_rows_.begin(), left_rows_.end(), by_key(left_key_));
  std::stable_sort(right_rows_.begin(), right_rows_.end(), by_key(right_key_));
  left_cursor_ = 0;
  right_cursor_ = 0;
}

bool SortMergeJoinOp::NextBatch(RowBatch* batch) {
  batch->clear();
  while (batch->size() < kDefaultBatchRows &&
         left_cursor_ < left_rows_.size() &&
         right_cursor_ < right_rows_.size()) {
    const model::Value& left_key = left_rows_[left_cursor_][left_key_];
    const model::Value& right_key = right_rows_[right_cursor_][right_key_];
    if (left_key.is_null()) {
      ++left_cursor_;
      continue;
    }
    if (right_key.is_null()) {
      ++right_cursor_;
      continue;
    }
    const int cmp = left_key.Compare(right_key);
    if (cmp < 0) {
      ++left_cursor_;
      continue;
    }
    if (cmp > 0) {
      ++right_cursor_;
      continue;
    }
    // Equal-key groups: cross every left row in the group with every right
    // row, then advance both cursors past the group.
    size_t left_end = left_cursor_;
    while (left_end < left_rows_.size() &&
           left_rows_[left_end][left_key_].Compare(left_key) == 0) {
      ++left_end;
    }
    size_t right_end = right_cursor_;
    while (right_end < right_rows_.size() &&
           right_rows_[right_end][right_key_].Compare(right_key) == 0) {
      ++right_end;
    }
    for (size_t l = left_cursor_; l < left_end; ++l) {
      for (size_t r = right_cursor_; r < right_end; ++r) {
        Row& joined = batch->AppendRow();
        const Row& left_row = left_rows_[l];
        const Row& right_row = right_rows_[r];
        joined.reserve(left_row.size() + right_row.size());
        joined.insert(joined.end(), left_row.begin(), left_row.end());
        joined.insert(joined.end(), right_row.begin(), right_row.end());
      }
    }
    left_cursor_ = left_end;
    right_cursor_ = right_end;
  }
  rows_produced_ += batch->size();
  return !batch->empty();
}

void SortMergeJoinOp::Close() {
  left_rows_.clear();
  right_rows_.clear();
}

// ------------------------------------------------------------- Aggregate

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<int> group_columns,
                                 std::vector<AggSpec> aggregates)
    : child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)) {
  schema_ = GroupByAggregator::OutputSchema(child_->schema(), group_columns_,
                                            aggregates_);
}

void HashAggregateOp::Open() {
  child_->Open();
  GroupByAggregator aggregator(group_columns_, aggregates_);
  RowBatch batch;
  while (child_->NextBatch(&batch)) aggregator.AccumulateBatch(batch);
  finalized_ = aggregator.Finalize();
  cursor_ = 0;
}

bool HashAggregateOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= finalized_.size()) return false;
  const size_t end = std::min(finalized_.size(), cursor_ + kDefaultBatchRows);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) {
    batch->push_back(std::move(finalized_[cursor_]));
  }
  rows_produced_ += batch->size();
  return true;
}

// ------------------------------------------------------------ Sort/TopK

SortOp::SortOp(OperatorPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

void SortOp::Open() {
  child_->Open();
  rows_.clear();
  rows_.reserve(child_->EstimatedRows());
  RowBatch batch;
  while (child_->NextBatch(&batch)) {
    for (Row& row : batch.rows) rows_.push_back(std::move(row));
  }
  std::stable_sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
    return RowLess(a, b, keys_);
  });
  cursor_ = 0;
}

bool SortOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= rows_.size()) return false;
  const size_t end = std::min(rows_.size(), cursor_ + kDefaultBatchRows);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) batch->push_back(std::move(rows_[cursor_]));
  rows_produced_ += batch->size();
  return true;
}

TopKOp::TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k)
    : child_(std::move(child)), keys_(std::move(keys)), k_(k) {}

void TopKOp::Open() {
  child_->Open();
  TopKAccumulator accumulator(keys_, k_);
  RowBatch batch;
  while (child_->NextBatch(&batch)) accumulator.AddBatch(std::move(batch));
  sorted_ = accumulator.Finalize();
  cursor_ = 0;
}

bool TopKOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= sorted_.size()) return false;
  const size_t end = std::min(sorted_.size(), cursor_ + kDefaultBatchRows);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) batch->push_back(std::move(sorted_[cursor_]));
  rows_produced_ += batch->size();
  return true;
}

// ----------------------------------------------------------------- Limit

bool LimitOp::NextBatch(RowBatch* batch) {
  batch->clear();
  if (emitted_ >= limit_) return false;
  if (!child_->NextBatch(batch)) return false;
  if (emitted_ + batch->size() > limit_) {
    batch->rows.resize(limit_ - emitted_);
  }
  emitted_ += batch->size();
  rows_produced_ += batch->size();
  return true;
}

}  // namespace impliance::exec
