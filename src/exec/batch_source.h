#ifndef IMPLIANCE_EXEC_BATCH_SOURCE_H_
#define IMPLIANCE_EXEC_BATCH_SOURCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/operator.h"
#include "exec/predicate.h"
#include "exec/row_batch.h"

namespace impliance::exec {

// Counters a scan accumulates while it runs. A source that decodes from
// block-compressed storage reports real skip numbers; a materialized
// adapter only ever decodes.
struct ScanStats {
  uint64_t segments_visited = 0;
  uint64_t segments_skipped = 0;  // refuted entirely from segment metadata
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;  // refuted from per-block zone maps
  uint64_t rows_decoded = 0;    // rows materialized into batches
};

// Pull-based stream of RowBatch chunks out of a table scan — the
// batch-native boundary between storage and the executor. Unlike Operator
// it has no Open/Close lifecycle: a source is single-use, positioned at the
// start when constructed, and carries exactly the projected columns the
// caller asked for.
//
// Sources created with predicate hints may SKIP rows that cannot satisfy
// them (whole blocks refuted by zone maps), but are never required to
// filter row-wise: callers must re-apply their predicates to the returned
// rows. Hints can only shrink the stream, never grow or reorder it — rows
// always come back in table order.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  // Schema over exactly the projected columns, in the requested order.
  virtual const Schema& schema() const = 0;

  // Clears `batch` and fills it with the next chunk of rows. Returns false
  // — with `batch` empty — only at end of stream.
  virtual bool NextBatch(RowBatch* batch) = 0;

  // Upper-bound row-count hint (0 = unknown).
  virtual uint64_t EstimatedRows() const { return 0; }

  // Counters so far (meaningful once the stream is drained).
  virtual ScanStats stats() const { return {}; }
};

using BatchSourcePtr = std::unique_ptr<BatchSource>;

// Adapter over an already-materialized row vector: prunes each row to
// `columns` (full-schema indices, in output order) while batching. The
// default Table::ScanBatches wraps row/document backends with it.
class VectorBatchSource : public BatchSource {
 public:
  // `columns` empty means "all columns, in schema order, no pruning".
  VectorBatchSource(Schema schema, std::vector<Row> rows,
                    std::vector<int> columns,
                    size_t batch_rows = kDefaultBatchRows);

  const Schema& schema() const override { return schema_; }
  bool NextBatch(RowBatch* batch) override;
  uint64_t EstimatedRows() const override { return rows_.size(); }
  ScanStats stats() const override { return stats_; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<int> columns_;  // empty = identity
  size_t batch_rows_;
  size_t cursor_ = 0;
  ScanStats stats_;
};

// Zero-copy variant over a row vector owned by someone who outlives the
// scan (MemTable's backing store): values are copied into batches, but the
// base vector itself is never duplicated.
class BorrowedBatchSource : public BatchSource {
 public:
  BorrowedBatchSource(Schema schema, const std::vector<Row>* rows,
                      std::vector<int> columns,
                      size_t batch_rows = kDefaultBatchRows);

  const Schema& schema() const override { return schema_; }
  bool NextBatch(RowBatch* batch) override;
  uint64_t EstimatedRows() const override { return rows_->size(); }
  ScanStats stats() const override { return stats_; }

 private:
  Schema schema_;
  const std::vector<Row>* rows_;
  std::vector<int> columns_;  // empty = identity
  size_t batch_rows_;
  size_t cursor_ = 0;
  ScanStats stats_;
};

// Leaf operator over a BatchSource, so a plan can consume a scan stream
// without materializing it first. Single-use, like the source it wraps.
class BatchSourceOp : public Operator {
 public:
  explicit BatchSourceOp(BatchSourcePtr source) : source_(std::move(source)) {}

  const Schema& schema() const override { return source_->schema(); }
  std::string name() const override { return "BatchScan"; }
  void Open() override {}
  bool NextBatch(RowBatch* batch) override {
    const bool more = source_->NextBatch(batch);
    rows_produced_ += batch->size();
    return more;
  }
  void Close() override {}
  uint64_t EstimatedRows() const override { return source_->EstimatedRows(); }

  ScanStats scan_stats() const { return source_->stats(); }

 private:
  BatchSourcePtr source_;
};

// Drains a source into a vector. `predicates` (over the SOURCE's projected
// schema; may be empty) are applied row-wise during the drain, so callers
// that must re-check hints fold the filter into the same pass.
std::vector<Row> DrainBatchSource(BatchSource* source,
                                  const std::vector<Predicate>& predicates = {});

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_BATCH_SOURCE_H_
