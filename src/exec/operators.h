#ifndef IMPLIANCE_EXEC_OPERATORS_H_
#define IMPLIANCE_EXEC_OPERATORS_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/predicate.h"

namespace impliance::exec {

// Leaf: a materialized row set (a view scan's rows, an index lookup result,
// or rows shipped from another node).
class RowSourceOp : public Operator {
 public:
  RowSourceOp(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "RowSource"; }
  void Open() override { cursor_ = 0; }
  bool Next(Row* row) override;
  void Close() override {}

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// Conjunctive filter. With `adaptive` set, predicate evaluation order is
// re-sorted by observed selectivity every `kAdaptBatch` input rows — the
// eddies-flavored runtime adaptivity Section 3.3 leans on in place of
// optimizer statistics.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
           bool adaptive = false);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return adaptive_ ? "AdaptiveFilter" : "Filter"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

  // Current evaluation order (for tests/benches).
  std::vector<int> EvaluationOrder() const;
  uint64_t predicate_evals() const { return predicate_evals_; }

 private:
  static constexpr uint64_t kAdaptBatch = 256;

  struct Tracked {
    Predicate predicate;
    uint64_t evaluated = 0;
    uint64_t passed = 0;
    int original_index = 0;
    double Selectivity() const {
      return evaluated == 0 ? 1.0
                            : static_cast<double>(passed) / evaluated;
    }
  };

  OperatorPtr child_;
  std::vector<Tracked> predicates_;
  bool adaptive_;
  uint64_t input_rows_ = 0;
  uint64_t predicate_evals_ = 0;
};

// Column projection (by child column index).
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<int> columns,
            std::vector<std::string> names);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  void Open() override { child_->Open(); }
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<int> columns_;
  Schema schema_;
};

// Hash equi-join: builds on the right child, probes with the left. Output
// schema = left columns ++ right columns.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, int left_key, int right_key);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override;

  size_t build_rows() const { return build_size_; }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  int left_key_;
  int right_key_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<Row>> hash_table_;
  size_t build_size_ = 0;
  Row current_left_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_cursor_ = 0;
};

// Index nested-loop join: for each left row, fetches matching right rows
// through a lookup callback (e.g. a ValueIndex probe). Preferred by the
// simple planner for top-k queries (Section 3.3): no build cost, first
// results stream immediately.
class IndexedNLJoinOp : public Operator {
 public:
  using LookupFn = std::function<std::vector<Row>(const model::Value&)>;

  IndexedNLJoinOp(OperatorPtr left, int left_key, LookupFn lookup,
                  Schema right_schema);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "IndexedNLJoin"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override { left_->Close(); }

  uint64_t index_probes() const { return index_probes_; }

 private:
  OperatorPtr left_;
  int left_key_;
  LookupFn lookup_;
  Schema schema_;
  Row current_left_;
  std::vector<Row> current_matches_;
  size_t match_cursor_ = 0;
  uint64_t index_probes_ = 0;
};

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  int column = -1;  // ignored for kCount
  std::string output_name;
};

// Hash group-by with the standard aggregate functions. Output schema =
// group columns ++ aggregate outputs. Groups emitted in key order
// (deterministic).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<int> group_columns,
                  std::vector<AggSpec> aggregates);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

 private:
  struct AggState {
    double sum = 0;
    int64_t count = 0;
    model::Value min;
    model::Value max;
  };

  OperatorPtr child_;
  std::vector<int> group_columns_;
  std::vector<AggSpec> aggregates_;
  Schema schema_;
  std::map<Row, std::vector<AggState>> groups_;  // Value has operator<
  std::map<Row, std::vector<AggState>>::const_iterator emit_cursor_;
  bool materialized_ = false;
};

// Full sort on (column, ascending) keys, applied in order.
struct SortKey {
  int column = 0;
  bool ascending = true;
};

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Sort"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// Bounded top-k by sort keys using a heap; O(n log k) and O(k) memory where
// SortOp is O(n log n) / O(n).
class TopKOp : public Operator {
 public:
  TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "TopK"; }
  void Open() override;
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  size_t k_;
  std::vector<Row> heap_;
  std::vector<Row> sorted_;
  size_t cursor_ = 0;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Limit"; }
  void Open() override {
    child_->Open();
    emitted_ = 0;
  }
  bool Next(Row* row) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

// Comparator used by SortOp/TopKOp (exposed for tests).
bool RowLess(const Row& a, const Row& b, const std::vector<SortKey>& keys);

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_OPERATORS_H_
