#ifndef IMPLIANCE_EXEC_OPERATORS_H_
#define IMPLIANCE_EXEC_OPERATORS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/aggregator.h"
#include "exec/operator.h"
#include "exec/predicate.h"

namespace impliance::exec {

// Leaf: a materialized row set (a view scan's rows, an index lookup result,
// or rows shipped from another node).
class RowSourceOp : public Operator {
 public:
  RowSourceOp(Schema schema, std::vector<Row> rows,
              size_t batch_rows = kDefaultBatchRows)
      : schema_(std::move(schema)),
        rows_(std::move(rows)),
        batch_rows_(batch_rows) {}

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "RowSource"; }
  void Open() override { cursor_ = 0; }
  bool NextBatch(RowBatch* batch) override;
  void Close() override {}
  uint64_t EstimatedRows() const override { return rows_.size(); }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t batch_rows_;
  size_t cursor_ = 0;
};

// Leaf over a shared, immutable row vector: emits rows [begin, end). The
// morsel-driven executor hands each worker slices of the same base table
// without copying it per worker.
class RowSliceSourceOp : public Operator {
 public:
  RowSliceSourceOp(const Schema* schema,
                   std::shared_ptr<const std::vector<Row>> rows, size_t begin,
                   size_t end, size_t batch_rows = kDefaultBatchRows)
      : schema_(schema),
        rows_(std::move(rows)),
        begin_(begin),
        end_(end),
        batch_rows_(batch_rows) {}

  const Schema& schema() const override { return *schema_; }
  std::string name() const override { return "RowSlice"; }
  void Open() override { cursor_ = begin_; }
  bool NextBatch(RowBatch* batch) override;
  void Close() override {}
  uint64_t EstimatedRows() const override { return end_ - begin_; }

 private:
  const Schema* schema_;  // owned by the plan, outlives the operator
  std::shared_ptr<const std::vector<Row>> rows_;
  size_t begin_;
  size_t end_;
  size_t batch_rows_;
  size_t cursor_ = 0;
};

// Conjunctive filter. With `adaptive` set, predicate evaluation order is
// re-sorted by observed selectivity every `kAdaptBatch` input rows — the
// eddies-flavored runtime adaptivity Section 3.3 leans on in place of
// optimizer statistics.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
           bool adaptive = false);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return adaptive_ ? "AdaptiveFilter" : "Filter"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  uint64_t EstimatedRows() const override { return child_->EstimatedRows(); }

  // Current evaluation order (for tests/benches).
  std::vector<int> EvaluationOrder() const;
  uint64_t predicate_evals() const { return predicate_evals_; }

 private:
  static constexpr uint64_t kAdaptBatch = 256;

  struct Tracked {
    Predicate predicate;
    uint64_t evaluated = 0;
    uint64_t passed = 0;
    int original_index = 0;
    double Selectivity() const {
      return evaluated == 0 ? 1.0
                            : static_cast<double>(passed) / evaluated;
    }
  };

  OperatorPtr child_;
  std::vector<Tracked> predicates_;
  bool adaptive_;
  uint64_t input_rows_ = 0;
  uint64_t predicate_evals_ = 0;
  RowBatch input_;  // persists across calls so rejected rows recycle
};

// Column projection (by child column index).
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<int> columns,
            std::vector<std::string> names);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  void Open() override { child_->Open(); }
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  uint64_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  OperatorPtr child_;
  std::vector<int> columns_;
  Schema schema_;
  bool distinct_columns_;  // safe to move values out of consumed input rows
  RowBatch input_;
};

// Immutable build side of a hash equi-join, keyed by value hash with an
// equality re-check at probe time. Built once, then shared read-only — the
// morsel-parallel driver probes one table from every worker.
struct JoinHashTable {
  std::unordered_map<uint64_t, std::vector<Row>> buckets;
  size_t build_rows = 0;
  int key_column = -1;
  Schema schema;  // build-side schema

  void Insert(const Row& row);
  // Drains `build` (Open/NextBatch*/Close) into a table keyed on
  // `key_column`. Null keys never join and are dropped.
  static std::shared_ptr<const JoinHashTable> Build(Operator* build,
                                                    int key_column);
};

// Probes a shared JoinHashTable with the left child's rows. Output schema =
// left columns ++ build columns.
class HashProbeOp : public Operator {
 public:
  HashProbeOp(OperatorPtr left, std::shared_ptr<const JoinHashTable> table,
              int left_key);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashProbe"; }
  void Open() override { left_->Open(); }
  bool NextBatch(RowBatch* batch) override;
  void Close() override { left_->Close(); }

 private:
  OperatorPtr left_;
  std::shared_ptr<const JoinHashTable> table_;
  int left_key_;
  Schema schema_;
  RowBatch input_;
};

// Hash equi-join: builds on the right child in Open(), probes with the
// left. Output schema = left columns ++ right columns. Internally a
// JoinHashTable build plus a HashProbeOp-style probe loop.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, int left_key, int right_key);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashJoin"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override;

  size_t build_rows() const {
    return table_ == nullptr ? 0 : table_->build_rows;
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  int left_key_;
  int right_key_;
  Schema schema_;
  std::shared_ptr<const JoinHashTable> table_;
  RowBatch input_;
};

// Index nested-loop join: for each left row, fetches matching right rows
// through a lookup callback (e.g. a ValueIndex probe). Preferred by the
// simple planner for top-k queries (Section 3.3): no build cost, first
// results stream immediately.
class IndexedNLJoinOp : public Operator {
 public:
  using LookupFn = std::function<std::vector<Row>(const model::Value&)>;

  IndexedNLJoinOp(OperatorPtr left, int left_key, LookupFn lookup,
                  Schema right_schema);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "IndexedNLJoin"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override { left_->Close(); }

  uint64_t index_probes() const { return index_probes_; }

 private:
  OperatorPtr left_;
  int left_key_;
  LookupFn lookup_;
  Schema schema_;
  uint64_t index_probes_ = 0;
  RowBatch input_;
};

// Sort-merge equi-join: materializes and sorts both inputs by the join key
// in Open(), then merges. Output schema = left columns ++ right columns;
// output rows are ordered by the join key (the cost-aware planner exploits
// this "interesting order" to elide a final sort). Null keys never join.
class SortMergeJoinOp : public Operator {
 public:
  SortMergeJoinOp(OperatorPtr left, OperatorPtr right, int left_key,
                  int right_key);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "SortMergeJoin"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  int left_key_;
  int right_key_;
  Schema schema_;
  std::vector<Row> left_rows_;   // sorted by left_key_
  std::vector<Row> right_rows_;  // sorted by right_key_
  size_t left_cursor_ = 0;
  size_t right_cursor_ = 0;
};

// Hash group-by with the standard aggregate functions. Output schema =
// group columns ++ aggregate outputs. Groups emitted in key order
// (deterministic). Accumulation runs through GroupByAggregator — the same
// code the parallel executor uses for thread-local partials.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<int> group_columns,
                  std::vector<AggSpec> aggregates);

  const Schema& schema() const override { return schema_; }
  std::string name() const override { return "HashAggregate"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<int> group_columns_;
  std::vector<AggSpec> aggregates_;
  Schema schema_;
  std::vector<Row> finalized_;
  size_t cursor_ = 0;
};

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SortKey> keys);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Sort"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  uint64_t EstimatedRows() const override { return child_->EstimatedRows(); }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t cursor_ = 0;
};

// Bounded top-k by sort keys using a heap; O(n log k) and O(k) memory where
// SortOp is O(n log n) / O(n).
class TopKOp : public Operator {
 public:
  TopKOp(OperatorPtr child, std::vector<SortKey> keys, size_t k);

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "TopK"; }
  void Open() override;
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  uint64_t EstimatedRows() const override {
    const uint64_t child_rows = child_->EstimatedRows();
    return child_rows == 0 ? k_ : std::min<uint64_t>(k_, child_rows);
  }

 private:
  OperatorPtr child_;
  std::vector<SortKey> keys_;
  size_t k_;
  std::vector<Row> sorted_;
  size_t cursor_ = 0;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& schema() const override { return child_->schema(); }
  std::string name() const override { return "Limit"; }
  void Open() override {
    child_->Open();
    emitted_ = 0;
  }
  bool NextBatch(RowBatch* batch) override;
  void Close() override { child_->Close(); }
  uint64_t EstimatedRows() const override {
    const uint64_t child_rows = child_->EstimatedRows();
    return child_rows == 0 ? limit_ : std::min<uint64_t>(limit_, child_rows);
  }

 private:
  OperatorPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_OPERATORS_H_
