#ifndef IMPLIANCE_EXEC_PARALLEL_H_
#define IMPLIANCE_EXEC_PARALLEL_H_

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/thread_pool.h"
#include "exec/aggregator.h"
#include "exec/operators.h"

namespace impliance::exec {

// Per-query execution knobs. dop==1 runs the batched pipeline inline on the
// calling thread; dop>1 splits the base scan into morsels executed by
// workers on the shared pool. The degree-of-parallelism cap is chosen by
// the cluster scheduler from its view of free workers (Section 3.3's
// "simple, massive parallelism": scale a few predictable operators, not a
// clever optimizer).
struct ExecOptions {
  size_t dop = 1;
  size_t morsel_rows = kDefaultMorselRows;
  size_t batch_rows = kDefaultBatchRows;
};

// A parallelizable query segment: a materialized base-table scan, a
// row-wise pipeline stacked on each morsel of it (filter / project /
// hash-probe against a shared build table), and a sink describing how
// per-worker outputs combine.
//
//   kCollect   — outputs gathered per morsel and concatenated in morsel
//                order, so the result row order equals the serial plan's.
//   kAggregate — each worker folds its rows into a thread-local
//                GroupByAggregator; partials merge exactly (avg divides
//                only at finalize) and emit in key order.
//   kTopK      — each worker keeps a thread-local top-k heap; partials
//                merge into the global top-k.
struct MorselPlan {
  Schema source_schema;
  std::shared_ptr<const std::vector<Row>> source_rows;

  // Wraps a morsel source with the row-wise part of the pipeline. Called
  // once per worker per morsel (and once to derive the output schema), so
  // it must be cheap and safe to invoke concurrently.
  std::function<OperatorPtr(OperatorPtr source)> make_pipeline;

  enum class Sink { kCollect, kAggregate, kTopK };
  Sink sink = Sink::kCollect;

  // Sink::kAggregate
  std::vector<int> group_columns;
  std::vector<AggSpec> aggregates;

  // Sink::kTopK
  std::vector<SortKey> sort_keys;
  size_t top_k = 0;

  // Schema of the rows the pipeline feeds into the sink.
  Schema PipelineSchema() const;
  // Schema of the rows Run() returns (aggregate sinks reshape).
  Schema OutputSchema() const;
};

// Morsel dispenser with work stealing: morsels are dealt as contiguous
// ranges to per-worker deques (scan locality); a worker that drains its own
// deque steals from the back of the busiest victim, so skewed pipelines
// (one worker's morsels all pass the filter, another's all fail) still
// finish together.
class MorselQueue {
 public:
  struct Morsel {
    size_t id = 0;  // position in source order, for deterministic collects
    size_t begin = 0;
    size_t end = 0;
  };

  MorselQueue(size_t total_rows, size_t morsel_rows, size_t num_workers);

  // Next morsel for `worker`; false when every lane is empty.
  bool Pop(size_t worker, Morsel* out);

  size_t num_morsels() const { return num_morsels_; }
  // Morsels taken from a lane other than the worker's own (for tests).
  uint64_t steals() const;

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<Morsel> morsels;
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
  size_t num_morsels_ = 0;
  std::atomic<uint64_t> steals_{0};
};

// Morsel-driven parallel pipeline driver. One process-wide instance
// (Shared()) owns the worker pool every query draws from, so intra-query
// parallelism and inter-query concurrency share the same fixed set of
// threads instead of oversubscribing the host.
class ParallelExecutor {
 public:
  explicit ParallelExecutor(size_t num_threads);

  // Process-wide executor sized to the hardware.
  static ParallelExecutor& Shared();

  // Executes the segment and returns its rows (collected, aggregated, or
  // top-k — see MorselPlan::Sink). dop<=1, a single morsel, or an empty
  // source run inline on the calling thread with zero scheduling overhead.
  std::vector<Row> Run(const MorselPlan& plan, const ExecOptions& options);

  // Runs independent closures with at most `dop` in flight, blocking until
  // all complete. Used by the faceted and graph paths to fan out read-only
  // index work. Tasks must not submit to this executor and block on it.
  void RunTasks(std::vector<std::function<void()>> tasks, size_t dop);

  size_t num_threads() const { return pool_.num_threads(); }
  size_t pending_tasks() const { return pool_.pending_tasks(); }
  uint64_t total_steals() const { return total_steals_.load(); }

 private:
  struct WorkerState;

  std::vector<Row> RunInline(const MorselPlan& plan,
                             const ExecOptions& options);
  void RunWorker(const MorselPlan& plan, const ExecOptions& options,
                 MorselQueue* queue, size_t worker, WorkerState* state);

  ThreadPool pool_;
  std::atomic<uint64_t> total_steals_{0};
};

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_PARALLEL_H_
