#ifndef IMPLIANCE_EXEC_OPERATOR_H_
#define IMPLIANCE_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/row_batch.h"
#include "model/view.h"

namespace impliance::exec {

using Row = model::Row;

// Column names of an operator's output. Constructing from a column vector
// (or growing through AddColumn) keeps a name→index map so IndexOf is O(1);
// writing `columns` directly still works but falls back to a linear scan.
struct Schema {
  std::vector<std::string> columns;

  Schema() = default;
  Schema(std::vector<std::string> cols) : columns(std::move(cols)) {
    Reindex();
  }

  void AddColumn(std::string name) {
    // First occurrence wins, matching IndexOf's linear-scan semantics for
    // duplicate names (join schemas may carry duplicates).
    index_.emplace(name, static_cast<int>(columns.size()));
    columns.push_back(std::move(name));
    ++indexed_;
  }

  // Rebuilds the name→index map after direct writes to `columns`.
  void Reindex() {
    index_.clear();
    for (size_t i = 0; i < columns.size(); ++i) {
      index_.emplace(columns[i], static_cast<int>(i));
    }
    indexed_ = columns.size();
  }

  int IndexOf(std::string_view name) const {
    if (indexed_ == columns.size()) {
      auto it = index_.find(name);
      return it == index_.end() ? -1 : it->second;
    }
    // Map is stale (columns mutated directly); stay correct.
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  size_t size() const { return columns.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> index_;
  size_t indexed_ = 0;
};

// Batched operator. The deliberately small operator set is the paper's
// "simple planner" premise (Section 3.3): few physical operators, each
// predictable, instead of a large optimizer search space. Operators
// produce/consume RowBatch chunks (~kDefaultBatchRows rows) so the hot
// loops run per batch, not per virtual call; the row-at-a-time Next() of
// the original Volcano design survives only as a non-virtual adapter.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& schema() const = 0;
  virtual std::string name() const = 0;

  virtual void Open() = 0;
  // Clears `batch` and fills it with the next chunk of rows (target
  // kDefaultBatchRows; joins may overshoot on multi-matches). Returns false
  // — with `batch` empty — only at end of stream.
  virtual bool NextBatch(RowBatch* batch) = 0;
  virtual void Close() = 0;

  // Upper-bound row-count hint (0 = unknown). Execute() uses it to reserve
  // output capacity instead of growing per batch.
  virtual uint64_t EstimatedRows() const { return 0; }

  // Row-at-a-time adapter for legacy call sites: drains an internal staged
  // batch. Do not interleave with direct NextBatch() calls.
  bool Next(Row* row) {
    if (staged_cursor_ >= staged_.size()) {
      staged_.clear();
      staged_cursor_ = 0;
      if (!NextBatch(&staged_) || staged_.empty()) return false;
    }
    *row = std::move(staged_.rows[staged_cursor_++]);
    return true;
  }

  uint64_t rows_produced() const { return rows_produced_; }

 protected:
  uint64_t rows_produced_ = 0;

 private:
  RowBatch staged_;
  size_t staged_cursor_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Drains `op` (Open/NextBatch*/Close) into a vector, reserving capacity
// from the operator's EstimatedRows() hint.
std::vector<Row> Execute(Operator* op);

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_OPERATOR_H_
