#ifndef IMPLIANCE_EXEC_OPERATOR_H_
#define IMPLIANCE_EXEC_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/view.h"

namespace impliance::exec {

using Row = model::Row;

// Column names of an operator's output.
struct Schema {
  std::vector<std::string> columns;

  int IndexOf(std::string_view name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
  size_t size() const { return columns.size(); }
};

// Volcano-style iterator. The deliberately small operator set is the
// paper's "simple planner" premise (Section 3.3): few physical operators,
// each predictable, instead of a large optimizer search space.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& schema() const = 0;
  virtual std::string name() const = 0;

  virtual void Open() = 0;
  // Produces the next row; returns false at end of stream.
  virtual bool Next(Row* row) = 0;
  virtual void Close() = 0;

  uint64_t rows_produced() const { return rows_produced_; }

 protected:
  uint64_t rows_produced_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

// Drains `op` (Open/Next*/Close) into a vector.
std::vector<Row> Execute(Operator* op);

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_OPERATOR_H_
