#include "exec/predicate.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace impliance::exec {

bool Predicate::Eval(const model::Row& row) const {
  IMPLIANCE_CHECK(column >= 0 && static_cast<size_t>(column) < row.size())
      << "predicate column " << column << " out of range";
  const model::Value& value = row[column];
  if (op == CompareOp::kContains) {
    if (value.is_null()) return false;
    return ToLower(value.AsString()).find(ToLower(literal.AsString())) !=
           std::string::npos;
  }
  // SQL-ish null semantics: null compares false to everything (including
  // null) except explicit kNe against a non-null, which is also false —
  // nulls never satisfy a comparison predicate.
  if (value.is_null() || literal.is_null()) return false;
  const int c = value.Compare(literal);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kContains:
      return false;  // handled above
  }
  return false;
}

bool EvalAll(const std::vector<Predicate>& predicates, const model::Row& row) {
  for (const Predicate& predicate : predicates) {
    if (!predicate.Eval(row)) return false;
  }
  return true;
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

}  // namespace impliance::exec
