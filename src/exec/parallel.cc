#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <thread>

#include "common/logging.h"
#include "obs/trace.h"

namespace impliance::exec {

namespace {

// Blocks one thread until `count` completions arrive from others.
class CompletionLatch {
 public:
  explicit CompletionLatch(size_t count) : remaining_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) done_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  size_t remaining_;
};

OperatorPtr MakeSource(const MorselPlan& plan, size_t begin, size_t end,
                       size_t batch_rows) {
  return std::make_unique<RowSliceSourceOp>(&plan.source_schema,
                                            plan.source_rows, begin, end,
                                            batch_rows);
}

OperatorPtr MakePipeline(const MorselPlan& plan, size_t begin, size_t end,
                         size_t batch_rows) {
  OperatorPtr source = MakeSource(plan, begin, end, batch_rows);
  return plan.make_pipeline ? plan.make_pipeline(std::move(source))
                            : std::move(source);
}

}  // namespace

// ------------------------------------------------------------ MorselPlan

Schema MorselPlan::PipelineSchema() const {
  // Probe with an empty slice: schemas are fixed at construction.
  return MakePipeline(*this, 0, 0, 1)->schema();
}

Schema MorselPlan::OutputSchema() const {
  Schema pipeline_schema = PipelineSchema();
  if (sink == Sink::kAggregate) {
    return GroupByAggregator::OutputSchema(pipeline_schema, group_columns,
                                           aggregates);
  }
  return pipeline_schema;
}

// ----------------------------------------------------------- MorselQueue

MorselQueue::MorselQueue(size_t total_rows, size_t morsel_rows,
                         size_t num_workers) {
  IMPLIANCE_CHECK(morsel_rows > 0 && num_workers > 0);
  lanes_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  num_morsels_ = (total_rows + morsel_rows - 1) / morsel_rows;
  // Deal contiguous runs of morsels to each lane so a worker's own work is
  // a sequential slice of the base table.
  const size_t per_lane = (num_morsels_ + num_workers - 1) / num_workers;
  for (size_t m = 0; m < num_morsels_; ++m) {
    Morsel morsel;
    morsel.id = m;
    morsel.begin = m * morsel_rows;
    morsel.end = std::min(total_rows, morsel.begin + morsel_rows);
    lanes_[std::min(m / per_lane, num_workers - 1)]->morsels.push_back(morsel);
  }
}

bool MorselQueue::Pop(size_t worker, Morsel* out) {
  Lane& own = *lanes_[worker];
  {
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.morsels.empty()) {
      *out = own.morsels.front();
      own.morsels.pop_front();
      return true;
    }
  }
  // Own lane dry: steal from the victim with the most remaining work, from
  // the back (the part of its range it will reach last).
  while (true) {
    size_t victim = lanes_.size();
    size_t victim_depth = 0;
    for (size_t i = 0; i < lanes_.size(); ++i) {
      if (i == worker) continue;
      std::lock_guard<std::mutex> lock(lanes_[i]->mutex);
      if (lanes_[i]->morsels.size() > victim_depth) {
        victim_depth = lanes_[i]->morsels.size();
        victim = i;
      }
    }
    if (victim == lanes_.size()) return false;  // everything drained
    std::lock_guard<std::mutex> lock(lanes_[victim]->mutex);
    if (lanes_[victim]->morsels.empty()) continue;  // raced; rescan
    *out = lanes_[victim]->morsels.back();
    lanes_[victim]->morsels.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

uint64_t MorselQueue::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

// ------------------------------------------------------ ParallelExecutor

struct ParallelExecutor::WorkerState {
  std::unique_ptr<GroupByAggregator> aggregator;
  std::unique_ptr<TopKAccumulator> top_k;
  // Sink::kCollect: per-morsel output slots, concatenated in morsel order.
  std::vector<std::vector<Row>>* collect_slots = nullptr;
};

ParallelExecutor::ParallelExecutor(size_t num_threads) : pool_(num_threads) {}

ParallelExecutor& ParallelExecutor::Shared() {
  static ParallelExecutor executor([] {
    const size_t hardware = std::thread::hardware_concurrency();
    // Keep enough threads for a DOP-8 query even on small hosts (they time
    // share), but do not run away on very wide ones.
    return std::clamp<size_t>(hardware, 8, 16);
  }());
  return executor;
}

std::vector<Row> ParallelExecutor::RunInline(const MorselPlan& plan,
                                             const ExecOptions& options) {
  const size_t total = plan.source_rows ? plan.source_rows->size() : 0;
  OperatorPtr pipeline = MakePipeline(plan, 0, total, options.batch_rows);
  switch (plan.sink) {
    case MorselPlan::Sink::kCollect:
      return Execute(pipeline.get());
    case MorselPlan::Sink::kAggregate: {
      GroupByAggregator aggregator(plan.group_columns, plan.aggregates);
      pipeline->Open();
      RowBatch batch;
      while (pipeline->NextBatch(&batch)) aggregator.AccumulateBatch(batch);
      pipeline->Close();
      return aggregator.Finalize();
    }
    case MorselPlan::Sink::kTopK: {
      TopKAccumulator accumulator(plan.sort_keys, plan.top_k);
      pipeline->Open();
      RowBatch batch;
      while (pipeline->NextBatch(&batch)) accumulator.AddBatch(std::move(batch));
      pipeline->Close();
      return accumulator.Finalize();
    }
  }
  return {};
}

void ParallelExecutor::RunWorker(const MorselPlan& plan,
                                 const ExecOptions& options, MorselQueue* queue,
                                 size_t worker, WorkerState* state) {
  MorselQueue::Morsel morsel;
  RowBatch batch;
  while (queue->Pop(worker, &morsel)) {
    OperatorPtr pipeline =
        MakePipeline(plan, morsel.begin, morsel.end, options.batch_rows);
    pipeline->Open();
    while (pipeline->NextBatch(&batch)) {
      switch (plan.sink) {
        case MorselPlan::Sink::kCollect: {
          std::vector<Row>& slot = (*state->collect_slots)[morsel.id];
          for (Row& row : batch.rows) slot.push_back(std::move(row));
          break;
        }
        case MorselPlan::Sink::kAggregate:
          state->aggregator->AccumulateBatch(batch);
          break;
        case MorselPlan::Sink::kTopK:
          state->top_k->AddBatch(std::move(batch));
          break;
      }
    }
    pipeline->Close();
  }
}

std::vector<Row> ParallelExecutor::Run(const MorselPlan& plan,
                                       const ExecOptions& options) {
  IMPLIANCE_CHECK(plan.source_rows != nullptr);
  const size_t total = plan.source_rows->size();
  const size_t morsel_rows = std::max<size_t>(1, options.morsel_rows);
  const size_t num_morsels = (total + morsel_rows - 1) / morsel_rows;
  size_t dop = std::min(options.dop, num_morsels);
  if (dop <= 1) return RunInline(plan, options);

  MorselQueue queue(total, morsel_rows, dop);
  // Each morsel gets its own output slot so collected rows concatenate in
  // source order no matter which worker ran which morsel.
  std::vector<std::vector<Row>> collect_slots(
      plan.sink == MorselPlan::Sink::kCollect ? num_morsels : 0);
  std::vector<WorkerState> states(dop);
  for (WorkerState& state : states) {
    switch (plan.sink) {
      case MorselPlan::Sink::kCollect:
        state.collect_slots = &collect_slots;
        break;
      case MorselPlan::Sink::kAggregate:
        state.aggregator = std::make_unique<GroupByAggregator>(
            plan.group_columns, plan.aggregates);
        break;
      case MorselPlan::Sink::kTopK:
        state.top_k =
            std::make_unique<TopKAccumulator>(plan.sort_keys, plan.top_k);
        break;
    }
  }

  // Workers run on pool threads, which have no trace of their own — attach
  // the submitting request's trace so morsel work lands in the right spans.
  obs::ScopedSpan morsel_span("exec.morsels");
  CompletionLatch latch(dop);
  for (size_t w = 0; w < dop; ++w) {
    pool_.Submit([this, &plan, &options, &queue, &states, &latch, w,
                  trace = obs::CurrentTrace()] {
      obs::ScopedTraceAttach attach(trace);
      RunWorker(plan, options, &queue, w, &states[w]);
      latch.CountDown();
    });
  }
  latch.Wait();
  total_steals_.fetch_add(queue.steals(), std::memory_order_relaxed);

  // Merge thread-local partials (worker order, deterministic).
  switch (plan.sink) {
    case MorselPlan::Sink::kCollect: {
      size_t total_out = 0;
      for (const std::vector<Row>& slot : collect_slots) {
        total_out += slot.size();
      }
      std::vector<Row> out;
      out.reserve(total_out);
      for (std::vector<Row>& slot : collect_slots) {
        for (Row& row : slot) out.push_back(std::move(row));
      }
      return out;
    }
    case MorselPlan::Sink::kAggregate: {
      for (size_t w = 1; w < dop; ++w) {
        states[0].aggregator->Merge(std::move(*states[w].aggregator));
      }
      return states[0].aggregator->Finalize();
    }
    case MorselPlan::Sink::kTopK: {
      for (size_t w = 1; w < dop; ++w) {
        states[0].top_k->Merge(std::move(*states[w].top_k));
      }
      return states[0].top_k->Finalize();
    }
  }
  return {};
}

void ParallelExecutor::RunTasks(std::vector<std::function<void()>> tasks,
                                size_t dop) {
  if (tasks.empty()) return;
  dop = std::min(dop, tasks.size());
  if (dop <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  // Deal tasks into `dop` lanes; each lane is one pool submission running
  // its share sequentially, so at most `dop` run concurrently. Lanes carry
  // the caller's trace so fanned-out index work records into it.
  CompletionLatch latch(dop);
  for (size_t lane = 0; lane < dop; ++lane) {
    pool_.Submit([&tasks, &latch, lane, dop, trace = obs::CurrentTrace()] {
      obs::ScopedTraceAttach attach(trace);
      for (size_t i = lane; i < tasks.size(); i += dop) tasks[i]();
      latch.CountDown();
    });
  }
  latch.Wait();
}

}  // namespace impliance::exec
