#ifndef IMPLIANCE_EXEC_PREDICATE_H_
#define IMPLIANCE_EXEC_PREDICATE_H_

#include <string>
#include <vector>

#include "model/value.h"
#include "model/view.h"

namespace impliance::exec {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

// One conjunct: <column> <op> <literal>. kContains does a case-insensitive
// substring test on the rendered value (keyword-ish predicate over fields).
struct Predicate {
  int column = -1;
  CompareOp op = CompareOp::kEq;
  model::Value literal;

  bool Eval(const model::Row& row) const;
};

// Conjunction evaluation.
bool EvalAll(const std::vector<Predicate>& predicates, const model::Row& row);

const char* CompareOpName(CompareOp op);

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_PREDICATE_H_
