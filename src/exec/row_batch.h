#ifndef IMPLIANCE_EXEC_ROW_BATCH_H_
#define IMPLIANCE_EXEC_ROW_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "model/view.h"

namespace impliance::exec {

// Number of rows an operator aims to put in one batch. Large enough to
// amortize the virtual call per batch and keep the per-batch loops tight,
// small enough that a batch of wide rows stays cache-resident.
inline constexpr size_t kDefaultBatchRows = 1024;

// Rows a morsel-driven scan hands out per grab. A morsel is the unit of
// scheduling (coarser than a batch so workers do not hammer the queue), a
// batch is the unit of operator hand-off.
inline constexpr size_t kDefaultMorselRows = 4096;

// Unit of data flow between operators: a chunk of rows sharing the
// producing operator's schema. Operators fill batches with tight loops
// instead of paying one virtual Next() per row.
struct RowBatch {
  std::vector<model::Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  // Retires rows that still own a buffer into the spare pool so the next
  // fill can reuse their capacity. Freeing a whole batch of Row buffers at
  // once overflows the allocator's per-thread cache; recycling keeps the
  // steady-state allocation count at zero per batch.
  void clear() {
    for (model::Row& row : rows) {
      if (row.capacity() != 0 && spare_.size() < kDefaultBatchRows) {
        row.clear();
        spare_.push_back(std::move(row));
      }
    }
    rows.clear();
  }
  void reserve(size_t n) { rows.reserve(n); }
  void push_back(model::Row row) { rows.push_back(std::move(row)); }

  // Appends an empty row, reusing a retired row's buffer when one is
  // available, and returns it for the caller to fill.
  model::Row& AppendRow() {
    if (spare_.empty()) {
      rows.emplace_back();
    } else {
      rows.push_back(std::move(spare_.back()));
      spare_.pop_back();
    }
    return rows.back();
  }

  // Appends a copy of `row`; vector assignment reuses a recycled buffer.
  void AppendCopy(const model::Row& row) { AppendRow() = row; }

 private:
  std::vector<model::Row> spare_;
};

}  // namespace impliance::exec

#endif  // IMPLIANCE_EXEC_ROW_BATCH_H_
