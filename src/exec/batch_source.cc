#include "exec/batch_source.h"

#include <utility>

namespace impliance::exec {

VectorBatchSource::VectorBatchSource(Schema schema, std::vector<Row> rows,
                                     std::vector<int> columns,
                                     size_t batch_rows)
    : schema_(std::move(schema)),
      rows_(std::move(rows)),
      columns_(std::move(columns)),
      batch_rows_(batch_rows == 0 ? kDefaultBatchRows : batch_rows) {}

bool VectorBatchSource::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= rows_.size()) return false;
  const size_t end = std::min(rows_.size(), cursor_ + batch_rows_);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) {
    Row& row = rows_[cursor_];
    if (columns_.empty()) {
      batch->push_back(std::move(row));
    } else {
      Row& out = batch->AppendRow();
      out.reserve(columns_.size());
      for (int column : columns_) out.push_back(std::move(row[column]));
    }
  }
  stats_.rows_decoded += batch->size();
  return true;
}

BorrowedBatchSource::BorrowedBatchSource(Schema schema,
                                         const std::vector<Row>* rows,
                                         std::vector<int> columns,
                                         size_t batch_rows)
    : schema_(std::move(schema)),
      rows_(rows),
      columns_(std::move(columns)),
      batch_rows_(batch_rows == 0 ? kDefaultBatchRows : batch_rows) {}

bool BorrowedBatchSource::NextBatch(RowBatch* batch) {
  batch->clear();
  if (cursor_ >= rows_->size()) return false;
  const size_t end = std::min(rows_->size(), cursor_ + batch_rows_);
  batch->reserve(end - cursor_);
  for (; cursor_ < end; ++cursor_) {
    const Row& row = (*rows_)[cursor_];
    if (columns_.empty()) {
      batch->AppendCopy(row);
    } else {
      Row& out = batch->AppendRow();
      out.reserve(columns_.size());
      for (int column : columns_) out.push_back(row[column]);
    }
  }
  stats_.rows_decoded += batch->size();
  return true;
}

std::vector<Row> DrainBatchSource(BatchSource* source,
                                  const std::vector<Predicate>& predicates) {
  std::vector<Row> rows;
  const uint64_t estimate = source->EstimatedRows();
  if (estimate != 0) rows.reserve(estimate);
  RowBatch batch;
  while (source->NextBatch(&batch)) {
    for (Row& row : batch.rows) {
      if (!predicates.empty() && !EvalAll(predicates, row)) continue;
      rows.push_back(std::move(row));
    }
    // Moved-from rows would poison the batch's recycling pool; start clean.
    batch.rows.clear();
  }
  return rows;
}

}  // namespace impliance::exec
