#include "cluster/node.h"

#include <chrono>

#include "common/clock.h"
#include "common/fault_injector.h"

namespace impliance::cluster {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kData:
      return "data";
    case NodeKind::kGrid:
      return "grid";
    case NodeKind::kCluster:
      return "cluster";
  }
  return "?";
}

const char* TaskOutcomeName(TaskOutcome outcome) {
  switch (outcome) {
    case TaskOutcome::kExecuted:
      return "executed";
    case TaskOutcome::kDropped:
      return "dropped";
    case TaskOutcome::kNodeDead:
      return "node-dead";
  }
  return "?";
}

Node::Node(NodeId id, NodeKind kind)
    : id_(id), kind_(kind), worker_([this] { WorkerLoop(); }) {}

Node::~Node() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_.store(true);
    DropQueuedLocked();
  }
  cv_.notify_all();
  worker_.join();
}

void Node::DropQueuedLocked() {
  for (Task& task : mailbox_) {
    task.done.set_value(TaskOutcome::kDropped);
    tasks_dropped_.fetch_add(1);
  }
  mailbox_.clear();
}

bool Node::Submit(std::function<void()> task,
                  std::future<TaskOutcome>* outcome) {
  Task entry;
  entry.fn = std::move(task);
  if (outcome != nullptr) *outcome = entry.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!alive_.load() || shutting_down_.load()) {
      entry.done.set_value(TaskOutcome::kNodeDead);
      return false;
    }
    // Lost-message fault: the caller gets a positive ack (true) but the
    // task never reaches the mailbox — only the outcome future tells the
    // truth. This models exactly the bug where ingest trusted the ack.
    if (FaultPoint("node.submit.drop")) {
      entry.done.set_value(TaskOutcome::kDropped);
      tasks_dropped_.fetch_add(1);
      return true;
    }
    mailbox_.push_back(std::move(entry));
    // Crash window between submit and run: the node dies with the task
    // (and everything else queued) still in its mailbox.
    if (FaultPoint("node.submit.crash")) {
      alive_.store(false);
      epoch_.fetch_add(1);
      DropQueuedLocked();
      return true;
    }
  }
  cv_.notify_one();
  return true;
}

TaskOutcome Node::Run(std::function<void()> task) {
  std::future<TaskOutcome> outcome;
  Submit(std::move(task), &outcome);
  return outcome.get();
}

size_t Node::queue_depth() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mutex_));
  return mailbox_.size();
}

void Node::Fail() {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_.store(false);
  epoch_.fetch_add(1);  // state stored before this point is lost
  DropQueuedLocked();   // in-flight work is lost with the node
}

void Node::Recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_.store(true);
}

void Node::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return shutting_down_.load() || !mailbox_.empty();
      });
      if (shutting_down_.load() && mailbox_.empty()) return;
      task = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    heartbeats_.fetch_add(1);
    if (FaultPoint("node.task.delay")) {
      const uint64_t micros = FaultDelayMicros("node.task.delay");
      if (micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
      }
    }
    const uint64_t start = NowMicros();
    task.fn();
    busy_micros_.fetch_add(NowMicros() - start);
    tasks_executed_.fetch_add(1);
    task.done.set_value(TaskOutcome::kExecuted);
  }
}

}  // namespace impliance::cluster
