#include "cluster/node.h"

#include "common/clock.h"

namespace impliance::cluster {

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kData:
      return "data";
    case NodeKind::kGrid:
      return "grid";
    case NodeKind::kCluster:
      return "cluster";
  }
  return "?";
}

Node::Node(NodeId id, NodeKind kind)
    : id_(id), kind_(kind), worker_([this] { WorkerLoop(); }) {}

Node::~Node() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_.store(true);
    mailbox_.clear();
  }
  cv_.notify_all();
  worker_.join();
}

bool Node::Submit(std::function<void()> task, std::future<void>* done) {
  // Accounting runs inside the packaged task so counters are updated
  // before the caller's future resolves.
  std::packaged_task<void()> packaged([this, task = std::move(task)] {
    const uint64_t start = NowMicros();
    task();
    busy_micros_.fetch_add(NowMicros() - start);
    tasks_executed_.fetch_add(1);
  });
  if (done != nullptr) *done = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!alive_.load() || shutting_down_.load()) return false;
    mailbox_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return true;
}

bool Node::Run(std::function<void()> task) {
  std::future<void> done;
  if (!Submit(std::move(task), &done)) return false;
  done.wait();
  return true;
}

size_t Node::queue_depth() const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mutex_));
  return mailbox_.size();
}

void Node::Fail() {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_.store(false);
  mailbox_.clear();  // in-flight work is lost with the node
}

void Node::Recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  alive_.store(true);
}

void Node::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return shutting_down_.load() || !mailbox_.empty();
      });
      if (shutting_down_.load() && mailbox_.empty()) return;
      task = std::move(mailbox_.front());
      mailbox_.pop_front();
    }
    heartbeats_.fetch_add(1);
    task();
  }
}

}  // namespace impliance::cluster
