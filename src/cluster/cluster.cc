#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "model/item.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace impliance::cluster {

namespace {
// Submission rounds per scatter: the original fan-out plus up to two
// failover attempts on re-routed assignments. Work still lost after that
// is reported as degraded instead of being retried forever.
constexpr int kMaxScatterRounds = 3;

// Partition-management metrics, registered once and cached (registration
// takes the registry mutex; Increment is lock-free).
struct PartitionMetrics {
  obs::Counter* splits;
  obs::Counter* merges;
  obs::Counter* moves;
  obs::Counter* docs_moved;
  obs::Counter* balancer_passes;
};
PartitionMetrics& Metrics() {
  static PartitionMetrics metrics = [] {
    obs::Registry& registry = obs::Registry::Global();
    return PartitionMetrics{
        registry.GetCounter("cluster.partition.splits"),
        registry.GetCounter("cluster.partition.merges"),
        registry.GetCounter("cluster.partition.moves"),
        registry.GetCounter("cluster.partition.docs_moved"),
        registry.GetCounter("cluster.balancer.passes"),
    };
  }();
  return metrics;
}
}  // namespace

SimulatedCluster::SimulatedCluster(const Options& options) : options_(options) {
  IMPLIANCE_CHECK(options.num_data_nodes > 0);
  IMPLIANCE_CHECK(options.num_grid_nodes > 0);
  IMPLIANCE_CHECK(options.num_cluster_nodes > 0);
  IMPLIANCE_CHECK(options.replication >= 1 &&
                  options.replication <= options.num_data_nodes);
  NodeId next = 0;
  for (size_t i = 0; i < options.num_data_nodes; ++i) {
    data_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kData));
    partitions_.push_back(std::make_shared<Partition>());
  }
  for (size_t i = 0; i < options.num_grid_nodes; ++i) {
    grid_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kGrid));
  }
  for (size_t i = 0; i < options.num_cluster_nodes; ++i) {
    cluster_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kCluster));
  }
  // Carve the initial partition table: equal-width routing-key ranges,
  // replica targets assigned round-robin so the static layout matches the
  // old hash ring's even spread. The first range must start at 0 — the
  // table is a gapless cover of the key space.
  const size_t tablets =
      std::max<size_t>(1, options.initial_partitions_per_node) *
      options.num_data_nodes;
  const uint64_t width = UINT64_MAX / tablets;
  for (size_t i = 0; i < tablets; ++i) {
    PartitionState state;
    state.pid = next_pid_++;
    const size_t primary = i % options.num_data_nodes;
    for (size_t r = 0; r < options.replication; ++r) {
      state.replicas.push_back(
          static_cast<NodeId>((primary + r) % options.num_data_nodes));
    }
    ptable_.emplace(width * i, std::move(state));
  }
}

SimulatedCluster::~SimulatedCluster() { StopBalancer(); }

uint64_t SimulatedCluster::DocBytes(const model::Document& doc) {
  std::string encoded;
  doc.Encode(&encoded);
  return encoded.size();
}

void SimulatedCluster::AccountTraffic(const ShipStats& stats) {
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  lifetime_traffic_.bytes_shipped += stats.bytes_shipped;
  lifetime_traffic_.rows_shipped += stats.rows_shipped;
  lifetime_traffic_.tasks += stats.tasks;
  lifetime_traffic_.failovers += stats.failovers;
  lifetime_traffic_.missing_partitions += stats.missing_partitions;
  lifetime_traffic_.degraded |= stats.degraded;
}

ShipStats SimulatedCluster::lifetime_traffic() const {
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  return lifetime_traffic_;
}

bool SimulatedCluster::RunOnPool(const std::vector<std::unique_ptr<Node>>& pool,
                                 std::atomic<uint64_t>* rr,
                                 const std::function<void()>& fn) {
  // Round-robin over the pool. A non-executed outcome means `fn` never ran
  // (rejected or dropped before execution), so handing it to a sibling
  // cannot duplicate its effects.
  const size_t n = pool.size();
  for (size_t attempt = 0; attempt < n; ++attempt) {
    Node* node = pool[rr->fetch_add(1) % n].get();
    if (!node->alive()) continue;
    if (node->Run(fn) == TaskOutcome::kExecuted) return true;
  }
  return false;
}

uint64_t SimulatedCluster::RouteKey(model::DocId id) const {
  return options_.key_range_partitioning ? id : Mix64(id);
}

std::vector<NodeId> SimulatedCluster::PlaceReplicas(model::DocId id,
                                                    size_t copies) const {
  const size_t n = data_nodes_.size();
  copies = std::min(copies, n);
  std::vector<NodeId> nodes;
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    auto it = ptable_.upper_bound(RouteKey(id));
    --it;  // the table always has an entry at key 0
    for (NodeId node : it->second.replicas) {
      if (nodes.size() >= copies) break;
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
  }
  // A caller wanting more copies than the tablet is configured with
  // (per-class storage policy) extends ring-wise past the table's targets.
  NodeId walk = nodes.empty() ? static_cast<NodeId>(Mix64(id) % n)
                              : static_cast<NodeId>((nodes.back() + 1) % n);
  while (nodes.size() < copies) {
    if (std::find(nodes.begin(), nodes.end(), walk) == nodes.end()) {
      nodes.push_back(walk);
    }
    walk = static_cast<NodeId>((walk + 1) % n);
  }
  return nodes;
}

void SimulatedCluster::BumpPartitionTraffic(model::DocId id) const {
  std::lock_guard<std::mutex> lock(ptable_mutex_);
  auto it = ptable_.upper_bound(RouteKey(id));
  --it;
  ++it->second.traffic;
}

void SimulatedCluster::AdjustPartitionDocCount(model::DocId id, int64_t delta) {
  std::lock_guard<std::mutex> lock(ptable_mutex_);
  auto it = ptable_.upper_bound(RouteKey(id));
  --it;
  if (delta < 0 && it->second.doc_count < static_cast<uint64_t>(-delta)) {
    it->second.doc_count = 0;
  } else {
    it->second.doc_count += delta;
  }
}

TaskOutcome SimulatedCluster::StoreOnNode(NodeId node_id,
                                          const model::Document& doc,
                                          uint64_t* epoch_at_store) {
  std::shared_ptr<Partition> partition = PartitionFor(node_id);
  Node* node = data_nodes_[node_id].get();
  return node->Run([partition, node, doc, epoch_at_store] {
    // Upsert: drop stale index postings first so re-ingest (new versions,
    // re-replication retries) stays idempotent.
    if (partition->docs.count(doc.id)) {
      partition->inverted.RemoveDocument(doc.id);
    }
    partition->docs[doc.id] = doc;
    partition->inverted.AddDocument(doc.id, doc.Text());
    // Read the incarnation AFTER the store: if the node dies between here
    // and the caller recording it as a holder, the epoch mismatch tells
    // the caller the stored bytes did not survive.
    if (epoch_at_store != nullptr) *epoch_at_store = node->epoch();
  });
}

bool SimulatedCluster::HolderStillValid(NodeId node,
                                        uint64_t epoch_at_store) const {
  return data_nodes_[node]->alive() &&
         data_nodes_[node]->epoch() == epoch_at_store;
}

std::shared_ptr<SimulatedCluster::Partition> SimulatedCluster::PartitionFor(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(partitions_mutex_);
  return partitions_[node];
}

bool SimulatedCluster::StoreReplicated(const model::Document& doc,
                                       size_t copies, ShipStats* stats) {
  std::vector<NodeId> replicas = PlaceReplicas(doc.id, copies);
  const uint64_t bytes = DocBytes(doc);
  // Only nodes that positively acknowledged the store become holders.
  // Trusting the submit-time ack recorded phantom replicas whenever a node
  // died (or dropped the task) between accept and apply.
  std::vector<std::pair<NodeId, uint64_t>> acked;  // node, epoch at store
  for (NodeId node : replicas) {
    if (!data_nodes_[node]->alive()) continue;
    ++stats->tasks;
    uint64_t epoch = 0;
    if (StoreOnNode(node, doc, &epoch) != TaskOutcome::kExecuted) continue;
    stats->bytes_shipped += bytes;
    stats->rows_shipped += 1;
    acked.emplace_back(node, epoch);
  }
  bool was_new = false;
  bool recorded = false;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    // Re-check each ack under the directory lock: a node that failed (and
    // possibly rejoined empty) since the store executed no longer has the
    // bytes, and recording it would plant a silent miss in the directory.
    std::vector<Holder> holders;
    for (const auto& [node, epoch] : acked) {
      if (HolderStillValid(node, epoch)) holders.push_back(Holder{node, epoch});
    }
    if (!holders.empty()) {
      was_new = directory_.find(doc.id) == directory_.end();
      DirEntry& entry = directory_[doc.id];
      entry.desired = static_cast<uint8_t>(copies);
      entry.holders = std::move(holders);
      InvalidateOwnershipLocked();
      recorded = true;
    }
  }
  if (recorded && was_new) AdjustPartitionDocCount(doc.id, 1);
  return recorded;
}

Result<model::DocId> SimulatedCluster::Ingest(model::Document doc,
                                              size_t copies) {
  if (copies == 0) copies = options_.replication;
  if (doc.id == model::kInvalidDocId) {
    doc.id = next_id_.fetch_add(1);
  } else {
    // Mirrored ingest under a caller-assigned id: keep our own id space
    // strictly ahead so annotation documents never collide with it.
    model::DocId expected = next_id_.load();
    while (expected <= doc.id &&
           !next_id_.compare_exchange_weak(expected, doc.id + 1)) {
    }
  }
  if (doc.version == 0) doc.version = 1;
  BumpPartitionTraffic(doc.id);
  ShipStats stats;
  const bool recorded = StoreReplicated(doc, copies, &stats);
  AccountTraffic(stats);
  if (!recorded) {
    return Status::IOError("no replica target acknowledged document");
  }
  return doc.id;
}

Result<model::Document> SimulatedCluster::Get(model::DocId id) const {
  BumpPartitionTraffic(id);  // point reads heat the partition like ingests
  std::vector<Holder> holders;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("no such document: " + std::to_string(id));
    }
    holders = it->second.holders;
  }
  for (const Holder& holder : holders) {
    if (!HolderStillValid(holder.node, holder.epoch)) continue;
    std::shared_ptr<Partition> partition = PartitionFor(holder.node);
    model::Document doc;
    bool found = false;
    const TaskOutcome outcome =
        data_nodes_[holder.node]->Run([partition, id, &doc, &found] {
          auto it = partition->docs.find(id);
          if (it != partition->docs.end()) {
            doc = it->second;
            found = true;
          }
        });
    if (outcome == TaskOutcome::kExecuted && found) return doc;
  }
  return Status::NotFound("all replicas unavailable: " + std::to_string(id));
}

size_t SimulatedCluster::num_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  return directory_.size();
}

std::shared_ptr<const SimulatedCluster::OwnershipSnapshot>
SimulatedCluster::OwnershipByNode(size_t* orphaned) const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  if (ownership_cache_ == nullptr) {
    auto snapshot = std::make_shared<OwnershipSnapshot>();
    size_t orphan_count = 0;
    for (const auto& [id, entry] : directory_) {
      bool owned = false;
      for (const Holder& holder : entry.holders) {
        if (HolderStillValid(holder.node, holder.epoch)) {
          snapshot->by_node[holder.node].insert(id);
          snapshot->epochs[holder.node] = holder.epoch;
          owned = true;
          break;  // first valid holder owns the doc for queries
        }
      }
      if (!owned) ++orphan_count;
    }
    ownership_cache_ = snapshot;
    orphaned_docs_ = orphan_count;
  }
  if (orphaned != nullptr) *orphaned = orphaned_docs_;
  return ownership_cache_;
}

std::vector<SimulatedCluster::PartitionAssignment>
SimulatedCluster::RerouteLost(const std::vector<PartitionAssignment>& lost,
                              ShipStats* stats) const {
  std::map<NodeId, std::set<model::DocId>> regrouped;
  std::map<NodeId, uint64_t> epochs;
  std::lock_guard<std::mutex> lock(directory_mutex_);
  for (const PartitionAssignment& assignment : lost) {
    bool rerouted_any = false;
    for (model::DocId id : *assignment.docs) {
      // DetectFailures just pruned dead and stale holders, so the first
      // valid holder is the failover target. A node that dropped the task
      // but stayed alive is its own valid retry target.
      NodeId target = 0;
      bool found = false;
      auto it = directory_.find(id);
      if (it != directory_.end()) {
        for (const Holder& holder : it->second.holders) {
          if (HolderStillValid(holder.node, holder.epoch)) {
            target = holder.node;
            epochs[holder.node] = holder.epoch;
            found = true;
            break;
          }
        }
      }
      if (found) {
        regrouped[target].insert(id);
        rerouted_any = true;
      } else {
        // No surviving replica anywhere: this document's contribution is
        // unrecoverable and must be reported, not silently omitted.
        ++stats->missing_partitions;
        stats->degraded = true;
      }
    }
    if (rerouted_any) ++stats->failovers;
  }
  std::vector<PartitionAssignment> next;
  next.reserve(regrouped.size());
  for (auto& [node, docs] : regrouped) {
    next.push_back(PartitionAssignment{
        node, epochs[node],
        std::make_shared<const std::set<model::DocId>>(std::move(docs))});
  }
  return next;
}

void SimulatedCluster::ScatterWithFailover(
    const std::function<std::function<void()>(
        NodeId node, std::shared_ptr<const std::set<model::DocId>> docs)>&
        make_task,
    ShipStats* stats) {
  obs::ScopedSpan scatter_span("cluster.scatter");
  size_t orphaned = 0;
  std::shared_ptr<const OwnershipSnapshot> snapshot = OwnershipByNode(&orphaned);
  if (orphaned > 0) {
    // Data already unreachable when the query started: a fully-dead
    // partition produces no failed task, so it must be counted up front.
    stats->missing_partitions += orphaned;
    stats->degraded = true;
  }

  std::vector<PartitionAssignment> round;
  round.reserve(snapshot->by_node.size());
  for (const auto& [node_id, owned] : snapshot->by_node) {
    // Aliasing: shares ownership of the snapshot, points at one node's set.
    round.push_back(PartitionAssignment{
        node_id, snapshot->epochs.at(node_id),
        std::shared_ptr<const std::set<model::DocId>>(snapshot, &owned)});
  }

  for (int attempt = 0; !round.empty() && attempt < kMaxScatterRounds;
       ++attempt) {
    struct Pending {
      PartitionAssignment assignment;
      std::future<TaskOutcome> outcome;
    };
    std::vector<Pending> pending;
    pending.reserve(round.size());
    const uint64_t round_start = NowMicros();
    // Stable timing/staleness slots; the deques must outlive the futures.
    std::deque<uint64_t> task_micros;
    std::deque<uint8_t> stale_flags;
    std::deque<std::vector<model::DocId>> strays;
    for (PartitionAssignment& assignment : round) {
      std::function<void()> fn = make_task(assignment.node, assignment.docs);
      task_micros.push_back(0);
      uint64_t* micros = &task_micros.back();
      stale_flags.push_back(0);
      uint8_t* stale = &stale_flags.back();
      strays.emplace_back();
      std::vector<model::DocId>* stray = &strays.back();
      std::shared_ptr<Partition> partition = PartitionFor(assignment.node);
      Node* node = data_nodes_[assignment.node].get();
      const uint64_t expected_epoch = assignment.epoch;
      std::future<TaskOutcome> outcome;
      node->Submit(
          // The trace rides into the node thread by value: per-node execute
          // spans record against the request that issued the scatter.
          [fn = std::move(fn), micros, stale, stray, node, expected_epoch,
           partition = std::move(partition), docs = assignment.docs,
           trace = obs::CurrentTrace()] {
            // The assignment was made against a specific incarnation of
            // this node's partition. If the node died and rejoined since,
            // running the task would scan the wrong (empty) partition and
            // manufacture a silently-partial result — flag it instead.
            if (node->epoch() != expected_epoch) {
              *stale = 1;
              return;
            }
            // Presence check, atomic with the work (both run on this
            // node's single mailbox thread, which also applies migration
            // deletes): any assigned document no longer physically here
            // was migrated away since the ownership snapshot — record it
            // so the coordinator re-routes it through the live directory
            // instead of serving a hole.
            for (model::DocId id : *docs) {
              if (partition->docs.find(id) == partition->docs.end()) {
                stray->push_back(id);
              }
            }
            const uint64_t start = NowMicros();
            fn();
            *micros = NowMicros() - start;
            if (trace != nullptr) {
              trace->RecordSpan(
                  "node." + std::to_string(node->id()) + ".execute", start,
                  *micros);
            }
          },
          &outcome);
      ++stats->tasks;
      pending.push_back(Pending{std::move(assignment), std::move(outcome)});
    }

    std::vector<PartitionAssignment> lost;
    size_t i = 0;
    for (Pending& p : pending) {
      // Wait on the outcome BEFORE reading the stale flag: the flag is
      // written by the task and published by the promise.
      const TaskOutcome outcome = p.outcome.get();
      const bool stale = stale_flags[i] != 0;
      if (outcome != TaskOutcome::kExecuted || stale) {
        lost.push_back(std::move(p.assignment));
      } else if (!strays[i].empty()) {
        // Executed, but some assigned documents had moved out from under
        // the snapshot: re-route exactly those through the directory.
        lost.push_back(PartitionAssignment{
            p.assignment.node, p.assignment.epoch,
            std::make_shared<const std::set<model::DocId>>(strays[i].begin(),
                                                           strays[i].end())});
      }
      ++i;
    }
    uint64_t slowest = 0;
    for (uint64_t micros : task_micros) slowest = std::max(slowest, micros);
    stats->critical_path_micros += slowest;
    if (attempt > 0) {
      // Failover rounds are where degraded latency comes from; make each
      // one visible as its own span.
      if (obs::TracePtr trace = obs::CurrentTrace()) {
        trace->RecordSpan("cluster.failover.round", round_start,
                          NowMicros() - round_start);
      }
    }

    if (lost.empty()) break;
    // Prune dead holders from the directory so re-routing sees survivors.
    DetectFailures();
    if (attempt + 1 == kMaxScatterRounds) {
      // Out of rounds: report the residual loss instead of dropping it.
      // Count documents, not assignments, so the number is comparable with
      // the per-document counts from RerouteLost and orphan detection.
      for (const PartitionAssignment& assignment : lost) {
        stats->missing_partitions += assignment.docs->size();
      }
      stats->degraded = true;
      break;
    }
    round = RerouteLost(lost, stats);
  }
}

std::vector<index::InvertedIndex::SearchResult> SimulatedCluster::KeywordSearch(
    const std::string& query, size_t k, ShipStats* stats) {
  ShipStats local_stats;

  // Scatter: each owning data node searches its partition; lost tasks fail
  // over to replica holders. Output slots live in a deque so every attempt
  // (including failover re-runs) gets fresh, stable storage.
  std::deque<std::vector<index::InvertedIndex::SearchResult>> partials;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        partials.emplace_back();
        auto* out = &partials.back();
        local_stats.bytes_shipped += query.size();  // query fan-out
        return std::function<void()>(
            [partition, owned = std::move(owned), out, &query, k] {
              auto hits = partition->inverted.Search(query, k + owned->size());
              std::vector<index::InvertedIndex::SearchResult> filtered;
              for (const auto& hit : hits) {
                if (owned->count(hit.doc)) filtered.push_back(hit);
                if (filtered.size() >= k) break;
              }
              *out = std::move(filtered);
            });
      },
      &local_stats);

  // Gather: merge partial top-k lists on a grid node.
  obs::ScopedSpan gather_span("cluster.gather");
  std::vector<index::InvertedIndex::SearchResult> merged;
  ++local_stats.tasks;
  const bool gathered = RunOnPool(grid_nodes_, &rr_grid_, [&] {
    const uint64_t start = NowMicros();
    for (const auto& partial : partials) {
      merged.insert(merged.end(), partial.begin(), partial.end());
      local_stats.rows_shipped += partial.size();
      local_stats.bytes_shipped += partial.size() * 16;  // (doc, score)
    }
    std::sort(merged.begin(), merged.end(),
              [](const index::InvertedIndex::SearchResult& a,
                 const index::InvertedIndex::SearchResult& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (merged.size() > k) merged.resize(k);
    local_stats.grid_task_micros = NowMicros() - start;
  });
  if (!gathered) {
    // No grid node executed the merge; an empty answer must say so.
    merged.clear();
    local_stats.degraded = true;
    ++local_stats.missing_partitions;
  }
  local_stats.critical_path_micros += local_stats.grid_task_micros;

  AccountTraffic(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

std::shared_ptr<const std::set<model::DocId>> SimulatedCluster::AvailableDocs(
    ShipStats* stats) {
  ShipStats local_stats;

  // Scatter: each owning data node verifies, against its live partition,
  // which of its assigned documents it can actually serve. Nodes lost
  // mid-scan fail over like any other scatter; documents the directory
  // mis-attributed (migrated mid-scan) are re-routed by the scatter's
  // generic stray-document detection, and anything still unreachable is
  // counted in the stats rather than silently narrowing the set.
  std::deque<std::set<model::DocId>> partials;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        partials.emplace_back();
        std::set<model::DocId>* out = &partials.back();
        local_stats.bytes_shipped += 8;  // scan-request fan-out
        return std::function<void()>(
            [partition, owned = std::move(owned), out] {
              for (model::DocId id : *owned) {
                if (partition->docs.count(id)) out->insert(id);
              }
            });
      },
      &local_stats);

  auto merged = std::make_shared<std::set<model::DocId>>();
  for (const std::set<model::DocId>& partial : partials) {
    merged->insert(partial.begin(), partial.end());
  }
  local_stats.rows_shipped += merged->size();
  local_stats.bytes_shipped += merged->size() * 8;  // doc-id list gather

  AccountTraffic(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

SimulatedCluster::AggResult SimulatedCluster::FilterAggregate(
    const AggQuery& query, bool pushdown) {
  AggResult result;

  struct Partial {
    // group -> (sum, count)
    std::map<std::string, std::pair<double, uint64_t>> groups;
    std::vector<model::Document> raw_docs;  // no-pushdown mode
    uint64_t raw_bytes = 0;
  };

  auto matches = [&query](const model::Document& doc) {
    if (!query.kind.empty() && doc.kind != query.kind) return false;
    if (query.filter_path.empty()) return true;
    const model::Value* value = model::ResolvePath(doc.root, query.filter_path);
    if (value == nullptr || value->is_null()) return false;
    if (query.op == exec::CompareOp::kContains) {
      return value->AsString().find(query.literal.AsString()) !=
             std::string::npos;
    }
    const int c = value->Compare(query.literal);
    switch (query.op) {
      case exec::CompareOp::kEq: return c == 0;
      case exec::CompareOp::kNe: return c != 0;
      case exec::CompareOp::kLt: return c < 0;
      case exec::CompareOp::kLe: return c <= 0;
      case exec::CompareOp::kGt: return c > 0;
      case exec::CompareOp::kGe: return c >= 0;
      default: return false;
    }
  };
  auto accumulate = [&query](const model::Document& doc, Partial* partial) {
    std::string group;
    if (!query.group_path.empty()) {
      const model::Value* value = model::ResolvePath(doc.root, query.group_path);
      group = value == nullptr ? "null" : value->AsString();
    }
    double measure = 1.0;
    if (!query.agg_path.empty()) {
      const model::Value* value = model::ResolvePath(doc.root, query.agg_path);
      measure = value == nullptr ? 0.0 : value->AsDouble();
    }
    auto& [sum, count] = partial->groups[group];
    sum += measure;
    count += 1;
  };

  std::deque<Partial> partials;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        partials.emplace_back();
        Partial* partial = &partials.back();
        return std::function<void()>([partition, owned = std::move(owned),
                                      partial, pushdown, &matches, &accumulate,
                                      &query] {
          for (const auto& [id, doc] : partition->docs) {
            if (!owned->count(id)) continue;
            if (pushdown) {
              // Predicate and partial aggregation at the storage node.
              if (matches(doc)) accumulate(doc, partial);
            } else {
              // Ship every document of the kind (the raw scan): the grid
              // node does all filtering and aggregation.
              if (query.kind.empty() || doc.kind == query.kind) {
                partial->raw_docs.push_back(doc);
                partial->raw_bytes += DocBytes(doc);
              }
            }
          }
        });
      },
      &result.stats);

  // Gather on a grid node.
  obs::ScopedSpan gather_span("cluster.gather");
  ++result.stats.tasks;
  const bool gathered = RunOnPool(grid_nodes_, &rr_grid_, [&] {
    const uint64_t gather_start = NowMicros();
    for (Partial& partial : partials) {
      if (pushdown) {
        // Partial states ship: ~(group string + 16 bytes) per group.
        for (const auto& [group, state] : partial.groups) {
          result.stats.bytes_shipped += group.size() + 16;
          ++result.stats.rows_shipped;
          if (query.agg_path.empty()) {
            result.groups[group] += static_cast<double>(state.second);
          } else {
            result.groups[group] += state.first;
          }
        }
      } else {
        result.stats.bytes_shipped += partial.raw_bytes;
        result.stats.rows_shipped += partial.raw_docs.size();
        for (const model::Document& doc : partial.raw_docs) {
          if (matches(doc)) {
            Partial merged;
            accumulate(doc, &merged);
            for (const auto& [group, state] : merged.groups) {
              if (query.agg_path.empty()) {
                result.groups[group] += static_cast<double>(state.second);
              } else {
                result.groups[group] += state.first;
              }
            }
          }
        }
      }
    }
    result.stats.grid_task_micros = NowMicros() - gather_start;
  });
  if (!gathered) {
    result.groups.clear();
    result.stats.degraded = true;
    ++result.stats.missing_partitions;
  }
  result.stats.critical_path_micros += result.stats.grid_task_micros;
  AccountTraffic(result.stats);
  return result;
}

size_t SimulatedCluster::RunAnnotationPass(const discovery::Annotator& annotator,
                                           const std::string& kind,
                                           ShipStats* stats) {
  ShipStats local_stats;

  // Phase 1 (data nodes): intra-document analysis over owned documents.
  std::deque<std::vector<model::Document>> produced;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        produced.emplace_back();
        std::vector<model::Document>* out = &produced.back();
        return std::function<void()>(
            [partition, owned = std::move(owned), out, &annotator, &kind] {
              for (const auto& [id, doc] : partition->docs) {
                if (!owned->count(id)) continue;
                if (!kind.empty() && doc.kind != kind) continue;
                if (doc.doc_class != model::DocClass::kBase) continue;
                if (!annotator.InterestedIn(doc)) continue;
                auto spans = annotator.Annotate(doc);
                if (spans.empty()) continue;
                out->push_back(discovery::MakeAnnotationDocument(
                    doc, annotator.name(), spans));
              }
            });
      },
      &local_stats);

  // Phase 3 (cluster node): assign ids, lock base documents, persist.
  std::vector<model::Document> to_store;
  ++local_stats.tasks;
  const bool coordinated = RunOnPool(cluster_nodes_, &rr_cluster_, [&] {
    for (std::vector<model::Document>& batch : produced) {
      for (model::Document& annotation : batch) {
        local_stats.bytes_shipped += DocBytes(annotation);
        ++local_stats.rows_shipped;
        // Consistent persist: lock every referenced base document.
        for (const model::DocRef& ref : annotation.refs) {
          (void)ref;
          lock_acquisitions_.fetch_add(1);
        }
        annotation.id = next_id_.fetch_add(1);
        to_store.push_back(std::move(annotation));
      }
    }
  });
  if (!coordinated) {
    // No coordinator: nothing was committed this pass.
    local_stats.degraded = true;
    ++local_stats.missing_partitions;
  }

  // Route the committed annotation documents onto data nodes through the
  // same placement path as Ingest — they respect liveness and the dynamic
  // partition table like any other document, and only holders that
  // acknowledged the store are recorded.
  size_t created = 0;
  for (const model::Document& annotation : to_store) {
    BumpPartitionTraffic(annotation.id);
    if (StoreReplicated(annotation, options_.replication, &local_stats)) {
      ++created;
    } else {
      // The annotation was committed by the coordinator but no data node
      // accepted it: the pass's output is incomplete.
      local_stats.degraded = true;
      ++local_stats.missing_partitions;
    }
  }
  AccountTraffic(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return created;
}


SimulatedCluster::AutoAggResult SimulatedCluster::FilterAggregateAuto(
    const AggQuery& query) {
  Scheduler::LoadSnapshot load;
  size_t alive_data = 0;
  for (const auto& node : data_nodes_) {
    if (!node->alive()) continue;
    load.data_queue_depth += static_cast<double>(node->queue_depth());
    ++alive_data;
  }
  if (alive_data > 0) load.data_queue_depth /= alive_data;
  size_t alive_grid = 0;
  for (const auto& node : grid_nodes_) {
    if (!node->alive()) continue;
    load.grid_queue_depth += static_cast<double>(node->queue_depth());
    ++alive_grid;
  }
  if (alive_grid > 0) load.grid_queue_depth /= alive_grid;

  AutoAggResult out;
  out.decision =
      scheduler_.Place(Scheduler::OperatorClass::kScanFilter, load);
  out.result = FilterAggregate(query, out.decision.pushdown);
  return out;
}

SimulatedCluster::PipelineResult SimulatedCluster::SearchJoinUpdate(
    const PipelineQuery& query) {
  PipelineResult result;

  // ---- Stage 1 (data nodes): full-text search; ship reduced triples
  // (doc id, score, value at left_ref_path).
  struct Hit {
    model::DocId doc;
    double score;
    std::string ref_value;
  };
  std::deque<std::vector<Hit>> partial_hits;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        partial_hits.emplace_back();
        std::vector<Hit>* out = &partial_hits.back();
        return std::function<void()>(
            [partition, owned = std::move(owned), out, &query] {
              auto hits = partition->inverted.Search(
                  query.keywords, query.k + owned->size());
              for (const auto& hit : hits) {
                if (!owned->count(hit.doc)) continue;
                auto doc_it = partition->docs.find(hit.doc);
                if (doc_it == partition->docs.end()) continue;
                const model::Value* ref = model::ResolvePath(
                    doc_it->second.root, query.left_ref_path);
                if (ref == nullptr || ref->is_null()) continue;
                out->push_back(Hit{hit.doc, hit.score, ref->AsString()});
                if (out->size() >= query.k) break;
              }
            });
      },
      &result.stats);

  // Dimension side, also reduced at the data nodes: (key value, doc id).
  std::deque<std::vector<std::pair<std::string, model::DocId>>> partial_dims;
  ScatterWithFailover(
      [&](NodeId node_id,
          std::shared_ptr<const std::set<model::DocId>> owned) {
        std::shared_ptr<Partition> partition = PartitionFor(node_id);
        partial_dims.emplace_back();
        auto* out = &partial_dims.back();
        return std::function<void()>(
            [partition, owned = std::move(owned), out, &query] {
              for (const auto& [id, doc] : partition->docs) {
                if (!owned->count(id) || doc.kind != query.dim_kind) {
                  continue;
                }
                const model::Value* key =
                    model::ResolvePath(doc.root, query.dim_key_path);
                if (key == nullptr || key->is_null()) continue;
                out->emplace_back(key->AsString(), id);
              }
            });
      },
      &result.stats);

  // ---- Stage 2 (grid node): hash join + sort by score, keep top-k.
  ++result.stats.tasks;
  const bool joined = RunOnPool(grid_nodes_, &rr_grid_, [&] {
    const uint64_t start = NowMicros();
    std::map<std::string, model::DocId> dim_by_key;
    for (const auto& partial : partial_dims) {
      for (const auto& [key, id] : partial) {
        result.stats.bytes_shipped += key.size() + 8;
        ++result.stats.rows_shipped;
        dim_by_key.emplace(key, id);
      }
    }
    for (const auto& partial : partial_hits) {
      for (const Hit& hit : partial) {
        result.stats.bytes_shipped += hit.ref_value.size() + 16;
        ++result.stats.rows_shipped;
        auto match = dim_by_key.find(hit.ref_value);
        if (match == dim_by_key.end()) continue;
        result.matches.push_back(
            PipelineMatch{hit.doc, hit.score, match->second});
      }
    }
    std::sort(result.matches.begin(), result.matches.end(),
              [](const PipelineMatch& a, const PipelineMatch& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (result.matches.size() > query.k) result.matches.resize(query.k);
    result.stats.grid_task_micros = NowMicros() - start;
  });
  if (!joined) {
    result.matches.clear();
    result.stats.degraded = true;
    ++result.stats.missing_partitions;
  }
  result.stats.critical_path_micros += result.stats.grid_task_micros;

  // ---- Stage 3 (cluster node): consistent updates — tag every matched
  // document under per-document locks, then apply on the holders.
  std::vector<model::DocId> to_update;
  ++result.stats.tasks;
  const bool coordinated = RunOnPool(cluster_nodes_, &rr_cluster_, [&] {
    const uint64_t start = NowMicros();
    for (const PipelineMatch& match : result.matches) {
      lock_acquisitions_.fetch_add(1);
      to_update.push_back(match.doc);
    }
    result.stats.critical_path_micros += NowMicros() - start;
  });
  if (!coordinated) {
    result.stats.degraded = true;
    ++result.stats.missing_partitions;
  }
  for (model::DocId id : to_update) {
    std::vector<Holder> holders;
    {
      std::lock_guard<std::mutex> lock(directory_mutex_);
      auto it = directory_.find(id);
      if (it == directory_.end()) continue;
      holders = it->second.holders;
    }
    bool updated = false;
    for (const Holder& holder : holders) {
      if (!HolderStillValid(holder.node, holder.epoch)) continue;
      const NodeId node_id = holder.node;
      std::shared_ptr<Partition> partition = PartitionFor(node_id);
      const std::string& tag = query.tag_name;
      bool applied = false;
      const TaskOutcome outcome =
          data_nodes_[node_id]->Run([partition, id, &tag, &applied] {
            auto it = partition->docs.find(id);
            if (it == partition->docs.end()) return;
            model::Document updated_doc = it->second;
            updated_doc.version += 1;
            updated_doc.root.AddChild(tag, model::Value::Bool(true));
            partition->inverted.RemoveDocument(id);
            partition->inverted.AddDocument(id, updated_doc.Text());
            it->second = std::move(updated_doc);
            applied = true;
          });
      if (outcome == TaskOutcome::kExecuted && applied) updated = true;
      result.stats.bytes_shipped += query.tag_name.size() + 16;
    }
    if (updated) ++result.updates_applied;
  }
  AccountTraffic(result.stats);
  return result;
}

void SimulatedCluster::FailNode(NodeId id) {
  IMPLIANCE_CHECK(id < data_nodes_.size()) << "only data nodes can be failed";
  data_nodes_[id]->Fail();
}

void SimulatedCluster::RecoverNode(NodeId id) {
  IMPLIANCE_CHECK(id < data_nodes_.size());
  {
    // Rejoins empty: its previous contents were lost with the failure.
    // Swap under the slot mutex — readers copy this shared_ptr
    // concurrently, and an unsynchronized swap races with them.
    std::lock_guard<std::mutex> lock(partitions_mutex_);
    partitions_[id] = std::make_shared<Partition>();
  }
  data_nodes_[id]->Recover();
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    known_dead_.erase(id);
    InvalidateOwnershipLocked();
  }
}

std::vector<NodeId> SimulatedCluster::DetectFailures() {
  std::vector<NodeId> newly_dead;
  std::lock_guard<std::mutex> lock(directory_mutex_);
  for (const auto& node : data_nodes_) {
    if (!node->alive() && !known_dead_.count(node->id())) {
      newly_dead.push_back(node->id());
      known_dead_.insert(node->id());
    }
  }
  // Drop dead and stale holders from the directory so ownership fails
  // over. Stale = the node came back in a newer incarnation (rejoined
  // empty), so its old copies are gone even though it is alive.
  bool pruned = false;
  for (auto& [id, entry] : directory_) {
    const size_t before = entry.holders.size();
    entry.holders.erase(
        std::remove_if(entry.holders.begin(), entry.holders.end(),
                       [this](const Holder& holder) {
                         return !HolderStillValid(holder.node, holder.epoch);
                       }),
        entry.holders.end());
    pruned |= entry.holders.size() != before;
  }
  if (pruned || !newly_dead.empty()) InvalidateOwnershipLocked();
  return newly_dead;
}

SimulatedCluster::ReReplicateReport SimulatedCluster::ReReplicate() {
  ReReplicateReport report;
  // Snapshot the under-replicated ids; everything else about this pass is
  // decided against the live directory. The pre-pass holder/copy-count
  // snapshot used to drive the whole loop, which had two failure modes: a
  // source holder dying mid-pass left the doc under-replicated while the
  // stale `alive_copies` claimed completion, and a concurrent pass pushing
  // the same node into `holders` between our snapshot and our push
  // recorded one node twice for one document.
  std::vector<model::DocId> todo;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    for (const auto& [id, entry] : directory_) {
      size_t valid = 0;
      for (const Holder& holder : entry.holders) {
        if (HolderStillValid(holder.node, holder.epoch)) ++valid;
      }
      if (valid > 0 && valid < entry.desired) todo.push_back(id);
    }
  }
  for (model::DocId id : todo) {
    Result<model::Document> doc = Get(id);
    if (!doc.ok()) {
      ++report.docs_unrestored;
      continue;
    }
    // Candidate targets: the partition table's preferred replicas first,
    // then the rest of the ring (PlaceReplicas with the full node count).
    const std::vector<NodeId> candidates =
        PlaceReplicas(id, data_nodes_.size());
    for (NodeId candidate : candidates) {
      {
        // Early-stop re-validated against the LIVE directory: a source
        // holder that died since the snapshot no longer counts.
        std::lock_guard<std::mutex> lock(directory_mutex_);
        auto it = directory_.find(id);
        if (it == directory_.end()) break;
        size_t valid = 0;
        bool candidate_holds = false;
        for (const Holder& holder : it->second.holders) {
          if (!HolderStillValid(holder.node, holder.epoch)) continue;
          ++valid;
          if (holder.node == candidate) candidate_holds = true;
        }
        if (valid >= it->second.desired) break;
        if (candidate_holds) continue;
      }
      if (!data_nodes_[candidate]->alive()) continue;
      // A copy counts only once the target acknowledged it — and only if
      // the target has not died (losing the copy) since the store ran.
      uint64_t epoch = 0;
      if (StoreOnNode(candidate, *doc, &epoch) != TaskOutcome::kExecuted) {
        continue;
      }
      report.bytes_copied += DocBytes(*doc);
      {
        std::lock_guard<std::mutex> lock(directory_mutex_);
        if (!HolderStillValid(candidate, epoch)) continue;
        auto it = directory_.find(id);
        if (it == directory_.end()) break;
        // Dedup by node UNDER the directory mutex: a concurrent pass (or a
        // stale entry from the candidate's previous incarnation) may
        // already list this node — refresh it in place, never push a
        // second entry for the same node.
        bool present = false;
        for (Holder& holder : it->second.holders) {
          if (holder.node == candidate) {
            holder.epoch = epoch;
            present = true;
            break;
          }
        }
        if (!present) it->second.holders.push_back(Holder{candidate, epoch});
        InvalidateOwnershipLocked();
      }
    }
    // Final verdict from the live directory, not the pass's bookkeeping.
    {
      std::lock_guard<std::mutex> lock(directory_mutex_);
      auto it = directory_.find(id);
      size_t valid = 0;
      size_t desired = 0;
      if (it != directory_.end()) {
        desired = it->second.desired;
        for (const Holder& holder : it->second.holders) {
          if (HolderStillValid(holder.node, holder.epoch)) ++valid;
        }
      }
      if (valid < desired) ++report.docs_unrestored;
    }
  }
  {
    std::lock_guard<std::mutex> lock(traffic_mutex_);
    lifetime_traffic_.bytes_shipped += report.bytes_copied;
  }
  return report;
}

size_t SimulatedCluster::num_available_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  size_t available = 0;
  for (const auto& [id, entry] : directory_) {
    for (const Holder& holder : entry.holders) {
      if (HolderStillValid(holder.node, holder.epoch)) {
        ++available;
        break;
      }
    }
  }
  return available;
}

size_t SimulatedCluster::num_fully_replicated_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  size_t full = 0;
  for (const auto& [id, entry] : directory_) {
    size_t valid = 0;
    for (const Holder& holder : entry.holders) {
      if (HolderStillValid(holder.node, holder.epoch)) ++valid;
    }
    if (valid >= entry.desired) ++full;
  }
  return full;
}

// ----------------------------------------- Dynamic partition management

std::vector<SimulatedCluster::PartitionDesc> SimulatedCluster::PartitionTable()
    const {
  std::vector<PartitionDesc> table;
  std::lock_guard<std::mutex> lock(ptable_mutex_);
  table.reserve(ptable_.size());
  for (auto it = ptable_.begin(); it != ptable_.end(); ++it) {
    auto next = std::next(it);
    PartitionDesc desc;
    desc.pid = it->second.pid;
    desc.lo = it->first;
    desc.hi = next == ptable_.end() ? UINT64_MAX : next->first;
    desc.epoch = it->second.epoch;
    desc.replicas = it->second.replicas;
    desc.doc_count = it->second.doc_count;
    desc.traffic = it->second.traffic;
    table.push_back(std::move(desc));
  }
  return table;
}

bool SimulatedCluster::SplitPartition(PartitionId pid) {
  // Phase 1: snapshot the tablet's range. Not nested inside the directory
  // scan — lock order is ptable before directory, and holding both across
  // the scan would serialize ingest against splits for no benefit.
  uint64_t lo = 0;
  uint64_t hi_excl = 0;
  bool is_last = false;
  uint64_t epoch = 0;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    for (auto it = ptable_.begin(); it != ptable_.end(); ++it) {
      if (it->second.pid != pid) continue;
      auto next = std::next(it);
      lo = it->first;
      is_last = next == ptable_.end();
      hi_excl = is_last ? 0 : next->first;
      epoch = it->second.epoch;
      found = true;
      break;
    }
  }
  if (!found) return false;
  // Phase 2: collect the routed keys currently in the range. The split
  // point is the MEDIAN key, not the range midpoint — under sequential-key
  // skew every document sits in a sliver of the range and midpoint splits
  // would never separate them.
  std::vector<uint64_t> keys;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    for (const auto& [id, entry] : directory_) {
      const uint64_t key = RouteKey(id);
      if (key >= lo && (is_last || key < hi_excl)) keys.push_back(key);
    }
  }
  if (keys.size() < 2) return false;
  std::nth_element(keys.begin(), keys.begin() + keys.size() / 2, keys.end());
  uint64_t split = keys[keys.size() / 2];
  if (split <= lo) {
    // Median collapsed onto the lower bound (duplicate-heavy keys): use
    // the smallest key strictly above lo, if any distinct key exists.
    uint64_t best = 0;
    bool have = false;
    for (uint64_t key : keys) {
      if (key > lo && (!have || key < best)) {
        best = key;
        have = true;
      }
    }
    if (!have) return false;
    split = best;
  }
  size_t left_count = 0;
  for (uint64_t key : keys) {
    if (key < split) ++left_count;
  }
  // Phase 3: commit, re-validating that the tablet survived unchanged
  // (same pid and epoch at the same bound) while the locks were down.
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    auto it = ptable_.find(lo);
    if (it == ptable_.end() || it->second.pid != pid ||
        it->second.epoch != epoch) {
      return false;
    }
    if (ptable_.count(split)) return false;
    // Both children inherit the parent's replica targets (metadata-only
    // split; the balancer migrates a child later if load warrants) and
    // fresh ids — the parent id is retired so any concurrently-taken
    // balancer decision against the old tablet aborts.
    PartitionState right;
    right.pid = next_pid_++;
    right.replicas = it->second.replicas;
    right.doc_count = keys.size() - left_count;
    right.traffic = it->second.traffic / 2;
    it->second.pid = next_pid_++;
    it->second.epoch += 1;
    it->second.doc_count = left_count;
    it->second.traffic -= right.traffic;
    ptable_.emplace(split, std::move(right));
  }
  Metrics().splits->Increment();
  return true;
}

bool SimulatedCluster::MergeWithRightNeighbor(PartitionId pid) {
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    for (auto it = ptable_.begin(); it != ptable_.end(); ++it) {
      if (it->second.pid != pid) continue;
      auto right = std::next(it);
      if (right == ptable_.end()) return false;
      // Metadata-only: the survivor keeps the left tablet's id and replica
      // targets. Existing documents stay where the directory says they
      // are; new ingest routes to the survivor's targets and migration
      // converges the rest.
      it->second.doc_count += right->second.doc_count;
      it->second.traffic += right->second.traffic;
      it->second.epoch += 1;
      ptable_.erase(right);
      Metrics().merges->Increment();
      return true;
    }
  }
  return false;
}

size_t SimulatedCluster::MovePartitionReplica(PartitionId pid, NodeId from,
                                              NodeId to) {
  if (from == to || from >= data_nodes_.size() || to >= data_nodes_.size()) {
    return 0;
  }
  if (!data_nodes_[to]->alive()) return 0;
  // One migration at a time: a move runs blocking tasks on two node
  // mailboxes, and two concurrent opposite-direction moves could deadlock
  // each other's worker threads.
  std::lock_guard<std::mutex> move_lock(move_mutex_);
  uint64_t lo = 0;
  uint64_t hi_excl = 0;
  bool is_last = false;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    for (auto it = ptable_.begin(); it != ptable_.end(); ++it) {
      if (it->second.pid != pid) continue;
      auto next = std::next(it);
      lo = it->first;
      is_last = next == ptable_.end();
      hi_excl = is_last ? 0 : next->first;
      found = true;
      break;
    }
  }
  if (!found) return 0;
  // Documents in the range with a live copy on `from` and none on `to`
  // (moving a doc the target already replicates would either drop a
  // distinct copy or plant a duplicate-holder entry).
  std::vector<model::DocId> ids;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    for (const auto& [id, entry] : directory_) {
      const uint64_t key = RouteKey(id);
      if (key < lo || (!is_last && key >= hi_excl)) continue;
      bool on_from = false;
      bool on_to = false;
      for (const Holder& holder : entry.holders) {
        if (!HolderStillValid(holder.node, holder.epoch)) continue;
        if (holder.node == from) on_from = true;
        if (holder.node == to) on_to = true;
      }
      if (on_from && !on_to) ids.push_back(id);
    }
  }
  struct Moved {
    model::DocId id;
    uint64_t version;  // version we copied; deletion is checked against it
  };
  std::vector<Moved> moved;
  uint64_t bytes = 0;
  for (model::DocId id : ids) {
    Result<model::Document> doc = Get(id);
    if (!doc.ok()) continue;
    uint64_t epoch_to = 0;
    if (StoreOnNode(to, *doc, &epoch_to) != TaskOutcome::kExecuted) continue;
    bool committed = false;
    {
      // Directory swap under the mutex with PR 3's epoch validity checks:
      // a target that died between copy and commit is not recorded, and a
      // holder entry for `to` that appeared concurrently (ReReplicate)
      // means the swap would mint a duplicate — skip the doc instead.
      std::lock_guard<std::mutex> lock(directory_mutex_);
      if (HolderStillValid(to, epoch_to)) {
        auto it = directory_.find(id);
        if (it != directory_.end()) {
          bool to_already_listed = false;
          for (const Holder& holder : it->second.holders) {
            if (holder.node == to &&
                HolderStillValid(holder.node, holder.epoch)) {
              to_already_listed = true;
              break;
            }
          }
          if (!to_already_listed) {
            for (Holder& holder : it->second.holders) {
              if (holder.node == from) {
                // Swap in place: the new home inherits the slot (and with
                // it primary-ness) of the old one.
                holder.node = to;
                holder.epoch = epoch_to;
                committed = true;
                break;
              }
            }
          }
        }
        if (committed) InvalidateOwnershipLocked();
      }
    }
    // Uncommitted copies are harmless: the directory never references
    // them, so no query routes there, and the source keeps serving.
    if (!committed) continue;
    moved.push_back(Moved{id, doc->version});
    bytes += DocBytes(*doc);
  }
  if (!moved.empty()) {
    // Delete the source bytes on the source node's own mailbox thread —
    // serialized with every scatter task against that node, so an
    // in-flight query either ran before (bytes still there) or after (the
    // stray-document check re-routes through the directory, which already
    // points at the new home). Version-checked: a concurrent update that
    // landed on the source after our copy is carried to the new home
    // below, never silently lost.
    std::shared_ptr<Partition> partition = PartitionFor(from);
    auto dirty = std::make_shared<std::vector<model::Document>>();
    const std::vector<Moved> batch = moved;
    data_nodes_[from]->Run([partition, batch, dirty] {
      for (const Moved& m : batch) {
        auto it = partition->docs.find(m.id);
        if (it == partition->docs.end()) continue;
        if (it->second.version != m.version) dirty->push_back(it->second);
        partition->inverted.RemoveDocument(m.id);
        partition->docs.erase(it);
      }
    });
    for (const model::Document& newer : *dirty) {
      uint64_t epoch_to = 0;
      if (StoreOnNode(to, newer, &epoch_to) != TaskOutcome::kExecuted) {
        continue;
      }
      bytes += DocBytes(newer);
      std::lock_guard<std::mutex> lock(directory_mutex_);
      auto it = directory_.find(newer.id);
      if (it == directory_.end()) continue;
      for (Holder& holder : it->second.holders) {
        if (holder.node == to) {
          holder.epoch = epoch_to;
          break;
        }
      }
      InvalidateOwnershipLocked();
    }
  }
  // Re-point the tablet's preferred targets so future ingest routes to
  // the new home, and bump the partition epoch.
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    for (auto& [bound, state] : ptable_) {
      if (state.pid != pid) continue;
      const bool has_to = std::find(state.replicas.begin(),
                                    state.replicas.end(),
                                    to) != state.replicas.end();
      auto from_it =
          std::find(state.replicas.begin(), state.replicas.end(), from);
      if (from_it != state.replicas.end()) {
        if (has_to) {
          state.replicas.erase(from_it);
        } else {
          *from_it = to;
        }
      }
      state.epoch += 1;
      break;
    }
  }
  if (!moved.empty()) {
    Metrics().moves->Increment();
    Metrics().docs_moved->Increment(moved.size());
    std::lock_guard<std::mutex> lock(traffic_mutex_);
    lifetime_traffic_.bytes_shipped += bytes;
  }
  return moved.size();
}

SimulatedCluster::RebalanceReport SimulatedCluster::RebalanceOnce() {
  obs::ScopedSpan span("cluster.balancer.pass");
  RebalanceReport report;
  // ---- Split hot tablets (size or traffic over threshold).
  if (options_.split_doc_threshold > 0 ||
      options_.split_traffic_threshold > 0) {
    for (const PartitionDesc& desc : PartitionTable()) {
      const bool size_hot = options_.split_doc_threshold > 0 &&
                            desc.doc_count >= options_.split_doc_threshold;
      const bool traffic_hot =
          options_.split_traffic_threshold > 0 &&
          desc.traffic >= options_.split_traffic_threshold;
      if ((size_hot || traffic_hot) && SplitPartition(desc.pid)) {
        ++report.splits;
      }
    }
  }
  // ---- Merge cold neighbors.
  if (options_.merge_doc_threshold > 0) {
    const std::vector<PartitionDesc> table = PartitionTable();
    for (size_t i = 0; i + 1 < table.size(); ++i) {
      if (table[i].doc_count + table[i + 1].doc_count <=
          options_.merge_doc_threshold) {
        if (MergeWithRightNeighbor(table[i].pid)) {
          ++report.merges;
          ++i;  // the right neighbor is gone; its row is stale
        }
      }
    }
  }
  // ---- Migrate load off hot nodes: policy in Scheduler::PickMove, best-
  // fit tablet choice here (the swap_defragmentator idea — prefer the
  // largest migration that does not overshoot the hot node's excess).
  for (size_t step = 0; step < options_.max_moves_per_pass; ++step) {
    std::shared_ptr<const OwnershipSnapshot> snapshot = OwnershipByNode();
    const std::vector<PartitionDesc> table = PartitionTable();
    if (table.empty()) break;
    std::vector<uint64_t> bounds;
    bounds.reserve(table.size());
    for (const PartitionDesc& desc : table) bounds.push_back(desc.lo);
    std::vector<Scheduler::NodeLoad> loads;
    std::map<NodeId, size_t> load_index;
    for (const auto& node : data_nodes_) {
      if (!node->alive()) continue;
      load_index[node->id()] = loads.size();
      loads.push_back(Scheduler::NodeLoad{node->id(), 0});
    }
    // Owned docs per (tablet, node): the measured load picture.
    std::map<std::pair<size_t, NodeId>, size_t> owned_by;
    for (const auto& [node, docs] : snapshot->by_node) {
      auto li = load_index.find(node);
      if (li == load_index.end()) continue;
      loads[li->second].owned_docs += docs.size();
      for (model::DocId id : docs) {
        const uint64_t key = RouteKey(id);
        const size_t slot =
            std::upper_bound(bounds.begin(), bounds.end(), key) -
            bounds.begin() - 1;
        ++owned_by[{slot, node}];
      }
    }
    const Scheduler::MoveChoice choice =
        scheduler_.PickMove(loads, options_.balance_tolerance);
    if (!choice.move) break;
    // Best-fit: largest tablet share on the hot node that fits within the
    // excess; if none fits, the smallest share overall (minimal overshoot).
    size_t best_slot = table.size();
    size_t best_count = 0;
    bool best_within = false;
    for (const auto& [slot_node, count] : owned_by) {
      if (slot_node.second != choice.hot || count == 0) continue;
      const bool within = count <= choice.excess;
      const bool better =
          best_slot == table.size() ||
          (within && (!best_within || count > best_count)) ||
          (!within && !best_within && count < best_count);
      if (better) {
        best_slot = slot_node.first;
        best_count = count;
        best_within = within;
      }
    }
    if (best_slot == table.size()) break;
    const size_t docs_moved =
        MovePartitionReplica(table[best_slot].pid, choice.hot, choice.cold);
    if (docs_moved == 0) break;  // could not act; do not spin this pass
    ++report.moves;
    report.docs_moved += docs_moved;
  }
  // ---- Decay traffic counters so the signal tracks recent load.
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    for (auto& [bound, state] : ptable_) state.traffic /= 2;
  }
  balancer_passes_.fetch_add(1);
  Metrics().balancer_passes->Increment();
  return report;
}

void SimulatedCluster::StartBalancer(uint64_t interval_ms) {
  std::lock_guard<std::mutex> lock(balancer_mutex_);
  if (balancer_thread_.joinable()) return;  // already running
  balancer_stop_ = false;
  balancer_running_.store(true);
  balancer_thread_ =
      std::thread([this, interval_ms] { BalancerLoop(interval_ms); });
}

void SimulatedCluster::StopBalancer() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(balancer_mutex_);
    if (!balancer_thread_.joinable()) return;
    balancer_stop_ = true;
    worker = std::move(balancer_thread_);
  }
  balancer_cv_.notify_all();
  worker.join();
  balancer_running_.store(false);
}

bool SimulatedCluster::balancer_running() const {
  return balancer_running_.load();
}

void SimulatedCluster::BalancerLoop(uint64_t interval_ms) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(balancer_mutex_);
      balancer_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                            [this] { return balancer_stop_; });
      if (balancer_stop_) return;
    }
    RebalanceOnce();
  }
}

SimulatedCluster::IntegrityReport SimulatedCluster::CheckIntegrity() const {
  IntegrityReport report;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    for (const auto& [id, entry] : directory_) {
      std::set<NodeId> seen;
      for (const Holder& holder : entry.holders) {
        if (!seen.insert(holder.node).second) {
          ++report.duplicate_holders;
          break;
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(ptable_mutex_);
    if (ptable_.empty() || ptable_.begin()->first != 0) {
      ++report.table_coverage_violations;
    }
    std::set<PartitionId> pids;
    for (const auto& [bound, state] : ptable_) {
      if (!pids.insert(state.pid).second) ++report.duplicate_partition_ids;
      if (state.replicas.empty()) ++report.empty_replica_sets;
      std::set<NodeId> targets;
      for (NodeId node : state.replicas) {
        if (node >= data_nodes_.size() || !targets.insert(node).second) {
          ++report.invalid_replica_targets;
        }
      }
    }
  }
  return report;
}

double SimulatedCluster::OwnershipSpread() const {
  const std::map<NodeId, size_t> counts = OwnedCounts();
  size_t alive = 0;
  size_t total = 0;
  size_t max_owned = 0;
  for (const auto& node : data_nodes_) {
    if (!node->alive()) continue;
    ++alive;
    auto it = counts.find(node->id());
    const size_t owned = it == counts.end() ? 0 : it->second;
    total += owned;
    max_owned = std::max(max_owned, owned);
  }
  if (alive == 0 || total == 0) return 1.0;
  const double mean = static_cast<double>(total) / alive;
  return static_cast<double>(max_owned) / mean;
}

std::map<NodeId, size_t> SimulatedCluster::OwnedCounts() const {
  std::map<NodeId, size_t> counts;
  for (const auto& [node, owned] : OwnershipByNode()->by_node) {
    counts[node] = owned.size();
  }
  return counts;
}

size_t SimulatedCluster::num_data_nodes_alive() const {
  size_t alive = 0;
  for (const auto& node : data_nodes_) {
    if (node->alive()) ++alive;
  }
  return alive;
}

}  // namespace impliance::cluster
