#include "cluster/cluster.h"

#include <algorithm>

#include "common/clock.h"
#include "common/hash.h"
#include "common/logging.h"
#include "model/item.h"

namespace impliance::cluster {

SimulatedCluster::SimulatedCluster(const Options& options) : options_(options) {
  IMPLIANCE_CHECK(options.num_data_nodes > 0);
  IMPLIANCE_CHECK(options.num_grid_nodes > 0);
  IMPLIANCE_CHECK(options.num_cluster_nodes > 0);
  IMPLIANCE_CHECK(options.replication >= 1 &&
                  options.replication <= options.num_data_nodes);
  NodeId next = 0;
  for (size_t i = 0; i < options.num_data_nodes; ++i) {
    data_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kData));
    partitions_.push_back(std::make_unique<Partition>());
  }
  for (size_t i = 0; i < options.num_grid_nodes; ++i) {
    grid_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kGrid));
  }
  for (size_t i = 0; i < options.num_cluster_nodes; ++i) {
    cluster_nodes_.push_back(std::make_unique<Node>(next++, NodeKind::kCluster));
  }
}

SimulatedCluster::~SimulatedCluster() = default;

uint64_t SimulatedCluster::DocBytes(const model::Document& doc) {
  std::string encoded;
  doc.Encode(&encoded);
  return encoded.size();
}

void SimulatedCluster::AccountTraffic(const ShipStats& stats) {
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  lifetime_traffic_.bytes_shipped += stats.bytes_shipped;
  lifetime_traffic_.rows_shipped += stats.rows_shipped;
  lifetime_traffic_.tasks += stats.tasks;
}

ShipStats SimulatedCluster::lifetime_traffic() const {
  std::lock_guard<std::mutex> lock(traffic_mutex_);
  return lifetime_traffic_;
}

Node* SimulatedCluster::PickGridNode() {
  // Round-robin over alive grid nodes.
  const size_t n = grid_nodes_.size();
  for (size_t attempt = 0; attempt < n; ++attempt) {
    Node* node = grid_nodes_[rr_grid_.fetch_add(1) % n].get();
    if (node->alive()) return node;
  }
  return nullptr;
}

Node* SimulatedCluster::PickClusterNode() {
  const size_t n = cluster_nodes_.size();
  for (size_t attempt = 0; attempt < n; ++attempt) {
    Node* node = cluster_nodes_[rr_cluster_.fetch_add(1) % n].get();
    if (node->alive()) return node;
  }
  return nullptr;
}

std::vector<NodeId> SimulatedCluster::PlaceReplicas(model::DocId id,
                                                    size_t copies) const {
  std::vector<NodeId> nodes;
  const size_t n = data_nodes_.size();
  const size_t primary = Mix64(id) % n;
  copies = std::min(copies, n);
  for (size_t i = 0; i < copies; ++i) {
    nodes.push_back(static_cast<NodeId>((primary + i) % n));
  }
  return nodes;
}

void SimulatedCluster::StoreOnNode(NodeId node_id, const model::Document& doc) {
  Partition* partition = partitions_[node_id].get();
  data_nodes_[node_id]->Run([partition, doc] {
    partition->docs[doc.id] = doc;
    partition->inverted.AddDocument(doc.id, doc.Text());
  });
}

Result<model::DocId> SimulatedCluster::Ingest(model::Document doc,
                                              size_t copies) {
  if (copies == 0) copies = options_.replication;
  doc.id = next_id_.fetch_add(1);
  doc.version = 1;
  std::vector<NodeId> replicas = PlaceReplicas(doc.id, copies);
  size_t stored = 0;
  const uint64_t bytes = DocBytes(doc);
  ShipStats stats;
  for (NodeId node : replicas) {
    if (!data_nodes_[node]->alive()) continue;
    StoreOnNode(node, doc);
    stats.bytes_shipped += bytes;
    stats.rows_shipped += 1;
    ++stats.tasks;
    ++stored;
  }
  if (stored == 0) {
    return Status::IOError("no alive replica target for document");
  }
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    DirEntry& entry = directory_[doc.id];
    entry.desired = static_cast<uint8_t>(copies);
    for (NodeId node : replicas) {
      if (data_nodes_[node]->alive()) entry.holders.push_back(node);
    }
    InvalidateOwnershipLocked();
  }
  AccountTraffic(stats);
  return doc.id;
}

Result<model::Document> SimulatedCluster::Get(model::DocId id) const {
  std::vector<NodeId> holders;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    auto it = directory_.find(id);
    if (it == directory_.end()) {
      return Status::NotFound("no such document: " + std::to_string(id));
    }
    holders = it->second.holders;
  }
  for (NodeId node_id : holders) {
    if (!data_nodes_[node_id]->alive()) continue;
    Partition* partition = partitions_[node_id].get();
    model::Document doc;
    bool found = false;
    const bool ran = data_nodes_[node_id]->Run([partition, id, &doc, &found] {
      auto it = partition->docs.find(id);
      if (it != partition->docs.end()) {
        doc = it->second;
        found = true;
      }
    });
    if (ran && found) return doc;
  }
  return Status::NotFound("all replicas unavailable: " + std::to_string(id));
}

size_t SimulatedCluster::num_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  return directory_.size();
}

std::shared_ptr<const SimulatedCluster::OwnershipMap>
SimulatedCluster::OwnershipByNode() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  if (ownership_cache_ != nullptr) return ownership_cache_;
  auto ownership = std::make_shared<OwnershipMap>();
  for (const auto& [id, entry] : directory_) {
    for (NodeId node : entry.holders) {
      if (data_nodes_[node]->alive()) {
        (*ownership)[node].insert(id);
        break;  // first alive holder owns the doc for queries
      }
    }
  }
  ownership_cache_ = ownership;
  return ownership_cache_;
}

std::vector<index::InvertedIndex::SearchResult> SimulatedCluster::KeywordSearch(
    const std::string& query, size_t k, ShipStats* stats) {
  ShipStats local_stats;
  std::shared_ptr<const OwnershipMap> ownership = OwnershipByNode();

  // Scatter: each owning data node searches its partition.
  std::vector<std::vector<index::InvertedIndex::SearchResult>> partials(
      data_nodes_.size());
  std::vector<uint64_t> task_micros(data_nodes_.size(), 0);
  std::vector<std::future<void>> futures;
  for (const auto& [node_id, owned] : *ownership) {
    Partition* partition = partitions_[node_id].get();
    const std::set<model::DocId>* owned_ptr = &owned;
    std::future<void> done;
    if (data_nodes_[node_id]->Submit(
            [partition, owned_ptr, &partials, &task_micros, node_id, &query,
             k] {
              const uint64_t start = NowMicros();
              auto hits = partition->inverted.Search(query, k + owned_ptr->size());
              std::vector<index::InvertedIndex::SearchResult> filtered;
              for (const auto& hit : hits) {
                if (owned_ptr->count(hit.doc)) filtered.push_back(hit);
                if (filtered.size() >= k) break;
              }
              partials[node_id] = std::move(filtered);
              task_micros[node_id] = NowMicros() - start;
            },
            &done)) {
      local_stats.bytes_shipped += query.size();  // query fan-out
      ++local_stats.tasks;
      futures.push_back(std::move(done));
    }
  }
  for (std::future<void>& f : futures) f.wait();
  local_stats.critical_path_micros +=
      *std::max_element(task_micros.begin(), task_micros.end());

  // Gather: merge partial top-k lists on a grid node.
  std::vector<index::InvertedIndex::SearchResult> merged;
  Node* grid = PickGridNode();
  IMPLIANCE_CHECK(grid != nullptr) << "no grid node alive";
  grid->Run([&partials, &merged, &local_stats, k] {
    const uint64_t start = NowMicros();
    for (const auto& partial : partials) {
      merged.insert(merged.end(), partial.begin(), partial.end());
      local_stats.rows_shipped += partial.size();
      local_stats.bytes_shipped += partial.size() * 16;  // (doc, score)
    }
    std::sort(merged.begin(), merged.end(),
              [](const index::InvertedIndex::SearchResult& a,
                 const index::InvertedIndex::SearchResult& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (merged.size() > k) merged.resize(k);
    local_stats.grid_task_micros = NowMicros() - start;
  });
  ++local_stats.tasks;
  local_stats.critical_path_micros += local_stats.grid_task_micros;

  AccountTraffic(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

SimulatedCluster::AggResult SimulatedCluster::FilterAggregate(
    const AggQuery& query, bool pushdown) {
  AggResult result;
  std::shared_ptr<const OwnershipMap> ownership = OwnershipByNode();

  struct Partial {
    // group -> (sum, count)
    std::map<std::string, std::pair<double, uint64_t>> groups;
    std::vector<model::Document> raw_docs;  // no-pushdown mode
    uint64_t raw_bytes = 0;
  };
  std::vector<Partial> partials(data_nodes_.size());
  std::vector<uint64_t> task_micros(data_nodes_.size(), 0);
  std::vector<std::future<void>> futures;

  auto matches = [&query](const model::Document& doc) {
    if (!query.kind.empty() && doc.kind != query.kind) return false;
    if (query.filter_path.empty()) return true;
    const model::Value* value = model::ResolvePath(doc.root, query.filter_path);
    if (value == nullptr || value->is_null()) return false;
    if (query.op == exec::CompareOp::kContains) {
      return value->AsString().find(query.literal.AsString()) !=
             std::string::npos;
    }
    const int c = value->Compare(query.literal);
    switch (query.op) {
      case exec::CompareOp::kEq: return c == 0;
      case exec::CompareOp::kNe: return c != 0;
      case exec::CompareOp::kLt: return c < 0;
      case exec::CompareOp::kLe: return c <= 0;
      case exec::CompareOp::kGt: return c > 0;
      case exec::CompareOp::kGe: return c >= 0;
      default: return false;
    }
  };
  auto accumulate = [&query](const model::Document& doc, Partial* partial) {
    std::string group;
    if (!query.group_path.empty()) {
      const model::Value* value = model::ResolvePath(doc.root, query.group_path);
      group = value == nullptr ? "null" : value->AsString();
    }
    double measure = 1.0;
    if (!query.agg_path.empty()) {
      const model::Value* value = model::ResolvePath(doc.root, query.agg_path);
      measure = value == nullptr ? 0.0 : value->AsDouble();
    }
    auto& [sum, count] = partial->groups[group];
    sum += measure;
    count += 1;
  };

  for (const auto& [node_id, owned] : *ownership) {
    Partition* partition = partitions_[node_id].get();
    const std::set<model::DocId>* owned_ptr = &owned;
    Partial* partial = &partials[node_id];
    std::future<void> done;
    const bool submitted = data_nodes_[node_id]->Submit(
        [partition, owned_ptr, partial, pushdown, &matches, &accumulate,
         &query, &task_micros, node_id] {
          const uint64_t start = NowMicros();
          for (const auto& [id, doc] : partition->docs) {
            if (!owned_ptr->count(id)) continue;
            if (pushdown) {
              // Predicate and partial aggregation at the storage node.
              if (matches(doc)) accumulate(doc, partial);
            } else {
              // Ship every document of the kind (the raw scan): the grid
              // node does all filtering and aggregation.
              if (query.kind.empty() || doc.kind == query.kind) {
                partial->raw_docs.push_back(doc);
                partial->raw_bytes += DocBytes(doc);
              }
            }
          }
          task_micros[node_id] = NowMicros() - start;
        },
        &done);
    if (submitted) {
      ++result.stats.tasks;
      futures.push_back(std::move(done));
    }
  }
  for (std::future<void>& f : futures) f.wait();
  result.stats.critical_path_micros +=
      *std::max_element(task_micros.begin(), task_micros.end());

  // Gather on a grid node.
  Node* grid = PickGridNode();
  IMPLIANCE_CHECK(grid != nullptr) << "no grid node alive";
  grid->Run([&] {
    const uint64_t gather_start = NowMicros();
    for (Partial& partial : partials) {
      if (pushdown) {
        // Partial states ship: ~(group string + 16 bytes) per group.
        for (const auto& [group, state] : partial.groups) {
          result.stats.bytes_shipped += group.size() + 16;
          ++result.stats.rows_shipped;
          if (query.agg_path.empty()) {
            result.groups[group] += static_cast<double>(state.second);
          } else {
            result.groups[group] += state.first;
          }
        }
      } else {
        result.stats.bytes_shipped += partial.raw_bytes;
        result.stats.rows_shipped += partial.raw_docs.size();
        for (const model::Document& doc : partial.raw_docs) {
          if (matches(doc)) {
            Partial merged;
            accumulate(doc, &merged);
            for (const auto& [group, state] : merged.groups) {
              if (query.agg_path.empty()) {
                result.groups[group] += static_cast<double>(state.second);
              } else {
                result.groups[group] += state.first;
              }
            }
          }
        }
      }
    }
    result.stats.grid_task_micros = NowMicros() - gather_start;
  });
  ++result.stats.tasks;
  result.stats.critical_path_micros += result.stats.grid_task_micros;
  AccountTraffic(result.stats);
  return result;
}

size_t SimulatedCluster::RunAnnotationPass(const discovery::Annotator& annotator,
                                           const std::string& kind,
                                           ShipStats* stats) {
  ShipStats local_stats;
  std::shared_ptr<const OwnershipMap> ownership = OwnershipByNode();

  // Phase 1 (data nodes): intra-document analysis over owned documents.
  std::vector<std::vector<model::Document>> produced(data_nodes_.size());
  std::vector<std::future<void>> futures;
  for (const auto& [node_id, owned] : *ownership) {
    Partition* partition = partitions_[node_id].get();
    const std::set<model::DocId>* owned_ptr = &owned;
    std::vector<model::Document>* out = &produced[node_id];
    std::future<void> done;
    if (data_nodes_[node_id]->Submit(
            [partition, owned_ptr, out, &annotator, &kind] {
              for (const auto& [id, doc] : partition->docs) {
                if (!owned_ptr->count(id)) continue;
                if (!kind.empty() && doc.kind != kind) continue;
                if (doc.doc_class != model::DocClass::kBase) continue;
                if (!annotator.InterestedIn(doc)) continue;
                auto spans = annotator.Annotate(doc);
                if (spans.empty()) continue;
                out->push_back(discovery::MakeAnnotationDocument(
                    doc, annotator.name(), spans));
              }
            },
            &done)) {
      ++local_stats.tasks;
      futures.push_back(std::move(done));
    }
  }
  for (std::future<void>& f : futures) f.wait();

  // Phase 3 (cluster node): assign ids, lock base documents, persist.
  Node* coordinator = PickClusterNode();
  IMPLIANCE_CHECK(coordinator != nullptr) << "no cluster node alive";
  std::vector<model::Document> to_store;
  coordinator->Run([&] {
    for (std::vector<model::Document>& batch : produced) {
      for (model::Document& annotation : batch) {
        local_stats.bytes_shipped += DocBytes(annotation);
        ++local_stats.rows_shipped;
        // Consistent persist: lock every referenced base document.
        for (const model::DocRef& ref : annotation.refs) {
          (void)ref;
          lock_acquisitions_.fetch_add(1);
        }
        annotation.id = next_id_.fetch_add(1);
        to_store.push_back(std::move(annotation));
      }
    }
  });
  ++local_stats.tasks;

  // Route the committed annotation documents onto data nodes.
  size_t created = 0;
  for (const model::Document& annotation : to_store) {
    std::vector<NodeId> replicas =
        PlaceReplicas(annotation.id, options_.replication);
    bool stored = false;
    const uint64_t bytes = DocBytes(annotation);
    for (NodeId node : replicas) {
      if (!data_nodes_[node]->alive()) continue;
      StoreOnNode(node, annotation);
      local_stats.bytes_shipped += bytes;
      stored = true;
    }
    if (stored) {
      std::lock_guard<std::mutex> lock(directory_mutex_);
      DirEntry& entry = directory_[annotation.id];
      entry.desired = static_cast<uint8_t>(options_.replication);
      for (NodeId node : replicas) {
        if (data_nodes_[node]->alive()) entry.holders.push_back(node);
      }
      InvalidateOwnershipLocked();
      ++created;
    }
  }
  AccountTraffic(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return created;
}


SimulatedCluster::AutoAggResult SimulatedCluster::FilterAggregateAuto(
    const AggQuery& query) {
  Scheduler::LoadSnapshot load;
  size_t alive_data = 0;
  for (const auto& node : data_nodes_) {
    if (!node->alive()) continue;
    load.data_queue_depth += static_cast<double>(node->queue_depth());
    ++alive_data;
  }
  if (alive_data > 0) load.data_queue_depth /= alive_data;
  size_t alive_grid = 0;
  for (const auto& node : grid_nodes_) {
    if (!node->alive()) continue;
    load.grid_queue_depth += static_cast<double>(node->queue_depth());
    ++alive_grid;
  }
  if (alive_grid > 0) load.grid_queue_depth /= alive_grid;

  AutoAggResult out;
  out.decision =
      scheduler_.Place(Scheduler::OperatorClass::kScanFilter, load);
  out.result = FilterAggregate(query, out.decision.pushdown);
  return out;
}

SimulatedCluster::PipelineResult SimulatedCluster::SearchJoinUpdate(
    const PipelineQuery& query) {
  PipelineResult result;
  std::shared_ptr<const OwnershipMap> ownership = OwnershipByNode();

  // ---- Stage 1 (data nodes): full-text search; ship reduced triples
  // (doc id, score, value at left_ref_path).
  struct Hit {
    model::DocId doc;
    double score;
    std::string ref_value;
  };
  std::vector<std::vector<Hit>> partial_hits(data_nodes_.size());
  std::vector<uint64_t> task_micros(data_nodes_.size(), 0);
  std::vector<std::future<void>> futures;
  for (const auto& [node_id, owned] : *ownership) {
    Partition* partition = partitions_[node_id].get();
    const std::set<model::DocId>* owned_ptr = &owned;
    std::vector<Hit>* out = &partial_hits[node_id];
    std::future<void> done;
    if (data_nodes_[node_id]->Submit(
            [partition, owned_ptr, out, &query, &task_micros, node_id] {
              const uint64_t start = NowMicros();
              auto hits = partition->inverted.Search(
                  query.keywords, query.k + owned_ptr->size());
              for (const auto& hit : hits) {
                if (!owned_ptr->count(hit.doc)) continue;
                auto doc_it = partition->docs.find(hit.doc);
                if (doc_it == partition->docs.end()) continue;
                const model::Value* ref = model::ResolvePath(
                    doc_it->second.root, query.left_ref_path);
                if (ref == nullptr || ref->is_null()) continue;
                out->push_back(Hit{hit.doc, hit.score, ref->AsString()});
                if (out->size() >= query.k) break;
              }
              task_micros[node_id] = NowMicros() - start;
            },
            &done)) {
      ++result.stats.tasks;
      futures.push_back(std::move(done));
    }
  }
  for (std::future<void>& f : futures) f.wait();
  result.stats.critical_path_micros +=
      *std::max_element(task_micros.begin(), task_micros.end());

  // Dimension side, also reduced at the data nodes: (key value, doc id).
  std::vector<std::vector<std::pair<std::string, model::DocId>>> partial_dims(
      data_nodes_.size());
  std::fill(task_micros.begin(), task_micros.end(), 0);
  futures.clear();
  for (const auto& [node_id, owned] : *ownership) {
    Partition* partition = partitions_[node_id].get();
    const std::set<model::DocId>* owned_ptr = &owned;
    auto* out = &partial_dims[node_id];
    std::future<void> done;
    if (data_nodes_[node_id]->Submit(
            [partition, owned_ptr, out, &query, &task_micros, node_id] {
              const uint64_t start = NowMicros();
              for (const auto& [id, doc] : partition->docs) {
                if (!owned_ptr->count(id) || doc.kind != query.dim_kind) {
                  continue;
                }
                const model::Value* key =
                    model::ResolvePath(doc.root, query.dim_key_path);
                if (key == nullptr || key->is_null()) continue;
                out->emplace_back(key->AsString(), id);
              }
              task_micros[node_id] = NowMicros() - start;
            },
            &done)) {
      ++result.stats.tasks;
      futures.push_back(std::move(done));
    }
  }
  for (std::future<void>& f : futures) f.wait();
  result.stats.critical_path_micros +=
      *std::max_element(task_micros.begin(), task_micros.end());

  // ---- Stage 2 (grid node): hash join + sort by score, keep top-k.
  Node* grid = PickGridNode();
  IMPLIANCE_CHECK(grid != nullptr) << "no grid node alive";
  grid->Run([&] {
    const uint64_t start = NowMicros();
    std::map<std::string, model::DocId> dim_by_key;
    for (const auto& partial : partial_dims) {
      for (const auto& [key, id] : partial) {
        result.stats.bytes_shipped += key.size() + 8;
        ++result.stats.rows_shipped;
        dim_by_key.emplace(key, id);
      }
    }
    for (const auto& partial : partial_hits) {
      for (const Hit& hit : partial) {
        result.stats.bytes_shipped += hit.ref_value.size() + 16;
        ++result.stats.rows_shipped;
        auto match = dim_by_key.find(hit.ref_value);
        if (match == dim_by_key.end()) continue;
        result.matches.push_back(
            PipelineMatch{hit.doc, hit.score, match->second});
      }
    }
    std::sort(result.matches.begin(), result.matches.end(),
              [](const PipelineMatch& a, const PipelineMatch& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (result.matches.size() > query.k) result.matches.resize(query.k);
    result.stats.grid_task_micros = NowMicros() - start;
  });
  ++result.stats.tasks;
  result.stats.critical_path_micros += result.stats.grid_task_micros;

  // ---- Stage 3 (cluster node): consistent updates — tag every matched
  // document under per-document locks, then apply on the holders.
  Node* coordinator = PickClusterNode();
  IMPLIANCE_CHECK(coordinator != nullptr) << "no cluster node alive";
  std::vector<model::DocId> to_update;
  coordinator->Run([&] {
    const uint64_t start = NowMicros();
    for (const PipelineMatch& match : result.matches) {
      lock_acquisitions_.fetch_add(1);
      to_update.push_back(match.doc);
    }
    result.stats.critical_path_micros += NowMicros() - start;
  });
  ++result.stats.tasks;
  for (model::DocId id : to_update) {
    std::vector<NodeId> holders;
    {
      std::lock_guard<std::mutex> lock(directory_mutex_);
      auto it = directory_.find(id);
      if (it == directory_.end()) continue;
      holders = it->second.holders;
    }
    bool updated = false;
    for (NodeId node_id : holders) {
      if (!data_nodes_[node_id]->alive()) continue;
      Partition* partition = partitions_[node_id].get();
      const std::string& tag = query.tag_name;
      data_nodes_[node_id]->Run([partition, id, &tag, &updated] {
        auto it = partition->docs.find(id);
        if (it == partition->docs.end()) return;
        model::Document updated_doc = it->second;
        updated_doc.version += 1;
        updated_doc.root.AddChild(tag, model::Value::Bool(true));
        partition->inverted.RemoveDocument(id);
        partition->inverted.AddDocument(id, updated_doc.Text());
        it->second = std::move(updated_doc);
        updated = true;
      });
      result.stats.bytes_shipped += query.tag_name.size() + 16;
    }
    if (updated) ++result.updates_applied;
  }
  AccountTraffic(result.stats);
  return result;
}

void SimulatedCluster::FailNode(NodeId id) {
  IMPLIANCE_CHECK(id < data_nodes_.size()) << "only data nodes can be failed";
  data_nodes_[id]->Fail();
}

void SimulatedCluster::RecoverNode(NodeId id) {
  IMPLIANCE_CHECK(id < data_nodes_.size());
  // Rejoins empty: its previous contents were lost with the failure.
  partitions_[id] = std::make_unique<Partition>();
  data_nodes_[id]->Recover();
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    known_dead_.erase(id);
    InvalidateOwnershipLocked();
  }
}

std::vector<NodeId> SimulatedCluster::DetectFailures() {
  std::vector<NodeId> newly_dead;
  std::lock_guard<std::mutex> lock(directory_mutex_);
  for (const auto& node : data_nodes_) {
    if (!node->alive() && !known_dead_.count(node->id())) {
      newly_dead.push_back(node->id());
      known_dead_.insert(node->id());
    }
  }
  // Drop dead holders from the directory so ownership fails over.
  if (!newly_dead.empty()) {
    InvalidateOwnershipLocked();
    for (auto& [id, entry] : directory_) {
      entry.holders.erase(
          std::remove_if(entry.holders.begin(), entry.holders.end(),
                         [this](NodeId node) {
                           return known_dead_.count(node) > 0;
                         }),
          entry.holders.end());
    }
  }
  return newly_dead;
}

uint64_t SimulatedCluster::ReReplicate() {
  uint64_t bytes_copied = 0;
  // Snapshot under-replicated docs.
  struct Todo {
    model::DocId id;
    std::vector<NodeId> holders;
    size_t desired;
  };
  std::vector<Todo> todo;
  {
    std::lock_guard<std::mutex> lock(directory_mutex_);
    for (const auto& [id, entry] : directory_) {
      size_t alive = 0;
      for (NodeId node : entry.holders) {
        if (data_nodes_[node]->alive()) ++alive;
      }
      if (alive > 0 && alive < entry.desired) {
        todo.push_back(Todo{id, entry.holders, entry.desired});
      }
    }
  }
  for (auto& [id, holders, desired] : todo) {
    Result<model::Document> doc = Get(id);
    if (!doc.ok()) continue;
    // Choose new targets: alive data nodes not already holding the doc,
    // walking the ring from the primary position.
    std::set<NodeId> holding(holders.begin(), holders.end());
    size_t alive_copies = 0;
    for (NodeId node : holders) {
      if (data_nodes_[node]->alive()) ++alive_copies;
    }
    const size_t n = data_nodes_.size();
    const size_t start = Mix64(id) % n;
    for (size_t i = 0; i < n && alive_copies < desired; ++i) {
      NodeId candidate = static_cast<NodeId>((start + i) % n);
      if (holding.count(candidate) || !data_nodes_[candidate]->alive()) {
        continue;
      }
      StoreOnNode(candidate, *doc);
      bytes_copied += DocBytes(*doc);
      {
        std::lock_guard<std::mutex> lock(directory_mutex_);
        directory_[id].holders.push_back(candidate);
        InvalidateOwnershipLocked();
      }
      holding.insert(candidate);
      ++alive_copies;
    }
  }
  {
    std::lock_guard<std::mutex> lock(traffic_mutex_);
    lifetime_traffic_.bytes_shipped += bytes_copied;
  }
  return bytes_copied;
}

size_t SimulatedCluster::num_available_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  size_t available = 0;
  for (const auto& [id, entry] : directory_) {
    for (NodeId node : entry.holders) {
      if (data_nodes_[node]->alive()) {
        ++available;
        break;
      }
    }
  }
  return available;
}

size_t SimulatedCluster::num_fully_replicated_documents() const {
  std::lock_guard<std::mutex> lock(directory_mutex_);
  size_t full = 0;
  for (const auto& [id, entry] : directory_) {
    size_t alive = 0;
    for (NodeId node : entry.holders) {
      if (data_nodes_[node]->alive()) ++alive;
    }
    if (alive >= entry.desired) ++full;
  }
  return full;
}

std::map<NodeId, size_t> SimulatedCluster::OwnedCounts() const {
  std::map<NodeId, size_t> counts;
  for (const auto& [node, owned] : *OwnershipByNode()) {
    counts[node] = owned.size();
  }
  return counts;
}

size_t SimulatedCluster::num_data_nodes_alive() const {
  size_t alive = 0;
  for (const auto& node : data_nodes_) {
    if (node->alive()) ++alive;
  }
  return alive;
}

}  // namespace impliance::cluster
