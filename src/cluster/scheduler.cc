#include "cluster/scheduler.h"

namespace impliance::cluster {

Scheduler::Decision Scheduler::Place(OperatorClass op,
                                     const LoadSnapshot& load) const {
  Decision decision;
  switch (op) {
    case OperatorClass::kScanFilter:
      decision.kind = NodeKind::kData;
      decision.pushdown = true;
      // Overloaded storage: fall back to shipping raw data to the grid.
      if (load.data_queue_depth > load.grid_queue_depth + options_.busy_margin) {
        decision.kind = NodeKind::kGrid;
        decision.pushdown = false;
      }
      return decision;
    case OperatorClass::kJoinSortAggregate:
      decision.kind = NodeKind::kGrid;
      decision.pushdown = false;
      return decision;
    case OperatorClass::kConsistentUpdate:
      decision.kind = NodeKind::kCluster;
      decision.pushdown = false;
      return decision;
  }
  return decision;
}

size_t Scheduler::ChooseDop(size_t max_workers,
                            const LoadSnapshot& load) const {
  if (max_workers <= 1) return 1;
  // Each unit of mean grid queue depth is one worker's worth of pending
  // work; give it back. busy_margin tasks of slack are free (same tolerance
  // Place() grants the data nodes).
  double loaded = load.grid_queue_depth - options_.busy_margin;
  if (loaded < 0) loaded = 0;
  const double free_workers = static_cast<double>(max_workers) - loaded;
  if (free_workers <= 1.0) return 1;
  return static_cast<size_t>(free_workers);
}

}  // namespace impliance::cluster
