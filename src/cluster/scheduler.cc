#include "cluster/scheduler.h"

namespace impliance::cluster {

Scheduler::Decision Scheduler::Place(OperatorClass op,
                                     const LoadSnapshot& load) const {
  Decision decision;
  switch (op) {
    case OperatorClass::kScanFilter:
      decision.kind = NodeKind::kData;
      decision.pushdown = true;
      // Overloaded storage: fall back to shipping raw data to the grid.
      if (load.data_queue_depth > load.grid_queue_depth + options_.busy_margin) {
        decision.kind = NodeKind::kGrid;
        decision.pushdown = false;
      }
      return decision;
    case OperatorClass::kJoinSortAggregate:
      decision.kind = NodeKind::kGrid;
      decision.pushdown = false;
      return decision;
    case OperatorClass::kConsistentUpdate:
      decision.kind = NodeKind::kCluster;
      decision.pushdown = false;
      return decision;
  }
  return decision;
}

}  // namespace impliance::cluster
