#include "cluster/scheduler.h"

namespace impliance::cluster {

Scheduler::Decision Scheduler::Place(OperatorClass op,
                                     const LoadSnapshot& load) const {
  Decision decision;
  switch (op) {
    case OperatorClass::kScanFilter:
      decision.kind = NodeKind::kData;
      decision.pushdown = true;
      // Overloaded storage: fall back to shipping raw data to the grid.
      if (load.data_queue_depth > load.grid_queue_depth + options_.busy_margin) {
        decision.kind = NodeKind::kGrid;
        decision.pushdown = false;
      }
      return decision;
    case OperatorClass::kJoinSortAggregate:
      decision.kind = NodeKind::kGrid;
      decision.pushdown = false;
      return decision;
    case OperatorClass::kConsistentUpdate:
      decision.kind = NodeKind::kCluster;
      decision.pushdown = false;
      return decision;
  }
  return decision;
}

size_t Scheduler::ChooseDop(size_t max_workers,
                            const LoadSnapshot& load) const {
  if (max_workers <= 1) return 1;
  // Each unit of mean grid queue depth is one worker's worth of pending
  // work; give it back. busy_margin tasks of slack are free (same tolerance
  // Place() grants the data nodes).
  double loaded = load.grid_queue_depth - options_.busy_margin;
  if (loaded < 0) loaded = 0;
  const double free_workers = static_cast<double>(max_workers) - loaded;
  if (free_workers <= 1.0) return 1;
  return static_cast<size_t>(free_workers);
}

Scheduler::MoveChoice Scheduler::PickMove(const std::vector<NodeLoad>& loads,
                                          double tolerance) const {
  MoveChoice choice;
  if (loads.size() < 2) return choice;
  size_t total = 0;
  size_t hot_index = 0;
  size_t cold_index = 0;
  for (size_t i = 0; i < loads.size(); ++i) {
    total += loads[i].owned_docs;
    if (loads[i].owned_docs > loads[hot_index].owned_docs) hot_index = i;
    if (loads[i].owned_docs < loads[cold_index].owned_docs) cold_index = i;
  }
  const double mean = static_cast<double>(total) / loads.size();
  const size_t hot_docs = loads[hot_index].owned_docs;
  const size_t cold_docs = loads[cold_index].owned_docs;
  if (static_cast<double>(hot_docs) <= tolerance * mean) return choice;
  if (hot_docs < cold_docs + 2) return choice;
  choice.move = true;
  choice.hot = loads[hot_index].node;
  choice.cold = loads[cold_index].node;
  choice.excess = hot_docs - static_cast<size_t>(mean);
  return choice;
}

}  // namespace impliance::cluster
