#ifndef IMPLIANCE_CLUSTER_CLUSTER_H_
#define IMPLIANCE_CLUSTER_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.h"
#include "cluster/scheduler.h"
#include "common/result.h"
#include "discovery/annotator.h"
#include "exec/predicate.h"
#include "index/inverted_index.h"
#include "model/document.h"

namespace impliance::cluster {

// Per-query data-movement accounting, the measurable half of the pushdown
// and scale-out experiments — plus the result-completeness contract: a
// query result is either complete or carries degraded=true with a nonzero
// missing count. Silent partial results are a bug by definition.
struct ShipStats {
  uint64_t bytes_shipped = 0;
  uint64_t rows_shipped = 0;
  uint64_t tasks = 0;
  // Partition tasks whose work was re-routed to a surviving replica
  // holder after the original node lost them — or to a partition's new
  // home after the balancer migrated it mid-query.
  uint64_t failovers = 0;
  // Documents whose contribution is known missing from the result (no
  // surviving replica, or failover rounds exhausted), counted per
  // document across every failure mode. A lost gather/coordinator task —
  // the whole merged result, not any one document — counts as 1.
  // Nonzero iff degraded.
  uint64_t missing_partitions = 0;
  // True when the result is known to be incomplete.
  bool degraded = false;
  // Modeled parallel latency: per phase, the slowest node's task duration,
  // summed across phases (bulk-synchronous critical path). On hosts with
  // fewer cores than simulated nodes, wall-clock time serializes node work
  // and says nothing about appliance latency; this does.
  uint64_t critical_path_micros = 0;
  // Duration of the gather/merge task on the grid node (for grid-scaling
  // throughput models).
  uint64_t grid_task_micros = 0;
};

// Identifier of one dynamic partition (tablet). Stable across splits of
// *other* partitions; a split retires the parent id and mints two new ones,
// a merge retires the right id.
using PartitionId = uint32_t;

// One Impliance instance: data nodes own dynamically partitioned document
// storage with local full-text indexes; grid nodes merge/join/aggregate;
// cluster nodes coordinate consistent updates (annotation persistence)
// through a lock table. Clients see a single system image — this class
// (Section 3.3). Placement is governed by an explicit partition table of
// routing-key ranges (tablets) that the autonomic balancer splits, merges,
// and migrates between nodes as load shifts (Section 3.4).
class SimulatedCluster {
 public:
  struct Options {
    size_t num_data_nodes = 4;
    size_t num_grid_nodes = 2;
    size_t num_cluster_nodes = 1;
    size_t replication = 1;  // copies per document

    // ---- Dynamic partition management (Section 3.4 storage management).
    // Tablets carved at construction: this many per data node, equal-width
    // ranges of the routing-key space, targets assigned round-robin.
    size_t initial_partitions_per_node = 1;
    // false: route documents by Mix64(id) — uniform, skew-resistant, the
    // classic hash ring. true: route by raw id — order-preserving
    // (key-range tablets), so sequential ingest concentrates in the
    // hottest tablet and exercises split/migrate exactly like a growing
    // real-world corpus.
    bool key_range_partitioning = false;
    // A partition whose routed-document count reaches this splits at its
    // median key on the next balancer pass. 0 = never split.
    size_t split_doc_threshold = 0;
    // Adjacent partitions whose combined count is at or below this merge
    // on the next balancer pass. 0 = never merge.
    size_t merge_doc_threshold = 0;
    // A partition whose point-op traffic counter (ingests + gets since the
    // last decay) reaches this also splits, independent of size — hot
    // small tablets get spread too. 0 = ignore traffic.
    uint64_t split_traffic_threshold = 0;
    // The balancer moves partitions off a node while its owned-document
    // count exceeds tolerance * mean; per pass it performs at most
    // max_moves_per_pass migrations.
    double balance_tolerance = 1.25;
    size_t max_moves_per_pass = 4;
  };

  explicit SimulatedCluster(const Options& options);
  ~SimulatedCluster();

  SimulatedCluster(const SimulatedCluster&) = delete;
  SimulatedCluster& operator=(const SimulatedCluster&) = delete;

  // ------------------------------------------------------------- Ingest

  // Stores `doc` on `copies` data nodes (0 = the cluster default); assigns
  // and returns its id (a pre-set nonzero doc.id is honored, so a fronting
  // store can mirror documents under its own ids). Only nodes that
  // positively acknowledged the store are recorded as holders. Per-class
  // copy counts are the storage manager's policy lever (Section 3.4).
  Result<model::DocId> Ingest(model::Document doc, size_t copies = 0);

  Result<model::Document> Get(model::DocId id) const;

  size_t num_documents() const;

  // -------------------------------------------------------------- Query

  // Scatter-gather BM25 top-k: each data node searches the documents it
  // currently owns; a grid node merges the partial top-k lists.
  std::vector<index::InvertedIndex::SearchResult> KeywordSearch(
      const std::string& query, size_t k, ShipStats* stats = nullptr);

  // Failure-aware availability scan: every owning data node reports which
  // of its documents it can currently serve, with lost partition tasks
  // failing over to replica holders like any other scatter. The union is
  // what a distributed facet/SQL query may legitimately read; documents on
  // unreachable partitions are reported through `stats` (degraded +
  // missing_partitions) instead of being silently dropped — the mechanism
  // that extends the complete-or-degraded contract beyond keyword search.
  std::shared_ptr<const std::set<model::DocId>> AvailableDocs(
      ShipStats* stats = nullptr);

  // Distributed filter + group-by aggregate over documents of `kind`.
  struct AggQuery {
    std::string kind;
    std::string filter_path;  // empty = no filter
    exec::CompareOp op = exec::CompareOp::kEq;
    model::Value literal;
    std::string group_path;   // empty = single global group ""
    std::string agg_path;     // empty = COUNT, else SUM of this path
  };
  struct AggResult {
    std::map<std::string, double> groups;  // group value -> aggregate
    ShipStats stats;
  };
  // With `pushdown`, data nodes filter and pre-aggregate locally and ship
  // tiny partial states; without, they ship whole documents to a grid node
  // which does all the work (Section 3.1's motivating contrast).
  AggResult FilterAggregate(const AggQuery& query, bool pushdown);

  // Scheduler-driven variant: samples node queue depths and lets the
  // Scheduler decide whether predicate work runs pushed-down on data
  // nodes or shipped to the grid (Section 3.4 execution management).
  struct AutoAggResult {
    AggResult result;
    Scheduler::Decision decision;
  };
  AutoAggResult FilterAggregateAuto(const AggQuery& query);

  // ------------------------------------------- Figure 3 pipeline example

  // The paper's canonical parallel query: "full-text index search on a set
  // of data nodes, which then send the reduced data to a set of grid nodes
  // for joining, sorting, and group-wise aggregation, the results of which
  // are sent to a set of cluster nodes to drive a set of updates."
  struct PipelineQuery {
    std::string keywords;      // stage 1: full-text search on data nodes
    size_t k = 10;             // matches to process
    std::string left_ref_path; // path in matched docs referencing the dim
    std::string dim_kind;      // stage 2: join against this kind
    std::string dim_key_path;  // key path in dimension documents
    std::string tag_name;      // stage 3: child appended to matched docs
  };
  struct PipelineMatch {
    model::DocId doc = model::kInvalidDocId;
    double score = 0;
    model::DocId dim_doc = model::kInvalidDocId;  // joined dimension doc
  };
  struct PipelineResult {
    std::vector<PipelineMatch> matches;  // sorted by score desc
    size_t updates_applied = 0;
    ShipStats stats;
  };
  PipelineResult SearchJoinUpdate(const PipelineQuery& query);

  // ---------------------------------------------------------- Discovery

  // One distributed annotation pass (Section 3.3's three-phase flow):
  // data nodes run `annotator` on owned documents of `kind` (empty = all),
  // ship annotation documents to a cluster node, which assigns ids, takes
  // per-base-document locks, and persists them back onto data nodes.
  // Returns the number of annotation documents created.
  size_t RunAnnotationPass(const discovery::Annotator& annotator,
                           const std::string& kind = "",
                           ShipStats* stats = nullptr);

  // --------------------------------------------------------- Membership

  void FailNode(NodeId id);
  // Node rejoins with empty storage.
  void RecoverNode(NodeId id);

  // Failure detector: returns nodes newly detected dead since the last
  // call and removes them from the ownership directory.
  std::vector<NodeId> DetectFailures();

  // Restores `replication` copies of every under-replicated document by
  // copying from surviving holders. Copy counts and early-stops are
  // validated against the *live* directory (not the pass's snapshot), so a
  // source holder dying mid-pass cannot fake completion, and a node is
  // never recorded as a holder twice for one document.
  struct ReReplicateReport {
    uint64_t bytes_copied = 0;
    // Documents the pass attempted but could not bring back to their
    // desired copy count (no capacity, targets kept dying, or a source
    // holder died mid-pass). Nonzero means the cluster is still exposed.
    size_t docs_unrestored = 0;
  };
  ReReplicateReport ReReplicate();

  // Documents whose replica chain has at least one alive holder / exactly
  // `replication` alive holders.
  size_t num_available_documents() const;
  size_t num_fully_replicated_documents() const;

  // --------------------------------------- Dynamic partition management

  // One row of the partition table: a half-open routing-key range
  // [lo, hi) — hi of the last partition is reported as UINT64_MAX and the
  // range is inclusive there — with its preferred replica targets
  // (primary first) and policy counters.
  struct PartitionDesc {
    PartitionId pid = 0;
    uint64_t lo = 0;
    uint64_t hi = 0;
    // Partition epoch: bumped by split/merge/migration so a balancer
    // decision taken against a stale view of the tablet aborts instead of
    // committing against a different range or home.
    uint64_t epoch = 0;
    std::vector<NodeId> replicas;
    uint64_t doc_count = 0;
    uint64_t traffic = 0;  // point ops (ingest/get) since last decay
  };
  std::vector<PartitionDesc> PartitionTable() const;

  // Splits the partition at the median routed key of its current
  // documents (range midpoints are useless under sequential-key skew).
  // Metadata-only: both children keep the parent's replica targets, so no
  // data moves; the balancer migrates a child later if load warrants.
  // Returns false when the partition vanished (merged/split concurrently)
  // or holds fewer than two distinct keys.
  bool SplitPartition(PartitionId pid);

  // Merges the partition with its right neighbor (metadata-only; the
  // survivor keeps the left partition's id and replica targets — existing
  // documents stay where the directory says they are, new ingest routes
  // to the survivor's targets, and migration converges the rest).
  // Returns false when the partition vanished or has no right neighbor.
  bool MergeWithRightNeighbor(PartitionId pid);

  // Migrates one replica of a partition: every document in the partition's
  // range currently held by `from` is copied to `to`, the directory entry
  // is swapped under the directory mutex with PR 3's incarnation-epoch
  // validity checks (a target that died between copy and commit is not
  // recorded), and the source bytes are deleted afterwards with a
  // version re-check so a concurrent update is re-copied, not lost. An
  // in-flight scatter routed at the old holder either finds the bytes
  // still there (delete not yet applied) or detects the absence and
  // re-routes through the directory to the new home — never a silently
  // half-moved partition. Returns the number of documents moved.
  size_t MovePartitionReplica(PartitionId pid, NodeId from, NodeId to);

  // One autonomic balancing pass: split every partition over the
  // size/traffic thresholds, merge cold neighbors, then migrate
  // partitions off nodes whose owned-document count exceeds
  // balance_tolerance * mean (policy kernel in Scheduler::PickMove),
  // at most max_moves_per_pass moves. Also decays traffic counters.
  struct RebalanceReport {
    size_t splits = 0;
    size_t merges = 0;
    size_t moves = 0;
    size_t docs_moved = 0;
  };
  RebalanceReport RebalanceOnce();

  // Background balancer loop (the storage-management half of Section
  // 3.4's "autonomic management"): RebalanceOnce every `interval_ms`
  // until StopBalancer. Idempotent; the destructor stops it.
  void StartBalancer(uint64_t interval_ms);
  void StopBalancer();
  bool balancer_running() const;
  uint64_t balancer_passes() const { return balancer_passes_.load(); }

  // Structural invariants, checked on demand by chaos tests and the
  // rebalance bench after every step: the directory never lists one node
  // twice for a document, and the partition table is a gapless,
  // non-overlapping cover of the routing-key space with valid, distinct
  // replica targets.
  struct IntegrityReport {
    size_t duplicate_holders = 0;      // docs listing one node >= twice
    size_t table_coverage_violations = 0;  // first range does not start at 0
    size_t duplicate_partition_ids = 0;
    size_t empty_replica_sets = 0;
    size_t invalid_replica_targets = 0;  // out of range or listed twice
    bool ok() const {
      return duplicate_holders == 0 && table_coverage_violations == 0 &&
             duplicate_partition_ids == 0 && empty_replica_sets == 0 &&
             invalid_replica_targets == 0;
    }
  };
  IntegrityReport CheckIntegrity() const;

  // ------------------------------------------------------------- Stats

  size_t num_data_nodes_alive() const;
  // Documents currently owned (served) per data node.
  std::map<NodeId, size_t> OwnedCounts() const;
  // max(owned)/mean(owned) across alive data nodes — the balancer's hot-
  // node signal and E22's headline metric. 1.0 = perfectly even.
  double OwnershipSpread() const;
  const std::vector<std::unique_ptr<Node>>& data_nodes() const {
    return data_nodes_;
  }
  uint64_t total_lock_acquisitions() const { return lock_acquisitions_.load(); }
  ShipStats lifetime_traffic() const;

 private:
  struct Partition {
    // Only the owning node's thread touches this (all access is routed
    // through Node::Run), except bulk copies during re-replication which
    // take the directory mutex first. Held by shared_ptr: node recovery
    // swaps in a fresh partition, and a task still running against the old
    // incarnation must keep its (doomed, epoch-checked) object alive.
    std::map<model::DocId, model::Document> docs;
    index::InvertedIndex inverted;
  };

  // A replica location is a (node, incarnation) pair: bytes stored on a
  // node are gone once its epoch advances (fail + rejoin-empty), so a bare
  // NodeId cannot say whether the copy still exists.
  struct Holder {
    NodeId node;
    uint64_t epoch;
  };

  // One dynamic partition (tablet) of the routing-key space. Keyed in
  // ptable_ by its inclusive lower bound; the range extends to the next
  // entry's bound (the last tablet covers the tail of the key space).
  struct PartitionState {
    PartitionId pid = 0;
    uint64_t epoch = 0;
    std::vector<NodeId> replicas;  // preferred targets, primary first
    uint64_t doc_count = 0;        // routed documents (policy signal)
    uint64_t traffic = 0;          // point ops since last decay
  };

  // Runs `fn` on an alive node of `pool`, retrying on another member when
  // the chosen node drops the task (it never ran, so re-submitting is
  // safe). Returns false when no member executed it.
  bool RunOnPool(const std::vector<std::unique_ptr<Node>>& pool,
                 std::atomic<uint64_t>* rr, const std::function<void()>& fn);

  // One unit of scatter work: run something over `docs` on `node`, which
  // must still be in incarnation `epoch` when the task runs — otherwise
  // the partition no longer holds these documents and the task must be
  // treated as lost, not as an (empty) success.
  struct PartitionAssignment {
    NodeId node;
    uint64_t epoch;
    std::shared_ptr<const std::set<model::DocId>> docs;
  };
  // Failure-aware scatter: submits one task per owning data node (built by
  // `make_task`, which must allocate its own output slot and may be called
  // again for failover attempts), waits for every outcome, and re-routes
  // the work of lost tasks to surviving replica holders of the affected
  // documents — bounded rounds, after which the loss is recorded in
  // `stats` (degraded + missing_partitions) instead of being silently
  // omitted. Documents that already have no alive holder at snapshot time
  // are counted as missing up front. A task that executes but finds some
  // assigned documents physically absent (the balancer migrated them
  // between snapshot and execution) re-routes exactly those documents
  // through the live directory instead of silently serving a hole.
  // Updates tasks/failovers/critical_path_micros in `stats`.
  void ScatterWithFailover(
      const std::function<std::function<void()>(
          NodeId node, std::shared_ptr<const std::set<model::DocId>> docs)>&
          make_task,
      ShipStats* stats);
  // Regroups the documents of `lost` assignments by surviving holder
  // (consulting the directory, which DetectFailures has just pruned).
  // Documents with no alive holder increment stats->missing_partitions.
  std::vector<PartitionAssignment> RerouteLost(
      const std::vector<PartitionAssignment>& lost, ShipStats* stats) const;
  // First valid holder of each document (ownership map), grouped by node.
  // Cached (routing tables change only on ingest/membership events) and
  // rebuilt lazily; returned as a shared snapshot so queries can hold it
  // while node tasks run. `epochs` records each owning node's incarnation
  // at snapshot time — scatter tasks verify it before trusting partition
  // contents.
  using OwnershipMap = std::map<NodeId, std::set<model::DocId>>;
  struct OwnershipSnapshot {
    OwnershipMap by_node;
    std::map<NodeId, uint64_t> epochs;
  };
  // When `orphaned` is non-null it receives the number of documents with
  // no valid holder in the same directory snapshot (consistent with the
  // returned map).
  std::shared_ptr<const OwnershipSnapshot> OwnershipByNode(
      size_t* orphaned = nullptr) const;
  void InvalidateOwnershipLocked() const { ownership_cache_.reset(); }

  // The key a document routes by: its Mix64 hash (uniform) or its raw id
  // (key-range mode). The partition table partitions this key space.
  uint64_t RouteKey(model::DocId id) const;
  // Placement policy: the routing partition's replica targets (primary
  // first), extended ring-wise past the table's targets when a caller
  // wants more copies than the tablet is configured with.
  std::vector<NodeId> PlaceReplicas(model::DocId id, size_t copies) const;
  // Stores `doc` (id already assigned) on its placed replicas and records
  // acked, still-epoch-valid holders in the directory — the single
  // placement path shared by Ingest, RunAnnotationPass, and recovery
  // mirrors, so every write respects liveness and the partition table.
  // Returns false when no replica target acknowledged the store.
  bool StoreReplicated(const model::Document& doc, size_t copies,
                       ShipStats* stats);
  // Policy-counter maintenance (both take ptable_mutex_ internally).
  void BumpPartitionTraffic(model::DocId id) const;
  void AdjustPartitionDocCount(model::DocId id, int64_t delta);
  // Stores `doc` on the node's partition and reports the definitive
  // outcome; only kExecuted means the node actually held the document when
  // the store ran. `epoch_at_store` (optional) receives the node's
  // incarnation observed right after the store — callers recording the
  // node as a holder must re-check it with HolderStillValid, because a
  // fail/recover cycle in between wipes the partition.
  TaskOutcome StoreOnNode(NodeId node, const model::Document& doc,
                          uint64_t* epoch_at_store = nullptr);
  // True while `node` is alive in the same incarnation: bytes stored at
  // `epoch_at_store` are still there.
  bool HolderStillValid(NodeId node, uint64_t epoch_at_store) const;
  // Copies the node's partition slot under partitions_mutex_: RecoverNode
  // swaps the slot concurrently with readers, and unsynchronized read +
  // write of one shared_ptr object is a data race.
  std::shared_ptr<Partition> PartitionFor(NodeId node) const;
  static uint64_t DocBytes(const model::Document& doc);
  void AccountTraffic(const ShipStats& stats);
  void BalancerLoop(uint64_t interval_ms);

  Options options_;
  std::vector<std::unique_ptr<Node>> data_nodes_;
  std::vector<std::unique_ptr<Node>> grid_nodes_;
  std::vector<std::unique_ptr<Node>> cluster_nodes_;
  // Parallel to data_nodes_. Slots are re-pointed by RecoverNode while
  // query/ingest threads copy them, so every slot access (read or write
  // after construction) goes through partitions_mutex_ via PartitionFor.
  mutable std::mutex partitions_mutex_;
  std::vector<std::shared_ptr<Partition>> partitions_;

  struct DirEntry {
    std::vector<Holder> holders;  // primary first; validity checked on use
    uint8_t desired = 1;          // replication target for this document
  };

  mutable std::mutex directory_mutex_;
  std::map<model::DocId, DirEntry> directory_;
  std::set<NodeId> known_dead_;
  mutable std::shared_ptr<const OwnershipSnapshot> ownership_cache_;
  // Documents with zero alive holders at the time the ownership cache was
  // built: data the cluster knows it cannot serve. Guarded by
  // directory_mutex_, refreshed together with ownership_cache_.
  mutable size_t orphaned_docs_ = 0;

  // The partition table: inclusive lower bound of each tablet's
  // routing-key range -> tablet state. Lock order: ptable_mutex_ may be
  // taken before directory_mutex_ (split/merge/integrity snapshots), never
  // after it.
  mutable std::mutex ptable_mutex_;
  // mutable: point reads (Get) bump per-partition traffic counters.
  mutable std::map<uint64_t, PartitionState> ptable_;
  PartitionId next_pid_ = 0;
  // Serializes partition migrations: a move runs blocking tasks on two
  // node mailboxes, and two concurrent opposite-direction moves could
  // otherwise deadlock each other's worker threads.
  std::mutex move_mutex_;

  // Background balancer.
  mutable std::mutex balancer_mutex_;
  std::condition_variable balancer_cv_;
  std::thread balancer_thread_;
  bool balancer_stop_ = false;  // guarded by balancer_mutex_
  std::atomic<bool> balancer_running_{false};
  std::atomic<uint64_t> balancer_passes_{0};

  std::atomic<model::DocId> next_id_{1};
  std::atomic<uint64_t> rr_grid_{0};
  std::atomic<uint64_t> rr_cluster_{0};
  std::atomic<uint64_t> lock_acquisitions_{0};
  Scheduler scheduler_;

  mutable std::mutex traffic_mutex_;
  ShipStats lifetime_traffic_;
};

}  // namespace impliance::cluster

#endif  // IMPLIANCE_CLUSTER_CLUSTER_H_
