#ifndef IMPLIANCE_CLUSTER_NODE_H_
#define IMPLIANCE_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

namespace impliance::cluster {

using NodeId = uint32_t;

// The three node flavors of an Impliance instance (Section 3.3, Figure 3).
enum class NodeKind {
  kData,     // owns a subset of persistent storage
  kGrid,     // stateless analytic compute
  kCluster,  // consistent locking/coordination
};

const char* NodeKindName(NodeKind kind);

// The definitive fate of one submitted task. A bool cannot express the
// difference between "ran" and "was accepted, then lost with the node" —
// that gap is exactly the silent-partial-result and lost-ack bug class, so
// every submission resolves to one of these.
enum class TaskOutcome : uint8_t {
  kExecuted,  // the task ran to completion on the node
  kDropped,   // accepted, then lost before running (node died / fault)
  kNodeDead,  // rejected outright: the node was already dead
};

const char* TaskOutcomeName(TaskOutcome outcome);

// One simulated node: a worker thread draining a FIFO mailbox of closures.
// This stands in for a blade server; the closures it runs are the operator
// fragments / annotator tasks the scheduler places on it. Failure injection
// marks the node dead: new work is rejected, queued work is dropped (and
// its outcome futures resolve kDropped — never silently).
//
// Fault points (see common/fault_injector.h): node.submit.drop loses an
// accepted task, node.submit.crash kills the node between submit and run,
// node.task.delay stalls execution.
class Node {
 public:
  Node(NodeId id, NodeKind kind);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }

  // Enqueues `task`. Returns false iff the node was dead at submit time.
  // When `outcome` is non-null it always receives a valid future that
  // resolves to the task's final fate — including kNodeDead on a false
  // return, so callers can treat every submission uniformly.
  bool Submit(std::function<void()> task, std::future<TaskOutcome>* outcome);

  // Convenience: submit and wait for the definitive outcome.
  TaskOutcome Run(std::function<void()> task);

  bool alive() const { return alive_.load(); }

  // Incarnation counter, bumped on every Fail(). State written in epoch E
  // is gone once the epoch changes (a recovered node rejoins empty), so
  // bookkeeping that records this node as a data holder must check that
  // the epoch observed when the store executed is still current.
  uint64_t epoch() const { return epoch_.load(); }

  // Failure injection: drops queued work (resolving each outcome future
  // kDropped), rejects new work.
  void Fail();
  // Node re-joins empty (its state was lost) — re-replication is the
  // storage manager's job.
  void Recover();

  uint64_t tasks_executed() const { return tasks_executed_.load(); }
  uint64_t tasks_dropped() const { return tasks_dropped_.load(); }
  // Tasks currently waiting in the mailbox (scheduler load signal).
  size_t queue_depth() const;
  uint64_t busy_micros() const { return busy_micros_.load(); }
  // Logical heartbeat counter, bumped every mailbox iteration.
  uint64_t heartbeats() const { return heartbeats_.load(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::promise<TaskOutcome> done;
  };

  void WorkerLoop();
  // Resolves and discards every queued task as kDropped. Caller holds
  // mutex_.
  void DropQueuedLocked();

  NodeId id_;
  NodeKind kind_;
  std::atomic<bool> alive_{true};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_dropped_{0};
  std::atomic<uint64_t> busy_micros_{0};
  std::atomic<uint64_t> heartbeats_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Task> mailbox_;
  std::thread worker_;
};

}  // namespace impliance::cluster

#endif  // IMPLIANCE_CLUSTER_NODE_H_
