#ifndef IMPLIANCE_CLUSTER_NODE_H_
#define IMPLIANCE_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

namespace impliance::cluster {

using NodeId = uint32_t;

// The three node flavors of an Impliance instance (Section 3.3, Figure 3).
enum class NodeKind {
  kData,     // owns a subset of persistent storage
  kGrid,     // stateless analytic compute
  kCluster,  // consistent locking/coordination
};

const char* NodeKindName(NodeKind kind);

// One simulated node: a worker thread draining a FIFO mailbox of closures.
// This stands in for a blade server; the closures it runs are the operator
// fragments / annotator tasks the scheduler places on it. Failure injection
// marks the node dead: new work is rejected, queued work is dropped.
class Node {
 public:
  Node(NodeId id, NodeKind kind);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  NodeKind kind() const { return kind_; }

  // Enqueues `task`; the future resolves when it has run. Returns an
  // already-broken future (valid() but throws on get — callers use
  // TrySubmit) if the node is dead; use alive() / the bool overload.
  bool Submit(std::function<void()> task, std::future<void>* done);

  // Convenience: submit and wait. Returns false if the node is dead.
  bool Run(std::function<void()> task);

  bool alive() const { return alive_.load(); }

  // Failure injection: drops queued work, rejects new work.
  void Fail();
  // Node re-joins empty (its state was lost) — re-replication is the
  // storage manager's job.
  void Recover();

  uint64_t tasks_executed() const { return tasks_executed_.load(); }
  // Tasks currently waiting in the mailbox (scheduler load signal).
  size_t queue_depth() const;
  uint64_t busy_micros() const { return busy_micros_.load(); }
  // Logical heartbeat counter, bumped every mailbox iteration.
  uint64_t heartbeats() const { return heartbeats_.load(); }

 private:
  void WorkerLoop();

  NodeId id_;
  NodeKind kind_;
  std::atomic<bool> alive_{true};
  std::atomic<bool> shutting_down_{false};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> busy_micros_{0};
  std::atomic<uint64_t> heartbeats_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> mailbox_;
  std::thread worker_;
};

}  // namespace impliance::cluster

#endif  // IMPLIANCE_CLUSTER_NODE_H_
