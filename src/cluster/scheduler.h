#ifndef IMPLIANCE_CLUSTER_SCHEDULER_H_
#define IMPLIANCE_CLUSTER_SCHEDULER_H_

#include <cstddef>
#include <vector>

#include "cluster/node.h"

namespace impliance::cluster {

// Operator placement (Section 3.3): "the scheduler assigns operators to
// compute nodes based on which operators execute more efficiently ... and
// the availability of resources within the system." Section 3.4 adds the
// load-balancing half: predicate application belongs on storage nodes for
// early reduction, but "at other times the storage nodes may be too busy
// serving data ... and so moving more work to grid nodes will be
// preferred."
//
// The rules are deliberately simple (the appliance knows its operators):
//   scan/filter        -> data nodes (pushdown) while they have slack,
//                         else grid nodes (ship + filter there);
//   join/sort/aggregate-> grid nodes;
//   consistent update  -> cluster nodes.
class Scheduler {
 public:
  enum class OperatorClass {
    kScanFilter,
    kJoinSortAggregate,
    kConsistentUpdate,
  };

  struct LoadSnapshot {
    // Mean queued tasks per alive node of the kind.
    double data_queue_depth = 0;
    double grid_queue_depth = 0;
  };

  struct Decision {
    NodeKind kind = NodeKind::kData;
    bool pushdown = true;  // meaningful for kScanFilter only
  };

  struct Options {
    // Data nodes count as "too busy" when their mean queue exceeds the
    // grid's by this many tasks.
    double busy_margin = 2.0;
  };

  Scheduler() : options_(Options()) {}
  explicit Scheduler(const Options& options) : options_(options) {}

  Decision Place(OperatorClass op, const LoadSnapshot& load) const;

  // Degree of parallelism for one query's morsel-parallel segment, given
  // `max_workers` execution slots. Same philosophy as Place(): a rule over
  // the live load picture, not a cost model. A loaded grid (queued
  // background tasks per worker) linearly squeezes the per-query DOP down
  // to 1 so intra-query parallelism never starves concurrent queries.
  size_t ChooseDop(size_t max_workers, const LoadSnapshot& load) const;

  // ------------------------------------------------- Rebalancing policy

  // Per-node serving load: documents this node currently owns (first
  // valid holder) per the directory snapshot.
  struct NodeLoad {
    NodeId node = 0;
    size_t owned_docs = 0;
  };

  // One migration decision for the autonomic balancer: move load from
  // `hot` to `cold`. move=false means the cluster is balanced enough to
  // leave alone.
  struct MoveChoice {
    bool move = false;
    NodeId hot = 0;
    NodeId cold = 0;
    // How many documents the hot node carries beyond the mean — the
    // balancer picks the migration whose size best fits this gap (the
    // swap_defragmentator idea: never overshoot into a new hot spot).
    size_t excess = 0;
  };

  // Policy kernel for one balancer step, a pure rule over the live load
  // picture like Place(): act only when the hottest node exceeds
  // tolerance * mean owned documents AND the hot/cold gap is at least 2
  // (a 1-document gap is noise — moving it just renames the hot node).
  // `loads` must cover exactly the alive data nodes.
  MoveChoice PickMove(const std::vector<NodeLoad>& loads,
                      double tolerance) const;

 private:
  Options options_;
};

}  // namespace impliance::cluster

#endif  // IMPLIANCE_CLUSTER_SCHEDULER_H_
