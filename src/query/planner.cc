#include "query/planner.h"

#include <algorithm>
#include <optional>
#include <set>

#include "exec/operators.h"
#include "query/plan_common.h"
#include "query/sql_parser.h"

namespace impliance::query {

namespace {

using planning::BindColumns;
using planning::BindJoins;
using planning::BindTables;
using planning::BoundJoin;
using planning::BoundTable;
using planning::FetchViaIndex;
using planning::IndexFetch;
using planning::IsRangeOp;
using planning::MakeIndexLookup;
using planning::NameResolver;
using planning::PruneRows;
using planning::RenderExplain;
using planning::ResolveInTable;
using planning::ResolveUpper;
using planning::UpperPlanSpec;

// The simple planner's access-path rule on the FROM table: the FIRST
// equality predicate with an index wins; else the first indexed range
// predicate; else scan. A rule, not a cost decision.
int ChooseAccessPredicate(const SelectStatement& stmt, const Table* table) {
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    const int column = ResolveInTable(table, stmt.where[i].column);
    if (column >= 0 && stmt.where[i].op == exec::CompareOp::kEq &&
        table->HasIndexOn(column)) {
      return static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    const int column = ResolveInTable(table, stmt.where[i].column);
    if (column >= 0 && IsRangeOp(stmt.where[i].op) &&
        table->HasIndexOn(column)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Base rows for the FROM table under the simple rule, already pruned to the
// kept columns. Sets *consumed when an index fully absorbed the predicate.
std::vector<exec::Row> FetchAccess(const SelectStatement& stmt,
                                   const BoundTable& bound, int chosen,
                                   std::string* description, int* consumed) {
  *consumed = -1;
  if (chosen < 0) {
    *description = "Scan(" + bound.table->table_name() + ")";
    return bound.ScanKept();
  }
  const WhereClause& clause = stmt.where[chosen];
  IndexFetch fetch = FetchViaIndex(
      bound.table, clause.column,
      ResolveInTable(bound.table, clause.column), clause.op, clause.literal);
  *description = fetch.description;
  if (fetch.consumed) *consumed = chosen;
  PruneRows(bound, &fetch.rows);
  return std::move(fetch.rows);
}

// The simple rule for join methods: indexed nested-loop when the query is
// top-k (LIMIT) and the join table has an index on its join column.
bool UseIndexedNLJoin(const SelectStatement& stmt, const BoundJoin& join,
                      const std::vector<const Table*>& tables) {
  return stmt.limit.has_value() &&
         tables[join.right_table]->HasIndexOn(join.right_column);
}

}  // namespace

// ---------------------------------------------------------- SimplePlanner

Result<PlanResult> SimplePlanner::Plan(const SelectStatement& stmt,
                                       const Catalog& catalog) {
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<const Table*> tables,
                             BindTables(stmt, catalog));
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<BoundJoin> joins,
                             BindJoins(stmt, tables));

  // Index lookups return full rows, so IndexedNLJoin targets stay unpruned.
  std::vector<bool> keep_all(tables.size(), false);
  for (const BoundJoin& join : joins) {
    if (UseIndexedNLJoin(stmt, join, tables)) {
      keep_all[join.right_table] = true;
    }
  }
  const std::vector<BoundTable> bound =
      BindColumns(stmt, tables, joins, keep_all);
  const NameResolver resolver(&bound);

  std::vector<std::string> explain_lines;

  const int chosen = ChooseAccessPredicate(stmt, tables[0]);
  std::string description;
  int consumed_index = -1;
  std::vector<exec::Row> base_rows =
      FetchAccess(stmt, bound[0], chosen, &description, &consumed_index);
  explain_lines.push_back(description);
  exec::OperatorPtr plan = std::make_unique<exec::RowSourceOp>(
      bound[0].schema, std::move(base_rows));

  std::set<int> consumed;
  if (consumed_index >= 0) consumed.insert(consumed_index);

  // Left-deep joins in textual order: the combined schema after join i is
  // the concatenation of the pruned schemas of tables 0..i+1.
  for (const BoundJoin& join : joins) {
    const BoundTable& right = bound[join.right_table];
    const int left_key = resolver.Offset(join.left_table) +
                         bound[join.left_table].KeptIndexOf(join.left_column);
    if (UseIndexedNLJoin(stmt, join, tables)) {
      explain_lines.push_back("IndexedNLJoin(" + right.table->table_name() +
                              ")");
      plan = std::make_unique<exec::IndexedNLJoinOp>(
          std::move(plan), left_key,
          MakeIndexLookup(right.table, join.right_column),
          right.table->schema());
    } else {
      explain_lines.push_back("HashJoin(build=" + right.table->table_name() +
                              ")");
      auto build = std::make_unique<exec::RowSourceOp>(right.schema,
                                                       right.ScanKept());
      plan = std::make_unique<exec::HashJoinOp>(
          std::move(plan), std::move(build), left_key,
          right.KeptIndexOf(join.right_column));
    }
  }

  // Residuals in textual order; the adaptive filter reorders at runtime.
  std::vector<int> order;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(stmt, resolver, consumed, order, /*adaptive_filter=*/true));
  plan = planning::BuildSerialUpper(spec, std::move(plan), &explain_lines);
  return PlanResult{std::move(plan), RenderExplain(explain_lines), {}};
}

Result<std::optional<ParallelPlan>> SimplePlanner::PlanParallel(
    const SelectStatement& stmt, const Catalog& catalog) {
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<const Table*> tables,
                             BindTables(stmt, catalog));
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<BoundJoin> joins,
                             BindJoins(stmt, tables));

  // The top-k indexed-NL-join rule stays serial: its benefit is streaming
  // the first rows, and index lookups are not guaranteed thread-safe.
  for (const BoundJoin& join : joins) {
    if (UseIndexedNLJoin(stmt, join, tables)) {
      return std::optional<ParallelPlan>();
    }
  }

  const std::vector<BoundTable> bound = BindColumns(
      stmt, tables, joins, std::vector<bool>(tables.size(), false));
  const NameResolver resolver(&bound);

  std::vector<std::string> explain_lines;

  // Same access-path rule as the serial plan.
  const int chosen = ChooseAccessPredicate(stmt, tables[0]);
  std::string description;
  int consumed_index = -1;
  std::vector<exec::Row> base_rows =
      FetchAccess(stmt, bound[0], chosen, &description, &consumed_index);
  explain_lines.push_back(description);

  std::set<int> consumed;
  if (consumed_index >= 0) consumed.insert(consumed_index);
  std::vector<int> order;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(stmt, resolver, consumed, order, /*adaptive_filter=*/true));

  // Shared build sides: constructed once here, probed from every worker.
  struct Probe {
    std::shared_ptr<const exec::JoinHashTable> table;
    int left_key = -1;
  };
  std::vector<Probe> probes;
  for (const BoundJoin& join : joins) {
    const BoundTable& right = bound[join.right_table];
    exec::RowSourceOp build(right.schema, right.ScanKept());
    probes.push_back(Probe{
        exec::JoinHashTable::Build(&build, right.KeptIndexOf(join.right_column)),
        resolver.Offset(join.left_table) +
            bound[join.left_table].KeptIndexOf(join.left_column)});
    explain_lines.push_back("HashProbe(build=" +
                            right.table->table_name() + ", shared)");
  }
  if (!spec.predicates.empty()) {
    explain_lines.push_back(
        "AdaptiveFilter(" + std::to_string(spec.predicates.size()) +
        " predicates, per-morsel)");
  }

  ParallelPlan parallel;
  parallel.segment.source_schema = bound[0].schema;
  parallel.segment.source_rows =
      std::make_shared<std::vector<exec::Row>>(std::move(base_rows));

  // Pipeline stacked on each morsel: probes -> filter -> (project when the
  // aggregate does not reshape the rows anyway).
  const bool project_in_pipeline = !spec.has_aggregate && spec.project;
  parallel.segment.make_pipeline =
      [probes, predicates = spec.predicates, project_in_pipeline,
       columns = spec.project_columns,
       names = spec.project_names](exec::OperatorPtr source) {
        exec::OperatorPtr op = std::move(source);
        for (const Probe& probe : probes) {
          op = std::make_unique<exec::HashProbeOp>(std::move(op), probe.table,
                                                   probe.left_key);
        }
        if (!predicates.empty()) {
          op = std::make_unique<exec::FilterOp>(std::move(op), predicates,
                                                /*adaptive=*/true);
        }
        if (project_in_pipeline) {
          op = std::make_unique<exec::ProjectOp>(std::move(op), columns, names);
        }
        return op;
      };

  planning::AttachParallelUpper(spec, &parallel, &explain_lines);
  parallel.explain = "ParallelMorsels\n" + RenderExplain(explain_lines);
  return std::optional<ParallelPlan>(std::move(parallel));
}

Result<std::vector<exec::Row>> RunSql(std::string_view sql,
                                      const Catalog& catalog, Planner* planner,
                                      const exec::ExecOptions& options) {
  IMPLIANCE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  if (options.dop > 1) {
    IMPLIANCE_ASSIGN_OR_RETURN(std::optional<ParallelPlan> parallel,
                               planner->PlanParallel(stmt, catalog));
    if (parallel.has_value()) {
      std::vector<exec::Row> merged =
          exec::ParallelExecutor::Shared().Run(parallel->segment, options);
      if (!parallel->tail) return merged;
      auto source = std::make_unique<exec::RowSourceOp>(
          parallel->segment.OutputSchema(), std::move(merged));
      exec::OperatorPtr tail = parallel->tail(std::move(source));
      return exec::Execute(tail.get());
    }
  }
  IMPLIANCE_ASSIGN_OR_RETURN(PlanResult plan, planner->Plan(stmt, catalog));
  return exec::Execute(plan.root.get());
}

}  // namespace impliance::query
