#include "query/planner.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/string_util.h"
#include "exec/operators.h"
#include "query/sql_parser.h"

namespace impliance::query {

namespace {

// Column resolution over the (possibly joined) plan schema. Qualified names
// ("orders.total") match the owning table's columns; bare names match the
// first occurrence.
class NameResolver {
 public:
  NameResolver(const Table* left, const Table* right) {
    for (const std::string& column : left->schema().columns) {
      names_.push_back(column);
      qualified_.push_back(left->table_name() + "." + column);
    }
    if (right != nullptr) {
      for (const std::string& column : right->schema().columns) {
        names_.push_back(column);
        qualified_.push_back(right->table_name() + "." + column);
      }
    }
  }

  // Index in the combined schema, or -1.
  int Resolve(const std::string& name) const {
    for (size_t i = 0; i < qualified_.size(); ++i) {
      if (qualified_[i] == name) return static_cast<int>(i);
    }
    for (size_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  // Unqualified output name for the combined schema position.
  const std::string& NameAt(int index) const { return names_[index]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::string> qualified_;
};

// Resolution of a column against ONE table (for access-path decisions).
int ResolveInTable(const Table* table, const std::string& name) {
  std::string bare = name;
  const std::string prefix = table->table_name() + ".";
  if (bare.rfind(prefix, 0) == 0) bare = bare.substr(prefix.size());
  if (bare.find('.') != std::string::npos) return -1;  // other qualifier
  return table->schema().IndexOf(bare);
}

bool IsRangeOp(exec::CompareOp op) {
  return op == exec::CompareOp::kLt || op == exec::CompareOp::kLe ||
         op == exec::CompareOp::kGt || op == exec::CompareOp::kGe;
}

struct AccessPath {
  std::vector<exec::Row> rows;
  std::string description;
  // Index into stmt.where of the predicate consumed by the index (or -1).
  int consumed_predicate = -1;
};

// Fetches base rows via the chosen index predicate, or a full scan.
AccessPath AccessViaIndex(const Table* table, const SelectStatement& stmt,
                          int predicate_index) {
  AccessPath path;
  if (predicate_index < 0) {
    path.rows = table->ScanAll();
    path.description = "Scan(" + table->table_name() + ")";
    return path;
  }
  const WhereClause& clause = stmt.where[predicate_index];
  const int column = ResolveInTable(table, clause.column);
  path.consumed_predicate = predicate_index;
  if (clause.op == exec::CompareOp::kEq) {
    path.rows = table->IndexLookup(column, clause.literal);
    path.description = "IndexLookup(" + table->table_name() + "." +
                       clause.column + ")";
  } else {
    const model::Value* lo = nullptr;
    const model::Value* hi = nullptr;
    if (clause.op == exec::CompareOp::kGt || clause.op == exec::CompareOp::kGe) {
      lo = &clause.literal;
    } else {
      hi = &clause.literal;
    }
    path.rows = table->IndexRange(column, lo, hi);
    path.description = "IndexRange(" + table->table_name() + "." +
                       clause.column + ")";
    // Range via index is inclusive; strict bounds keep the predicate as a
    // residual filter (cheap, correct).
    path.consumed_predicate =
        (clause.op == exec::CompareOp::kGe || clause.op == exec::CompareOp::kLe)
            ? predicate_index
            : -1;
  }
  return path;
}

struct PlanContext {
  const SelectStatement& stmt;
  const Table* left_table = nullptr;
  const Table* right_table = nullptr;  // join, or nullptr
  std::vector<std::string> explain_lines;
};

// Everything above the access path / join, fully resolved against schemas
// but not yet bound to operators. One resolution feeds both the serial
// operator tree and the morsel-parallel segment, so the two paths cannot
// drift semantically.
struct UpperPlanSpec {
  std::vector<exec::Predicate> predicates;  // residual, in evaluation order
  bool adaptive_filter = false;

  bool has_aggregate = false;
  std::vector<int> group_columns;
  std::vector<exec::AggSpec> aggregates;

  // Projection onto the select list: after the aggregate when present,
  // directly on the join/filter output otherwise. false => SELECT *.
  bool project = false;
  std::vector<int> project_columns;
  std::vector<std::string> project_names;

  // Resolved against the final (projected) schema.
  std::vector<exec::SortKey> sort_keys;
  std::optional<size_t> limit;
};

// Resolves residual filter, aggregate, projection, and order/limit. Shared
// by both planners; `adaptive_filter` is the one knob that differs (besides
// access path / join choice made by the caller).
Result<UpperPlanSpec> ResolveUpper(PlanContext* ctx,
                                   const std::set<int>& consumed_predicates,
                                   const std::vector<int>& filter_order,
                                   bool adaptive_filter) {
  const SelectStatement& stmt = ctx->stmt;
  NameResolver resolver(ctx->left_table, ctx->right_table);
  UpperPlanSpec spec;
  spec.adaptive_filter = adaptive_filter;
  spec.limit = stmt.limit;

  // Residual predicates.
  for (int index : filter_order) {
    if (consumed_predicates.count(index)) continue;
    const WhereClause& clause = stmt.where[index];
    const int column = resolver.Resolve(clause.column);
    if (column < 0) {
      return Status::InvalidArgument("unknown column in WHERE: " +
                                     clause.column);
    }
    spec.predicates.push_back(
        exec::Predicate{column, clause.op, clause.literal});
  }

  // The combined (post-join) input schema.
  exec::Schema input_schema;
  for (size_t i = 0; i < resolver.size(); ++i) {
    input_schema.AddColumn(resolver.NameAt(static_cast<int>(i)));
  }

  // Aggregation.
  spec.has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });
  exec::Schema pre_order_schema;  // schema ORDER BY resolves against
  if (spec.has_aggregate) {
    for (const std::string& column : stmt.group_by) {
      const int index = resolver.Resolve(column);
      if (index < 0) {
        return Status::InvalidArgument("unknown GROUP BY column: " + column);
      }
      spec.group_columns.push_back(index);
    }
    for (const SelectItem& item : stmt.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      exec::AggSpec agg;
      agg.fn = item.agg_fn;
      agg.output_name = item.alias;
      if (!item.column.empty()) {
        agg.column = resolver.Resolve(item.column);
        if (agg.column < 0) {
          return Status::InvalidArgument("unknown aggregate column: " +
                                         item.column);
        }
      }
      spec.aggregates.push_back(std::move(agg));
    }
    const exec::Schema agg_schema = exec::GroupByAggregator::OutputSchema(
        input_schema, spec.group_columns, spec.aggregates);

    // Project the select list onto the aggregate's output order.
    spec.project = true;
    for (const SelectItem& item : stmt.items) {
      std::string wanted;
      if (item.kind == SelectItem::Kind::kAggregate) {
        wanted = item.alias;
      } else if (item.kind == SelectItem::Kind::kColumn) {
        // Must be a group-by column; match by bare name.
        wanted = item.column;
        size_t dot = wanted.rfind('.');
        if (dot != std::string::npos) wanted = wanted.substr(dot + 1);
      } else {
        return Status::InvalidArgument("SELECT * with aggregation");
      }
      const int index = agg_schema.IndexOf(wanted);
      if (index < 0) {
        return Status::InvalidArgument(
            "SELECT column not in GROUP BY or aggregates: " + wanted);
      }
      spec.project_columns.push_back(index);
      spec.project_names.push_back(item.alias.empty() ? wanted : item.alias);
    }
    pre_order_schema = exec::Schema(spec.project_names);
  } else {
    // Plain projection (unless SELECT *).
    const bool star = stmt.items.size() == 1 &&
                      stmt.items[0].kind == SelectItem::Kind::kStar;
    if (!star) {
      spec.project = true;
      for (const SelectItem& item : stmt.items) {
        const int index = resolver.Resolve(item.column);
        if (index < 0) {
          return Status::InvalidArgument("unknown SELECT column: " +
                                         item.column);
        }
        spec.project_columns.push_back(index);
        spec.project_names.push_back(
            item.alias.empty() ? resolver.NameAt(index) : item.alias);
      }
      pre_order_schema = exec::Schema(spec.project_names);
    } else {
      pre_order_schema = input_schema;
    }
  }

  // ORDER BY against the final output schema.
  for (const OrderItem& item : stmt.order_by) {
    int index = pre_order_schema.IndexOf(item.column);
    if (index < 0) {
      // Allow bare-name match against qualified select items.
      std::string bare = item.column;
      size_t dot = bare.rfind('.');
      if (dot != std::string::npos) {
        index = pre_order_schema.IndexOf(bare.substr(dot + 1));
      }
    }
    if (index < 0) {
      return Status::InvalidArgument("unknown ORDER BY column: " +
                                     item.column);
    }
    spec.sort_keys.push_back(exec::SortKey{index, item.ascending});
  }
  return spec;
}

// Stacks the resolved upper plan onto `plan` as serial batched operators.
exec::OperatorPtr BuildSerialUpper(PlanContext* ctx, const UpperPlanSpec& spec,
                                   exec::OperatorPtr plan) {
  if (!spec.predicates.empty()) {
    ctx->explain_lines.push_back(
        std::string(spec.adaptive_filter ? "AdaptiveFilter" : "Filter") + "(" +
        std::to_string(spec.predicates.size()) + " predicates)");
    plan = std::make_unique<exec::FilterOp>(std::move(plan), spec.predicates,
                                            spec.adaptive_filter);
  }
  if (spec.has_aggregate) {
    ctx->explain_lines.push_back(
        "HashAggregate(groups=" + std::to_string(spec.group_columns.size()) +
        ", aggs=" + std::to_string(spec.aggregates.size()) + ")");
    plan = std::make_unique<exec::HashAggregateOp>(
        std::move(plan), spec.group_columns, spec.aggregates);
  }
  if (spec.project) {
    plan = std::make_unique<exec::ProjectOp>(
        std::move(plan), spec.project_columns, spec.project_names);
  }
  if (!spec.sort_keys.empty()) {
    if (spec.limit.has_value()) {
      ctx->explain_lines.push_back("TopK(k=" + std::to_string(*spec.limit) +
                                   ")");
      plan = std::make_unique<exec::TopKOp>(std::move(plan), spec.sort_keys,
                                            *spec.limit);
    } else {
      ctx->explain_lines.push_back("Sort");
      plan = std::make_unique<exec::SortOp>(std::move(plan), spec.sort_keys);
    }
  } else if (spec.limit.has_value()) {
    ctx->explain_lines.push_back("Limit(" + std::to_string(*spec.limit) + ")");
    plan = std::make_unique<exec::LimitOp>(std::move(plan), *spec.limit);
  }
  return plan;
}

// Compatibility shim over ResolveUpper + BuildSerialUpper.
Result<exec::OperatorPtr> BuildUpperPlan(PlanContext* ctx,
                                         exec::OperatorPtr plan,
                                         std::set<int> consumed_predicates,
                                         std::vector<int> filter_order,
                                         bool adaptive_filter) {
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(ctx, consumed_predicates, filter_order, adaptive_filter));
  return BuildSerialUpper(ctx, spec, std::move(plan));
}

std::string RenderExplain(const std::vector<std::string>& lines) {
  // Lines were appended bottom-up; render root-first.
  std::string out;
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    if (!out.empty()) out += "\n";
    out += *it;
  }
  return out;
}

// Shared lookup-callback builder for IndexedNLJoin.
exec::IndexedNLJoinOp::LookupFn MakeIndexLookup(const Table* table,
                                                int column) {
  return [table, column](const model::Value& key) {
    return table->IndexLookup(column, key);
  };
}

struct ResolvedJoin {
  int left_key = -1;    // in left table schema
  int right_key = -1;   // in right table schema
};

Result<ResolvedJoin> ResolveJoin(const Table* left, const Table* right,
                                 const JoinClause& join) {
  ResolvedJoin resolved;
  resolved.left_key = ResolveInTable(left, join.left_column);
  resolved.right_key = ResolveInTable(right, join.right_column);
  // The parser's side assignment is heuristic; swap if needed.
  if (resolved.left_key < 0 || resolved.right_key < 0) {
    resolved.left_key = ResolveInTable(left, join.right_column);
    resolved.right_key = ResolveInTable(right, join.left_column);
  }
  if (resolved.left_key < 0 || resolved.right_key < 0) {
    return Status::InvalidArgument("cannot resolve join columns " +
                                   join.left_column + " = " +
                                   join.right_column);
  }
  return resolved;
}

}  // namespace

// ---------------------------------------------------------- SimplePlanner

Result<PlanResult> SimplePlanner::Plan(const SelectStatement& stmt,
                                       const Catalog& catalog) {
  const Table* left = catalog.Lookup(stmt.table);
  if (left == nullptr) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  const Table* right = nullptr;
  if (stmt.join.has_value()) {
    right = catalog.Lookup(stmt.join->table);
    if (right == nullptr) {
      return Status::NotFound("unknown table: " + stmt.join->table);
    }
  }

  PlanContext ctx{stmt, left, right, {}};

  // Access path: the FIRST equality predicate with an index wins; else the
  // first indexed range predicate; else scan. A rule, not a cost decision.
  int chosen = -1;
  for (size_t i = 0; i < stmt.where.size() && chosen < 0; ++i) {
    const int column = ResolveInTable(left, stmt.where[i].column);
    if (column >= 0 && stmt.where[i].op == exec::CompareOp::kEq &&
        left->HasIndexOn(column)) {
      chosen = static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < stmt.where.size() && chosen < 0; ++i) {
    const int column = ResolveInTable(left, stmt.where[i].column);
    if (column >= 0 && IsRangeOp(stmt.where[i].op) && left->HasIndexOn(column)) {
      chosen = static_cast<int>(i);
    }
  }
  AccessPath access = AccessViaIndex(left, stmt, chosen);
  ctx.explain_lines.push_back(access.description);
  exec::OperatorPtr plan = std::make_unique<exec::RowSourceOp>(
      left->schema(), std::move(access.rows));

  std::set<int> consumed;
  if (access.consumed_predicate >= 0) consumed.insert(access.consumed_predicate);

  if (right != nullptr) {
    IMPLIANCE_ASSIGN_OR_RETURN(ResolvedJoin join,
                               ResolveJoin(left, right, *stmt.join));
    // Rule: top-k query + index on the join column -> IndexedNLJoin.
    if (stmt.limit.has_value() && right->HasIndexOn(join.right_key)) {
      ctx.explain_lines.push_back("IndexedNLJoin(" + right->table_name() + ")");
      plan = std::make_unique<exec::IndexedNLJoinOp>(
          std::move(plan), join.left_key,
          MakeIndexLookup(right, join.right_key), right->schema());
    } else {
      ctx.explain_lines.push_back("HashJoin(build=" + right->table_name() +
                                  ")");
      auto build = std::make_unique<exec::RowSourceOp>(right->schema(),
                                                       right->ScanAll());
      plan = std::make_unique<exec::HashJoinOp>(std::move(plan),
                                                std::move(build),
                                                join.left_key, join.right_key);
    }
  }

  // Residuals in textual order; the adaptive filter reorders at runtime.
  std::vector<int> order;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  IMPLIANCE_ASSIGN_OR_RETURN(
      plan, BuildUpperPlan(&ctx, std::move(plan), std::move(consumed),
                           std::move(order), /*adaptive_filter=*/true));
  return PlanResult{std::move(plan), RenderExplain(ctx.explain_lines)};
}

Result<std::optional<ParallelPlan>> SimplePlanner::PlanParallel(
    const SelectStatement& stmt, const Catalog& catalog) {
  const Table* left = catalog.Lookup(stmt.table);
  if (left == nullptr) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  const Table* right = nullptr;
  std::optional<ResolvedJoin> join;
  if (stmt.join.has_value()) {
    right = catalog.Lookup(stmt.join->table);
    if (right == nullptr) {
      return Status::NotFound("unknown table: " + stmt.join->table);
    }
    IMPLIANCE_ASSIGN_OR_RETURN(ResolvedJoin resolved,
                               ResolveJoin(left, right, *stmt.join));
    // The top-k indexed-NL-join rule stays serial: its benefit is streaming
    // the first rows, and index lookups are not guaranteed thread-safe.
    if (stmt.limit.has_value() && right->HasIndexOn(resolved.right_key)) {
      return std::optional<ParallelPlan>();
    }
    join = resolved;
  }

  PlanContext ctx{stmt, left, right, {}};

  // Same access-path rule as the serial plan.
  int chosen = -1;
  for (size_t i = 0; i < stmt.where.size() && chosen < 0; ++i) {
    const int column = ResolveInTable(left, stmt.where[i].column);
    if (column >= 0 && stmt.where[i].op == exec::CompareOp::kEq &&
        left->HasIndexOn(column)) {
      chosen = static_cast<int>(i);
    }
  }
  for (size_t i = 0; i < stmt.where.size() && chosen < 0; ++i) {
    const int column = ResolveInTable(left, stmt.where[i].column);
    if (column >= 0 && IsRangeOp(stmt.where[i].op) && left->HasIndexOn(column)) {
      chosen = static_cast<int>(i);
    }
  }
  AccessPath access = AccessViaIndex(left, stmt, chosen);
  ctx.explain_lines.push_back(access.description);

  std::set<int> consumed;
  if (access.consumed_predicate >= 0) consumed.insert(access.consumed_predicate);
  std::vector<int> order;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(&ctx, consumed, order, /*adaptive_filter=*/true));

  // Shared build side: constructed once here, probed from every worker.
  std::shared_ptr<const exec::JoinHashTable> table;
  int probe_key = -1;
  if (join.has_value()) {
    exec::RowSourceOp build(right->schema(), right->ScanAll());
    table = exec::JoinHashTable::Build(&build, join->right_key);
    probe_key = join->left_key;
    ctx.explain_lines.push_back("HashProbe(build=" + right->table_name() +
                                ", shared)");
  }
  if (!spec.predicates.empty()) {
    ctx.explain_lines.push_back(
        "AdaptiveFilter(" + std::to_string(spec.predicates.size()) +
        " predicates, per-morsel)");
  }

  ParallelPlan parallel;
  parallel.segment.source_schema = left->schema();
  parallel.segment.source_rows =
      std::make_shared<std::vector<exec::Row>>(std::move(access.rows));

  // Pipeline stacked on each morsel: probe -> filter -> (project when the
  // aggregate does not reshape the rows anyway).
  const bool project_in_pipeline = !spec.has_aggregate && spec.project;
  parallel.segment.make_pipeline =
      [table, probe_key, predicates = spec.predicates,
       project_in_pipeline, columns = spec.project_columns,
       names = spec.project_names](exec::OperatorPtr source) {
        exec::OperatorPtr op = std::move(source);
        if (table != nullptr) {
          op = std::make_unique<exec::HashProbeOp>(std::move(op), table,
                                                   probe_key);
        }
        if (!predicates.empty()) {
          op = std::make_unique<exec::FilterOp>(std::move(op), predicates,
                                                /*adaptive=*/true);
        }
        if (project_in_pipeline) {
          op = std::make_unique<exec::ProjectOp>(std::move(op), columns, names);
        }
        return op;
      };

  // Sink + serial tail over the merged segment output.
  if (spec.has_aggregate) {
    parallel.segment.sink = exec::MorselPlan::Sink::kAggregate;
    parallel.segment.group_columns = spec.group_columns;
    parallel.segment.aggregates = spec.aggregates;
    ctx.explain_lines.push_back(
        "PartialAggregate(groups=" + std::to_string(spec.group_columns.size()) +
        ", aggs=" + std::to_string(spec.aggregates.size()) + ") => Merge");
    // Post-aggregate select-list projection, then order/limit, run serially
    // on the merged groups.
    parallel.tail = [spec](exec::OperatorPtr source) {
      exec::OperatorPtr op = std::make_unique<exec::ProjectOp>(
          std::move(source), spec.project_columns, spec.project_names);
      if (!spec.sort_keys.empty()) {
        if (spec.limit.has_value()) {
          op = std::make_unique<exec::TopKOp>(std::move(op), spec.sort_keys,
                                              *spec.limit);
        } else {
          op = std::make_unique<exec::SortOp>(std::move(op), spec.sort_keys);
        }
      } else if (spec.limit.has_value()) {
        op = std::make_unique<exec::LimitOp>(std::move(op), *spec.limit);
      }
      return op;
    };
  } else if (!spec.sort_keys.empty() && spec.limit.has_value()) {
    parallel.segment.sink = exec::MorselPlan::Sink::kTopK;
    parallel.segment.sort_keys = spec.sort_keys;
    parallel.segment.top_k = *spec.limit;
    ctx.explain_lines.push_back(
        "PartialTopK(k=" + std::to_string(*spec.limit) + ") => Merge");
  } else {
    parallel.segment.sink = exec::MorselPlan::Sink::kCollect;
    ctx.explain_lines.push_back("Collect(morsel order)");
    if (!spec.sort_keys.empty()) {
      ctx.explain_lines.push_back("Sort");
      parallel.tail = [keys = spec.sort_keys](exec::OperatorPtr source) {
        return std::make_unique<exec::SortOp>(std::move(source), keys);
      };
    } else if (spec.limit.has_value()) {
      ctx.explain_lines.push_back("Limit(" + std::to_string(*spec.limit) + ")");
      parallel.tail = [limit = *spec.limit](exec::OperatorPtr source) {
        return std::make_unique<exec::LimitOp>(std::move(source), limit);
      };
    }
  }

  parallel.explain =
      "ParallelMorsels\n" + RenderExplain(ctx.explain_lines);
  return std::optional<ParallelPlan>(std::move(parallel));
}

// -------------------------------------------------------- CostBasedPlanner

double CostBasedPlanner::EstimateSelectivity(const std::string& table,
                                             const WhereClause& clause) const {
  auto it = stats_.find(table);
  if (it == stats_.end()) return 1.0;
  const TableStats& stats = it->second;
  std::string bare = clause.column;
  size_t dot = bare.rfind('.');
  if (dot != std::string::npos) bare = bare.substr(dot + 1);
  auto ndv_it = stats.distinct_values.find(bare);
  const double ndv = ndv_it == stats.distinct_values.end()
                         ? 10.0
                         : static_cast<double>(std::max<size_t>(1, ndv_it->second));
  switch (clause.op) {
    case exec::CompareOp::kEq:
      return 1.0 / ndv;
    case exec::CompareOp::kNe:
      return 1.0 - 1.0 / ndv;
    case exec::CompareOp::kContains:
      return 0.1;
    default:
      return 1.0 / 3.0;  // textbook range guess
  }
}

Result<PlanResult> CostBasedPlanner::Plan(const SelectStatement& stmt,
                                          const Catalog& catalog) {
  const Table* left = catalog.Lookup(stmt.table);
  if (left == nullptr) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  const Table* right = nullptr;
  if (stmt.join.has_value()) {
    right = catalog.Lookup(stmt.join->table);
    if (right == nullptr) {
      return Status::NotFound("unknown table: " + stmt.join->table);
    }
  }

  PlanContext ctx{stmt, left, right, {}};

  auto stats_it = stats_.find(stmt.table);
  const double left_rows = stats_it == stats_.end()
                               ? 1000.0
                               : static_cast<double>(stats_it->second.row_count);

  // Access path: pick the indexed predicate with the LOWEST estimated
  // selectivity, but only if it beats a scan by the classic 10% rule.
  int best = -1;
  double best_selectivity = 0.1;  // index must look at least this selective
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    const int column = ResolveInTable(left, stmt.where[i].column);
    if (column < 0 || !left->HasIndexOn(column)) continue;
    if (stmt.where[i].op != exec::CompareOp::kEq &&
        !IsRangeOp(stmt.where[i].op)) {
      continue;
    }
    const double selectivity = EstimateSelectivity(stmt.table, stmt.where[i]);
    if (selectivity < best_selectivity) {
      best_selectivity = selectivity;
      best = static_cast<int>(i);
    }
  }
  AccessPath access = AccessViaIndex(left, stmt, best);
  ctx.explain_lines.push_back(access.description);
  exec::OperatorPtr plan = std::make_unique<exec::RowSourceOp>(
      left->schema(), std::move(access.rows));

  std::set<int> consumed;
  if (access.consumed_predicate >= 0) consumed.insert(access.consumed_predicate);

  if (right != nullptr) {
    IMPLIANCE_ASSIGN_OR_RETURN(ResolvedJoin join,
                               ResolveJoin(left, right, *stmt.join));
    auto right_stats = stats_.find(stmt.join->table);
    const double right_rows =
        right_stats == stats_.end()
            ? 1000.0
            : static_cast<double>(right_stats->second.row_count);
    // Estimated probe-side cardinality after the access path.
    double probe_estimate = best >= 0 ? left_rows * best_selectivity : left_rows;
    // INLJ costs ~probe * lookup; hash join costs ~build + probe. Use INLJ
    // when probes are (estimated) much cheaper than building.
    if (right->HasIndexOn(join.right_key) && probe_estimate * 4 < right_rows) {
      ctx.explain_lines.push_back("IndexedNLJoin(" + right->table_name() + ")");
      plan = std::make_unique<exec::IndexedNLJoinOp>(
          std::move(plan), join.left_key,
          MakeIndexLookup(right, join.right_key), right->schema());
    } else {
      ctx.explain_lines.push_back("HashJoin(build=" + right->table_name() +
                                  ")");
      auto build = std::make_unique<exec::RowSourceOp>(right->schema(),
                                                       right->ScanAll());
      plan = std::make_unique<exec::HashJoinOp>(std::move(plan),
                                                std::move(build),
                                                join.left_key, join.right_key);
    }
  }

  // Static predicate order by estimated selectivity (most selective first).
  std::vector<int> order;
  for (size_t i = 0; i < stmt.where.size(); ++i) {
    order.push_back(static_cast<int>(i));
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return EstimateSelectivity(stmt.table, stmt.where[a]) <
           EstimateSelectivity(stmt.table, stmt.where[b]);
  });
  IMPLIANCE_ASSIGN_OR_RETURN(
      plan, BuildUpperPlan(&ctx, std::move(plan), std::move(consumed),
                           std::move(order), /*adaptive_filter=*/false));
  return PlanResult{std::move(plan), RenderExplain(ctx.explain_lines)};
}

Result<std::vector<exec::Row>> RunSql(std::string_view sql,
                                      const Catalog& catalog, Planner* planner,
                                      const exec::ExecOptions& options) {
  IMPLIANCE_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  if (options.dop > 1) {
    IMPLIANCE_ASSIGN_OR_RETURN(std::optional<ParallelPlan> parallel,
                               planner->PlanParallel(stmt, catalog));
    if (parallel.has_value()) {
      std::vector<exec::Row> merged =
          exec::ParallelExecutor::Shared().Run(parallel->segment, options);
      if (!parallel->tail) return merged;
      auto source = std::make_unique<exec::RowSourceOp>(
          parallel->segment.OutputSchema(), std::move(merged));
      exec::OperatorPtr tail = parallel->tail(std::move(source));
      return exec::Execute(tail.get());
    }
  }
  IMPLIANCE_ASSIGN_OR_RETURN(PlanResult plan, planner->Plan(stmt, catalog));
  return exec::Execute(plan.root.get());
}

}  // namespace impliance::query
