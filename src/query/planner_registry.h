#ifndef IMPLIANCE_QUERY_PLANNER_REGISTRY_H_
#define IMPLIANCE_QUERY_PLANNER_REGISTRY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "query/opt/stats_cache.h"
#include "query/planner.h"

namespace impliance::query {

// Per-request planner selection. Names:
//   ""  / "default" / "cost" -> CostAwarePlanner over `stats`
//   "simple"                 -> SimplePlanner (paper-faithful baseline)
// Anything else is InvalidArgument. `stats` is borrowed and must outlive
// the returned planner.
Result<std::unique_ptr<Planner>> CreatePlanner(const std::string& name,
                                               opt::TableStatsCache* stats);

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_PLANNER_REGISTRY_H_
