#ifndef IMPLIANCE_QUERY_SQL_PARSER_H_
#define IMPLIANCE_QUERY_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "query/ast.h"

namespace impliance::query {

// Parses the SQL subset described in ast.h. Keywords are case-insensitive;
// string literals use single quotes ('' escapes a quote); numbers may be
// integers or decimals. Traditional SQL "can be mapped to this new query
// interface" (Section 3.2.1) — this is that mapping's front half.
Result<SelectStatement> ParseSql(std::string_view sql);

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_SQL_PARSER_H_
