#ifndef IMPLIANCE_QUERY_PLANNER_H_
#define IMPLIANCE_QUERY_PLANNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "query/ast.h"
#include "query/table.h"

namespace impliance::query {

// One operator in a rendered plan tree, in root-first (pre-order) listing
// order. `depth` gives the tree shape; estimates are the optimizer's — the
// statistics-free SimplePlanner leaves them at 0.
struct ExplainNode {
  uint32_t depth = 0;
  std::string name;    // operator, e.g. "HashJoin"
  std::string detail;  // e.g. "build=customers"
  double est_rows = 0;
  double est_cost = 0;

  bool operator==(const ExplainNode&) const = default;
};

// A compiled query: executable operator tree plus a human-readable plan and
// (when the planner costs its decisions) a structured node listing that
// EXPLAIN ships over the wire.
struct PlanResult {
  exec::OperatorPtr root;
  std::string explain;
  std::vector<ExplainNode> nodes;  // may be empty (SimplePlanner)
};

// A query compiled for morsel-driven parallel execution: the scan / probe /
// filter / partial-aggregate segment runs data-parallel over morsels of the
// base table; `tail` (may be null) is the serial remainder stacked on the
// merged segment output (post-aggregate projection, final sort, limit).
struct ParallelPlan {
  exec::MorselPlan segment;
  std::function<exec::OperatorPtr(exec::OperatorPtr)> tail;
  std::string explain;
};

class Planner {
 public:
  virtual ~Planner() = default;
  virtual Result<PlanResult> Plan(const SelectStatement& stmt,
                                  const Catalog& catalog) = 0;

  // Morsel-parallel compilation; nullopt when the statement's shape (or the
  // planner) requires the serial operator tree. Default: always serial.
  virtual Result<std::optional<ParallelPlan>> PlanParallel(
      const SelectStatement& stmt, const Catalog& catalog) {
    (void)stmt;
    (void)catalog;
    return std::optional<ParallelPlan>();
  }
};

// The paper's planner (Section 3.3): "a simple planner that allows only a
// few limited choices of the underlying physical operators", preferring
// predictable over optimal performance and requiring NO statistics:
//   - access path: an index is used whenever an equality (else range)
//     predicate has one — never a cost decision;
//   - joins: left-deep in textual order; indexed nested-loop when the query
//     is top-k (LIMIT) and the join table has an index on the join column,
//     hash join otherwise;
//   - projection pushdown: scans fetch only the columns the query
//     references (a rule, requiring no statistics);
//   - residual predicates run through the adaptive filter, which reorders
//     itself at runtime instead of consulting statistics.
class SimplePlanner : public Planner {
 public:
  Result<PlanResult> Plan(const SelectStatement& stmt,
                          const Catalog& catalog) override;

  // Parallel variant of the same rules. Returns nullopt for shapes the
  // morsel driver does not cover (the indexed-NL-join top-k rule, whose
  // benefit is streaming the first rows, stays serial).
  Result<std::optional<ParallelPlan>> PlanParallel(
      const SelectStatement& stmt, const Catalog& catalog) override;
};

// Parses and plans `sql`, executes the plan, and returns the rows. With
// options.dop > 1 the planner's PlanParallel shape (when available) runs on
// the shared morsel executor; result rows are identical to the serial plan
// (collects preserve source order, aggregates emit in key order).
Result<std::vector<exec::Row>> RunSql(std::string_view sql,
                                      const Catalog& catalog, Planner* planner,
                                      const exec::ExecOptions& options = {});

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_PLANNER_H_
