#ifndef IMPLIANCE_QUERY_PLANNER_H_
#define IMPLIANCE_QUERY_PLANNER_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "exec/operator.h"
#include "query/ast.h"
#include "query/table.h"

namespace impliance::query {

// A compiled query: executable operator tree plus a human-readable plan.
struct PlanResult {
  exec::OperatorPtr root;
  std::string explain;
};

class Planner {
 public:
  virtual ~Planner() = default;
  virtual Result<PlanResult> Plan(const SelectStatement& stmt,
                                  const Catalog& catalog) = 0;
};

// The paper's planner (Section 3.3): "a simple planner that allows only a
// few limited choices of the underlying physical operators", preferring
// predictable over optimal performance and requiring NO statistics:
//   - access path: an index is used whenever an equality (else range)
//     predicate has one — never a cost decision;
//   - join: indexed nested-loop when the query is top-k (LIMIT) and the
//     right side has an index on the join column, hash join otherwise;
//   - residual predicates run through the adaptive filter, which reorders
//     itself at runtime instead of consulting statistics.
class SimplePlanner : public Planner {
 public:
  Result<PlanResult> Plan(const SelectStatement& stmt,
                          const Catalog& catalog) override;
};

// Conventional cost-based comparator for experiment E2. Decisions use
// registered statistics, which the caller may let go stale — exactly the
// maintenance burden the paper argues against.
class CostBasedPlanner : public Planner {
 public:
  struct TableStats {
    size_t row_count = 0;
    // column name -> number of distinct values.
    std::map<std::string, size_t> distinct_values;
  };

  void SetStats(const std::string& table, TableStats stats) {
    stats_[table] = std::move(stats);
  }

  Result<PlanResult> Plan(const SelectStatement& stmt,
                          const Catalog& catalog) override;

 private:
  double EstimateSelectivity(const std::string& table,
                             const WhereClause& clause) const;

  std::map<std::string, TableStats> stats_;
};

// Parses and plans `sql`, executes the plan, and returns the rows.
Result<std::vector<exec::Row>> RunSql(std::string_view sql,
                                      const Catalog& catalog,
                                      Planner* planner);

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_PLANNER_H_
