#ifndef IMPLIANCE_QUERY_COLUMNAR_TABLE_H_
#define IMPLIANCE_QUERY_COLUMNAR_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "query/table.h"
#include "storage/columnar/column_segment.h"

namespace impliance::query {

// Table backed by columnar segments: appended rows stage in a
// SegmentBuilder and cut into ColumnSegments (dictionary / RLE /
// delta-varint encoded blocks with zone maps) every `segment_rows` rows.
// Scans stream batches straight off the compressed blocks, decode only the
// requested columns, and skip blocks whose zone maps refute a predicate
// hint. No secondary indexes — zone maps are the access-path story here.
class ColumnarTable : public Table {
 public:
  ColumnarTable(std::string name, exec::Schema schema,
                size_t segment_rows = storage::columnar::kSegmentRows,
                size_t block_rows = storage::columnar::kBlockRows);

  void AddRow(exec::Row row);

  const std::string& table_name() const override { return name_; }
  const exec::Schema& schema() const override { return schema_; }
  std::vector<exec::Row> ScanAll() const override;
  bool SupportsZoneMapSkipping() const override { return true; }
  std::optional<ColumnSummary> SummarizeColumn(int column) const override;
  bool HasIndexOn(int column) const override { return false; }
  std::vector<exec::Row> IndexLookup(int column,
                                     const model::Value& value) const override;
  std::vector<exec::Row> IndexRange(int column, const model::Value* lo,
                                    const model::Value* hi) const override;
  size_t RowCount() const override { return row_count_; }
  uint64_t DataVersion() const override { return version_; }

  // Introspection for tests / benches.
  size_t num_segments() const { return segments_.size(); }
  size_t staged_rows() const { return builder_.staged_rows(); }
  // Encoded payload bytes across all segments (tail excluded).
  size_t EncodedBytes() const;
  const storage::columnar::ColumnSegment& segment(size_t i) const {
    return *segments_[i];
  }

 protected:
  exec::BatchSourcePtr ScanBatchesImpl(
      exec::Schema schema, std::vector<int> columns,
      std::vector<exec::Predicate> hints) const override;

 private:
  std::string name_;
  exec::Schema schema_;
  storage::columnar::SegmentBuilder builder_;
  std::vector<std::unique_ptr<storage::columnar::ColumnSegment>> segments_;
  size_t row_count_ = 0;
  uint64_t version_ = 1;
};

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_COLUMNAR_TABLE_H_
