#include "query/planner_registry.h"

#include "query/opt/optimizer.h"

namespace impliance::query {

Result<std::unique_ptr<Planner>> CreatePlanner(const std::string& name,
                                               opt::TableStatsCache* stats) {
  if (name.empty() || name == "default" || name == "cost") {
    return std::unique_ptr<Planner>(new opt::CostAwarePlanner(stats));
  }
  if (name == "simple") {
    return std::unique_ptr<Planner>(new SimplePlanner());
  }
  return Status::InvalidArgument("unknown planner: " + name +
                                 " (expected \"cost\" or \"simple\")");
}

}  // namespace impliance::query
