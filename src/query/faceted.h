#ifndef IMPLIANCE_QUERY_FACETED_H_
#define IMPLIANCE_QUERY_FACETED_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "index/facet_index.h"
#include "index/inverted_index.h"
#include "index/path_index.h"
#include "index/value_index.h"
#include "model/document.h"

namespace impliance::query {

// The out-of-the-box interactive interface (Section 3.2.1): keyword search
// plus faceted drill-down plus OLAP-flavored aggregates over the matching
// set — "brings together keyword search, faceted search, and aspects from
// traditional OLAP".
struct FacetedQuery {
  std::string keywords;                         // optional (empty = all docs)
  std::string kind;                             // optional kind restriction
  // Drill-downs: path -> required value (applied conjunctively).
  std::vector<std::pair<std::string, model::Value>> drilldowns;
  // Facets to count over the matching set.
  std::vector<std::string> facet_paths;
  // Numeric range facets ("guided search" buckets): per path, explicit
  // bucket boundaries [b0, b1), [b1, b2), ... plus an open last bucket.
  struct RangeFacet {
    std::string path;
    std::vector<double> boundaries;  // ascending, at least one
  };
  std::vector<RangeFacet> range_facets;
  // Numeric aggregates over the matching set: path + function name
  // ("sum", "avg", "min", "max", "count").
  std::vector<std::pair<std::string, std::string>> aggregates;
  size_t top_k = 10;
  // When set, only these documents may contribute to the result — the
  // caller's availability set under partial cluster failure. Documents
  // outside it are excluded from candidates, facet counts, and aggregates
  // (the caller reports them as missing rather than silently including a
  // locally-cached ghost of an unreachable partition).
  std::shared_ptr<const std::set<model::DocId>> restrict_to;
};

struct FacetedResult {
  // Matching documents: BM25-ranked when keywords given, id order otherwise.
  std::vector<model::DocId> docs;      // capped at top_k
  size_t total_matches = 0;
  // facet path -> value distribution.
  std::map<std::string, std::vector<index::FacetIndex::FacetCount>> facets;
  // range facet path -> per-bucket counts; bucket i covers
  // [boundaries[i-1], boundaries[i]) with an under-first and over-last
  // bucket, so counts.size() == boundaries.size() + 1.
  struct RangeBucket {
    double lower = 0;  // -inf for the first bucket (lower unused there)
    double upper = 0;  // +inf for the last bucket (upper unused there)
    size_t count = 0;
    bool open_below = false;
    bool open_above = false;
  };
  std::map<std::string, std::vector<RangeBucket>> range_facet_buckets;
  // "<fn>(<path>)" -> value.
  std::map<std::string, double> aggregate_values;
};

class FacetedSearch {
 public:
  // Indexes must outlive this object.
  FacetedSearch(const index::InvertedIndex* inverted,
                const index::PathIndex* paths,
                const index::FacetIndex* facets,
                const index::ValueIndex* values)
      : inverted_(inverted), paths_(paths), facets_(facets), values_(values) {}

  // Facet counts, range buckets, and aggregates are independent read-only
  // scans; with dop > 1 they fan out on the shared morsel-executor pool
  // (at most `dop` in flight). Results are identical at any dop.
  void set_parallelism(size_t dop) { dop_ = dop; }

  FacetedResult Run(const FacetedQuery& query) const;

 private:
  const index::InvertedIndex* inverted_;
  const index::PathIndex* paths_;
  const index::FacetIndex* facets_;
  const index::ValueIndex* values_;
  size_t dop_ = 1;
};

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_FACETED_H_
