#ifndef IMPLIANCE_QUERY_GRAPH_QUERY_H_
#define IMPLIANCE_QUERY_GRAPH_QUERY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "index/join_index.h"
#include "model/document.h"

namespace impliance::query {

// The second, application-facing query interface (Section 3.2.1): "a
// graph-based, web semantics-oriented query interface ... given two pieces
// of data, we should be able to ask how they are connected." Runs over the
// join index populated by ingestion refs and background discovery.
class GraphQuery {
 public:
  // Resolves a doc id to a short human-readable label (kind + key), used by
  // ExplainConnection. May be empty.
  using LabelFn = std::function<std::string(model::DocId)>;

  explicit GraphQuery(const index::JoinIndex* join_index,
                      LabelFn label_fn = nullptr)
      : join_index_(join_index), label_fn_(std::move(label_fn)) {}

  struct Connection {
    std::vector<index::JoinIndex::Edge> edges;
    size_t hops = 0;
  };

  // How are `from` and `to` connected? Shortest undirected relationship
  // chain within `max_depth` hops.
  std::optional<Connection> HowConnected(model::DocId from, model::DocId to,
                                         size_t max_depth = 6) const;

  // Renders a connection as "doc(5) -[references_customer]-> doc(9) ...".
  std::string ExplainConnection(model::DocId from,
                                const Connection& connection) const;

  // Everything within `depth` hops of `seed` (the e-discovery primitive:
  // transitive closure of relationships, Section 2.1.3). With parallelism
  // set, expands each BFS level's frontier fan-out on the shared executor;
  // the visited set (and the returned ascending order) is identical.
  std::vector<model::DocId> RelatedWithin(model::DocId seed,
                                          size_t depth) const;

  // Max concurrent frontier expansions for RelatedWithin (default serial).
  void set_parallelism(size_t dop) { dop_ = dop; }

  // Direct neighbors through a specific relation, either direction.
  std::vector<model::DocId> RelatedBy(model::DocId doc,
                                      std::string_view relation) const;

 private:
  std::string Label(model::DocId doc) const;

  const index::JoinIndex* join_index_;
  LabelFn label_fn_;
  size_t dop_ = 1;
};

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_GRAPH_QUERY_H_
