#ifndef IMPLIANCE_QUERY_TABLE_H_
#define IMPLIANCE_QUERY_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/batch_source.h"
#include "exec/operator.h"
#include "exec/predicate.h"
#include "model/value.h"

namespace impliance::query {

// Exact per-column facts a backend can answer from storage metadata alone
// (columnar backends merge segment zone maps). Exact — never sampled — so
// the statistics collector prefers it over its row sample when present.
struct ColumnSummary {
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  model::Value min;  // Null when every value is null
  model::Value max;
};

// Logical relation the planners access: either a system view over documents
// (bound by the core facade) or an in-memory table (tests, benches,
// baselines). The planner only sees this interface, so plans are identical
// regardless of what backs the data.
class Table {
 public:
  virtual ~Table() = default;

  virtual const std::string& table_name() const = 0;
  virtual const exec::Schema& schema() const = 0;

  // Full scan, materialized.
  virtual std::vector<exec::Row> ScanAll() const = 0;

  // Projection-pushdown scan: rows carrying only `columns` (schema
  // indices), in that order. The default materializes full rows and prunes;
  // backends override it when fetching fewer columns is genuinely cheaper
  // (a document view resolves one path per requested column).
  virtual std::vector<exec::Row> ScanColumns(
      const std::vector<int>& columns) const;

  // Batch-native scan: a pull stream of RowBatch chunks carrying exactly
  // `columns` (schema indices, in that order; empty = all columns in schema
  // order). `hints` are predicates over FULL-schema indices a backend may
  // use to skip storage blocks whose zone maps refute them — hints only
  // shrink the stream, so callers must still re-apply their predicates.
  // Every source is wrapped for observability (scan.* counters plus a
  // `table.scan` trace span); backends implement ScanBatchesImpl.
  exec::BatchSourcePtr ScanBatches(
      std::vector<int> columns,
      std::vector<exec::Predicate> hints = {}) const;

  // True when ScanBatches can skip blocks from zone maps, so the planner
  // should discount scan cost by predicate selectivity.
  virtual bool SupportsZoneMapSkipping() const { return false; }

  // Exact column facts from storage metadata, or nullopt when the backend
  // keeps none (the stats collector then falls back to sampling).
  virtual std::optional<ColumnSummary> SummarizeColumn(int column) const {
    return std::nullopt;
  }

  virtual bool HasIndexOn(int column) const = 0;

  // Rows whose `column` equals `value`. Only valid if HasIndexOn(column).
  virtual std::vector<exec::Row> IndexLookup(int column,
                                             const model::Value& value) const = 0;

  // Rows with `column` in [lo, hi] (nullptr = unbounded).
  virtual std::vector<exec::Row> IndexRange(int column, const model::Value* lo,
                                            const model::Value* hi) const = 0;

  // True cardinality (the simple planner never asks; the cost-aware planner
  // reads it through the TableStatsCache).
  virtual size_t RowCount() const = 0;

  // Monotone change counter: any mutation of the backing data bumps it.
  // The statistics cache recomputes a table's stats iff the version moved
  // since the last collection, so cached stats can never silently go
  // stale. 0 (the default) means "no change tracking" — stats callers
  // must then treat every read as potentially stale.
  virtual uint64_t DataVersion() const { return 0; }

 protected:
  // Backend hook behind ScanBatches. `columns` is already normalized
  // (never empty; explicit schema indices) and `schema` is the projected
  // schema over them. The default materializes ScanAll and prunes while
  // batching; backends override when they can stream or skip.
  virtual exec::BatchSourcePtr ScanBatchesImpl(
      exec::Schema schema, std::vector<int> columns,
      std::vector<exec::Predicate> hints) const;
};

// Vector-backed table with optional per-column hash + ordered indexes.
class MemTable : public Table {
 public:
  MemTable(std::string name, exec::Schema schema);

  void AddRow(exec::Row row);
  // Builds (or rebuilds) an index on `column`.
  void BuildIndex(int column);

  const std::string& table_name() const override { return name_; }
  const exec::Schema& schema() const override { return schema_; }
  std::vector<exec::Row> ScanAll() const override { return rows_; }
  bool HasIndexOn(int column) const override {
    return indexes_.count(column) > 0;
  }
  std::vector<exec::Row> IndexLookup(int column,
                                     const model::Value& value) const override;
  std::vector<exec::Row> IndexRange(int column, const model::Value* lo,
                                    const model::Value* hi) const override;
  size_t RowCount() const override { return rows_.size(); }
  uint64_t DataVersion() const override { return version_; }

 protected:
  // Streams straight off rows_ (no vector copy, unlike ScanAll).
  exec::BatchSourcePtr ScanBatchesImpl(
      exec::Schema schema, std::vector<int> columns,
      std::vector<exec::Predicate> hints) const override;

 private:
  std::string name_;
  exec::Schema schema_;
  std::vector<exec::Row> rows_;
  // column -> ordered multimap value -> row indices.
  std::map<int, std::multimap<model::Value, size_t>> indexes_;
  uint64_t version_ = 1;
};

// Name -> table registry handed to the planner.
class Catalog {
 public:
  void Register(std::shared_ptr<const Table> table);
  const Table* Lookup(std::string_view name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::shared_ptr<const Table>, std::less<>> tables_;
};

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_TABLE_H_
