#include "query/sql_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace impliance::query {

namespace {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kSymbol,  // , ( ) = != < <= > >= *
  kEnd,
};

struct SqlToken {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifiers lowercased; symbols verbatim
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<SqlToken>> Lex() {
    std::vector<SqlToken> tokens;
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdentifier());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        tokens.push_back(LexNumber());
      } else if (c == '\'') {
        IMPLIANCE_ASSIGN_OR_RETURN(SqlToken token, LexString());
        tokens.push_back(std::move(token));
      } else {
        IMPLIANCE_ASSIGN_OR_RETURN(SqlToken token, LexSymbol());
        tokens.push_back(std::move(token));
      }
    }
    tokens.push_back(SqlToken{TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  SqlToken LexIdentifier() {
    const size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_' || input_[pos_] == '.')) {
      ++pos_;
    }
    return SqlToken{TokenKind::kIdentifier,
                    ToLower(input_.substr(start, pos_ - start))};
  }

  SqlToken LexNumber() {
    const size_t start = pos_;
    if (input_[pos_] == '-') ++pos_;
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.')) {
      ++pos_;
    }
    return SqlToken{TokenKind::kNumber,
                    std::string(input_.substr(start, pos_ - start))};
  }

  Result<SqlToken> LexString() {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '\'') {
        if (pos_ < input_.size() && input_[pos_] == '\'') {
          text.push_back('\'');
          ++pos_;
        } else {
          return SqlToken{TokenKind::kString, std::move(text)};
        }
      } else {
        text.push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<SqlToken> LexSymbol() {
    char c = input_[pos_];
    switch (c) {
      case ',':
      case '(':
      case ')':
      case '*':
      case '=':
        ++pos_;
        return SqlToken{TokenKind::kSymbol, std::string(1, c)};
      case '!':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          return SqlToken{TokenKind::kSymbol, "!="};
        }
        return Status::InvalidArgument("unexpected '!'");
      case '<':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          return SqlToken{TokenKind::kSymbol, "<="};
        }
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
          pos_ += 2;
          return SqlToken{TokenKind::kSymbol, "!="};
        }
        ++pos_;
        return SqlToken{TokenKind::kSymbol, "<"};
      case '>':
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
          pos_ += 2;
          return SqlToken{TokenKind::kSymbol, ">="};
        }
        ++pos_;
        return SqlToken{TokenKind::kSymbol, ">"};
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' in SQL");
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<SqlToken> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    if (!ConsumeKeyword("select")) return Error("expected SELECT");
    IMPLIANCE_RETURN_IF_ERROR(ParseSelectList(&stmt));
    if (!ConsumeKeyword("from")) return Error("expected FROM");
    IMPLIANCE_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    while (ConsumeKeyword("join")) {
      IMPLIANCE_RETURN_IF_ERROR(ParseJoin(&stmt));
    }
    if (ConsumeKeyword("where")) {
      IMPLIANCE_RETURN_IF_ERROR(ParseWhere(&stmt));
    }
    if (ConsumeKeyword("group")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after GROUP");
      IMPLIANCE_RETURN_IF_ERROR(ParseColumnList(&stmt.group_by));
    }
    if (ConsumeKeyword("order")) {
      if (!ConsumeKeyword("by")) return Error("expected BY after ORDER");
      IMPLIANCE_RETURN_IF_ERROR(ParseOrderBy(&stmt));
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != TokenKind::kNumber) return Error("expected limit count");
      stmt.limit = static_cast<size_t>(std::stoull(Next().text));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing tokens near '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("SQL parse error: " + message);
  }

  const SqlToken& Peek() const { return tokens_[pos_]; }
  const SqlToken& Next() { return tokens_[pos_++]; }

  bool ConsumeKeyword(std::string_view keyword) {
    if (Peek().kind == TokenKind::kIdentifier && Peek().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(std::string_view symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what + ", got '" + Peek().text + "'");
    }
    return Next().text;
  }

  static bool AggName(const std::string& name, exec::AggFn* fn) {
    if (name == "count") *fn = exec::AggFn::kCount;
    else if (name == "sum") *fn = exec::AggFn::kSum;
    else if (name == "avg") *fn = exec::AggFn::kAvg;
    else if (name == "min") *fn = exec::AggFn::kMin;
    else if (name == "max") *fn = exec::AggFn::kMax;
    else return false;
    return true;
  }

  Status ParseSelectList(SelectStatement* stmt) {
    while (true) {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else {
        IMPLIANCE_ASSIGN_OR_RETURN(std::string name,
                                   ExpectIdentifier("select item"));
        exec::AggFn fn;
        if (AggName(name, &fn) && ConsumeSymbol("(")) {
          item.kind = SelectItem::Kind::kAggregate;
          item.agg_fn = fn;
          if (ConsumeSymbol("*")) {
            if (fn != exec::AggFn::kCount) {
              return Error("only COUNT(*) supports *");
            }
          } else {
            IMPLIANCE_ASSIGN_OR_RETURN(item.column,
                                       ExpectIdentifier("aggregate column"));
          }
          if (!ConsumeSymbol(")")) return Error("expected ')'");
          item.alias = name + (item.column.empty() ? "" : "_" + item.column);
        } else {
          item.kind = SelectItem::Kind::kColumn;
          item.column = name;
          item.alias = name;
        }
        if (ConsumeKeyword("as")) {
          IMPLIANCE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        }
      }
      stmt->items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseJoin(SelectStatement* stmt) {
    JoinClause join;
    IMPLIANCE_ASSIGN_OR_RETURN(join.table, ExpectIdentifier("join table"));
    if (!ConsumeKeyword("on")) return Error("expected ON");
    IMPLIANCE_ASSIGN_OR_RETURN(std::string lhs, ExpectIdentifier("join column"));
    if (!ConsumeSymbol("=")) return Error("expected '=' in join condition");
    IMPLIANCE_ASSIGN_OR_RETURN(std::string rhs, ExpectIdentifier("join column"));
    // Assign sides by qualifier if present: "<join.table>.x" is the right.
    auto belongs_to_join = [&join](const std::string& name) {
      return name.rfind(join.table + ".", 0) == 0;
    };
    if (belongs_to_join(lhs) && !belongs_to_join(rhs)) {
      join.left_column = rhs;
      join.right_column = lhs;
    } else {
      join.left_column = lhs;
      join.right_column = rhs;
    }
    stmt->joins.push_back(std::move(join));
    return Status::OK();
  }

  Status ParseWhere(SelectStatement* stmt) {
    while (true) {
      WhereClause clause;
      IMPLIANCE_ASSIGN_OR_RETURN(clause.column,
                                 ExpectIdentifier("where column"));
      if (ConsumeKeyword("contains")) {
        clause.op = exec::CompareOp::kContains;
      } else if (Peek().kind == TokenKind::kSymbol) {
        const std::string symbol = Next().text;
        if (symbol == "=") clause.op = exec::CompareOp::kEq;
        else if (symbol == "!=") clause.op = exec::CompareOp::kNe;
        else if (symbol == "<") clause.op = exec::CompareOp::kLt;
        else if (symbol == "<=") clause.op = exec::CompareOp::kLe;
        else if (symbol == ">") clause.op = exec::CompareOp::kGt;
        else if (symbol == ">=") clause.op = exec::CompareOp::kGe;
        else return Error("unsupported operator '" + symbol + "'");
      } else {
        return Error("expected comparison operator");
      }
      // Literal.
      if (Peek().kind == TokenKind::kNumber) {
        clause.literal = model::ParseValue(Next().text);
      } else if (Peek().kind == TokenKind::kString) {
        // Dates in quotes become timestamps; everything else stays string.
        clause.literal = model::ParseValue(Next().text);
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 (Peek().text == "true" || Peek().text == "false" ||
                  Peek().text == "null")) {
        clause.literal = model::ParseValue(Next().text);
      } else {
        return Error("expected literal, got '" + Peek().text + "'");
      }
      stmt->where.push_back(std::move(clause));
      if (!ConsumeKeyword("and")) break;
    }
    return Status::OK();
  }

  Status ParseColumnList(std::vector<std::string>* columns) {
    while (true) {
      IMPLIANCE_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column"));
      columns->push_back(std::move(name));
      if (!ConsumeSymbol(",")) break;
    }
    return Status::OK();
  }

  Status ParseOrderBy(SelectStatement* stmt) {
    while (true) {
      OrderItem item;
      IMPLIANCE_ASSIGN_OR_RETURN(item.column,
                                 ExpectIdentifier("order column"));
      if (ConsumeKeyword("desc")) {
        item.ascending = false;
      } else {
        ConsumeKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    return Status::OK();
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSql(std::string_view sql) {
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, Lexer(sql).Lex());
  return Parser(std::move(tokens)).Parse();
}

}  // namespace impliance::query
