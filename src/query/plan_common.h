#ifndef IMPLIANCE_QUERY_PLAN_COMMON_H_
#define IMPLIANCE_QUERY_PLAN_COMMON_H_

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/operators.h"
#include "query/ast.h"
#include "query/planner.h"
#include "query/table.h"

// Shared multi-table plan-building machinery used by both SimplePlanner and
// the cost-aware optimizer: binding tables and join keys, projection-pushdown
// column selection, name resolution over (possibly pruned) schemas, and the
// resolution/construction of everything above the joins (residual filter,
// aggregate, select-list projection, order/limit). Keeping one copy here is
// what guarantees the two planners cannot drift semantically — they differ
// only in access-path, join-order, and join-method decisions.
namespace impliance::query::planning {

bool IsRangeOp(exec::CompareOp op);

// Resolution of a column name against ONE table's full schema: accepts the
// bare column name or "<table>.<column>"; -1 when it does not resolve here.
int ResolveInTable(const Table* table, const std::string& name);

// A table bound into a plan together with its projection-pushdown column
// subset. `kept` holds full-schema indices in ascending order; `schema` is
// the pruned schema over exactly those columns.
struct BoundTable {
  const Table* table = nullptr;
  std::vector<int> kept;
  exec::Schema schema;

  bool pruned() const { return kept.size() < table->schema().size(); }
  // Position of full-schema column `column` within `kept`, or -1.
  int KeptIndexOf(int column) const;
  // Rows carrying only the kept columns, streamed through the table's
  // batch scan. `hints` (predicates over FULL-schema indices) let
  // zone-mapped backends skip blocks; they only shrink the stream, so the
  // caller still applies its filters to the result.
  std::vector<exec::Row> ScanKept(
      const std::vector<exec::Predicate>& hints = {}) const;
};

BoundTable MakeBoundTable(const Table* table, std::vector<int> kept);

// One resolved join edge: connects the JOIN clause's table
// (`right_table`, always clause index + 1 in textual order) to some
// earlier table through full-schema key columns.
struct BoundJoin {
  int left_table = 0;
  int right_table = 0;
  int left_column = -1;   // full-schema index in tables[left_table]
  int right_column = -1;  // full-schema index in tables[right_table]
};

// Looks up the FROM table and every JOIN table, in textual order.
Result<std::vector<const Table*>> BindTables(const SelectStatement& stmt,
                                             const Catalog& catalog);

// Resolves every join clause against the bound tables. The JOIN side is
// always the clause's own table; the other side may live in any earlier
// table (first match in textual order; the parser's left/right assignment
// is heuristic, so both orientations are tried).
Result<std::vector<BoundJoin>> BindJoins(const SelectStatement& stmt,
                                         const std::vector<const Table*>& tables);

// Projection pushdown: computes, per table, the full-schema columns the
// query actually references (select list, WHERE, join keys, GROUP BY,
// ORDER BY). SELECT * keeps everything; tables flagged in `keep_all` keep
// everything regardless (index lookups return full rows, so an
// IndexedNLJoin build side cannot be pruned). A bare name that exists in
// several tables is kept only where the combined-schema resolution binds
// it, preserving first-occurrence-wins semantics after pruning.
// Unresolvable names are ignored here — ResolveUpper reports them.
std::vector<BoundTable> BindColumns(const SelectStatement& stmt,
                                    const std::vector<const Table*>& tables,
                                    const std::vector<BoundJoin>& joins,
                                    const std::vector<bool>& keep_all);

// Prunes materialized full-schema rows in place to `bound.kept` (no-op when
// the table is unpruned).
void PruneRows(const BoundTable& bound, std::vector<exec::Row>* rows);

// Column resolution over the combined (joined) schema: the concatenation of
// the bound tables' pruned schemas in the given order. Qualified names match
// the owning table's columns; bare names match the first occurrence across
// the whole combined schema.
class NameResolver {
 public:
  explicit NameResolver(const std::vector<BoundTable>* tables);

  // Index in the combined schema, or -1.
  int Resolve(const std::string& name) const;
  // (table index, position within that table's kept columns), or (-1, -1).
  std::pair<int, int> Locate(const std::string& name) const;
  // Combined-schema offset of `table_index`'s first column.
  int Offset(int table_index) const { return offsets_[table_index]; }
  // Unqualified output name for the combined schema position.
  const std::string& NameAt(int index) const { return names_[index]; }
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::string> qualified_;
  std::vector<std::pair<int, int>> located_;  // (table, kept position)
  std::vector<int> offsets_;
};

// Everything above the access path / join, fully resolved against schemas
// but not yet bound to operators. One resolution feeds the serial operator
// tree, the morsel-parallel segment, and the optimizer's costed tree, so
// the paths cannot drift semantically.
struct UpperPlanSpec {
  std::vector<exec::Predicate> predicates;  // residual, in evaluation order
  bool adaptive_filter = false;

  bool has_aggregate = false;
  std::vector<int> group_columns;
  std::vector<exec::AggSpec> aggregates;

  // Projection onto the select list: after the aggregate when present,
  // directly on the join/filter output otherwise. false => SELECT *.
  bool project = false;
  std::vector<int> project_columns;
  std::vector<std::string> project_names;

  // Resolved against the final (projected) schema.
  std::vector<exec::SortKey> sort_keys;
  std::optional<size_t> limit;
};

// Resolves residual filter, aggregate, projection, and order/limit against
// the combined schema. `consumed_predicates` (indices into stmt.where) were
// absorbed by an access path or pushed below a join; `filter_order` gives
// the residual evaluation order.
Result<UpperPlanSpec> ResolveUpper(const SelectStatement& stmt,
                                   const NameResolver& resolver,
                                   const std::set<int>& consumed_predicates,
                                   const std::vector<int>& filter_order,
                                   bool adaptive_filter);

// Stacks the resolved upper plan onto `plan` as serial batched operators,
// appending bottom-up explain lines to `explain_lines`.
exec::OperatorPtr BuildSerialUpper(const UpperPlanSpec& spec,
                                   exec::OperatorPtr plan,
                                   std::vector<std::string>* explain_lines);

// Attaches the spec's sink + serial tail to a morsel-parallel plan (partial
// aggregate / partial top-k / collect, then the serial remainder). The
// caller's make_pipeline must already handle probes, residual filters, and —
// when `!spec.has_aggregate && spec.project` — the select-list projection.
void AttachParallelUpper(const UpperPlanSpec& spec, ParallelPlan* parallel,
                         std::vector<std::string>* explain_lines);

std::string RenderExplain(const std::vector<std::string>& lines);

// Shared lookup-callback builder for IndexedNLJoin. `column` is a
// full-schema index (index lookups return full rows).
exec::IndexedNLJoinOp::LookupFn MakeIndexLookup(const Table* table,
                                                int column);

// One index-backed (or degenerate) fetch of base rows. Strict range bounds
// stay residual: Table::IndexRange is inclusive, so kGt/kLt fetch the
// inclusive superset and report consumed=false.
struct IndexFetch {
  std::vector<exec::Row> rows;  // FULL-schema rows
  std::string description;
  bool consumed = false;  // predicate fully absorbed by the fetch
};

IndexFetch FetchViaIndex(const Table* table, const std::string& display_name,
                         int column, exec::CompareOp op,
                         const model::Value& literal);

}  // namespace impliance::query::planning

#endif  // IMPLIANCE_QUERY_PLAN_COMMON_H_
