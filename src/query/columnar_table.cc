#include "query/columnar_table.h"

#include "common/logging.h"

namespace impliance::query {

namespace columnar = storage::columnar;

ColumnarTable::ColumnarTable(std::string name, exec::Schema schema,
                             size_t segment_rows, size_t block_rows)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      builder_(schema_.size(), segment_rows, block_rows) {}

void ColumnarTable::AddRow(exec::Row row) {
  IMPLIANCE_CHECK(row.size() == schema_.size());
  if (auto segment = builder_.Append(row)) {
    segments_.push_back(std::move(segment));
  }
  ++row_count_;
  ++version_;
}

std::vector<exec::Row> ColumnarTable::ScanAll() const {
  exec::BatchSourcePtr source = ScanBatches({});
  return exec::DrainBatchSource(source.get());
}

std::optional<ColumnSummary> ColumnarTable::SummarizeColumn(int column) const {
  if (column < 0 || static_cast<size_t>(column) >= schema_.size()) {
    return std::nullopt;
  }
  columnar::ZoneMap zone;
  for (const auto& segment : segments_) {
    zone.Merge(segment->columns[column].zone);
  }
  for (const model::Value& value : builder_.staged()[column]) zone.Note(value);
  ColumnSummary summary;
  summary.row_count = zone.row_count;
  summary.null_count = zone.null_count;
  summary.min = zone.min;
  summary.max = zone.max;
  return summary;
}

std::vector<exec::Row> ColumnarTable::IndexLookup(
    int column, const model::Value& value) const {
  (void)column;
  (void)value;
  return {};  // HasIndexOn is always false; the planner never gets here
}

std::vector<exec::Row> ColumnarTable::IndexRange(int column,
                                                 const model::Value* lo,
                                                 const model::Value* hi) const {
  (void)column;
  (void)lo;
  (void)hi;
  return {};
}

size_t ColumnarTable::EncodedBytes() const {
  size_t bytes = 0;
  for (const auto& segment : segments_) bytes += segment->EncodedBytes();
  return bytes;
}

exec::BatchSourcePtr ColumnarTable::ScanBatchesImpl(
    exec::Schema schema, std::vector<int> columns,
    std::vector<exec::Predicate> hints) const {
  return std::make_unique<columnar::ColumnarBatchSource>(
      std::move(schema), &segments_, &builder_.staged(), builder_.staged_rows(),
      std::move(columns), std::move(hints));
}

}  // namespace impliance::query
