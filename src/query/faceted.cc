#include "query/faceted.h"

#include <algorithm>
#include <functional>

#include "exec/parallel.h"

namespace impliance::query {

FacetedResult FacetedSearch::Run(const FacetedQuery& query) const {
  FacetedResult result;

  // 1. Candidate set. Keywords -> ranked; else all docs of the kind (or all
  // docs with any indexed path).
  std::vector<model::DocId> candidates;          // sorted by id
  std::vector<model::DocId> ranked;              // keyword order
  if (!query.keywords.empty()) {
    for (const auto& hit :
         inverted_->Search(query.keywords, static_cast<size_t>(-1))) {
      ranked.push_back(hit.doc);
    }
    candidates = ranked;
    std::sort(candidates.begin(), candidates.end());
  } else if (!query.kind.empty()) {
    candidates = paths_->DocsOfKind(query.kind);
  } else {
    for (const std::string& kind : paths_->Kinds()) {
      std::vector<model::DocId> docs = paths_->DocsOfKind(kind);
      candidates.insert(candidates.end(), docs.begin(), docs.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }

  // 2. Kind restriction when keywords were also given.
  if (!query.keywords.empty() && !query.kind.empty()) {
    std::vector<model::DocId> of_kind = paths_->DocsOfKind(query.kind);
    std::vector<model::DocId> merged;
    std::set_intersection(candidates.begin(), candidates.end(),
                          of_kind.begin(), of_kind.end(),
                          std::back_inserter(merged));
    candidates = std::move(merged);
  }

  // 2b. Availability restriction: drop candidates the caller knows it
  // cannot legitimately serve, before any counting happens.
  if (query.restrict_to != nullptr) {
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&query](model::DocId doc) {
                         return query.restrict_to->count(doc) == 0;
                       }),
        candidates.end());
  }

  // 3. Drill-downs.
  for (const auto& [path, value] : query.drilldowns) {
    candidates = facets_->Restrict(path, value, candidates);
  }
  result.total_matches = candidates.size();

  // 4. Top-k results. Preserve keyword ranking when present.
  if (!ranked.empty()) {
    std::vector<model::DocId> kept(candidates.begin(), candidates.end());
    std::sort(kept.begin(), kept.end());
    for (model::DocId doc : ranked) {
      if (std::binary_search(kept.begin(), kept.end(), doc)) {
        result.docs.push_back(doc);
        if (result.docs.size() >= query.top_k) break;
      }
    }
  } else {
    for (model::DocId doc : candidates) {
      result.docs.push_back(doc);
      if (result.docs.size() >= query.top_k) break;
    }
  }

  // 5/5b/6. Facet counts, range buckets, and aggregates are independent
  // read-only scans over the (now immutable) candidate set; fan them out
  // with at most dop_ in flight, each writing its own slot, then fold the
  // slots into the result maps serially.
  std::vector<std::vector<index::FacetIndex::FacetCount>> facet_slots(
      query.facet_paths.size());
  std::vector<std::vector<FacetedResult::RangeBucket>> range_slots(
      query.range_facets.size());
  std::vector<double> aggregate_slots(query.aggregates.size());
  std::vector<std::function<void()>> tasks;

  // 5. Facet counts over the full matching set (not just top-k).
  for (size_t i = 0; i < query.facet_paths.size(); ++i) {
    tasks.push_back([this, &query, &candidates, &facet_slots, i] {
      facet_slots[i] = facets_->CountFacet(query.facet_paths[i], candidates, 20);
    });
  }

  // 5b. Numeric range facets: bucketize each candidate's value at the
  // path via one ordered scan of the value index.
  for (size_t i = 0; i < query.range_facets.size(); ++i) {
    tasks.push_back([this, &query, &candidates, &range_slots, i] {
      const FacetedQuery::RangeFacet& range = query.range_facets[i];
      if (range.boundaries.empty()) return;
      std::vector<FacetedResult::RangeBucket> buckets(range.boundaries.size() +
                                                      1);
      buckets.front().open_below = true;
      buckets.front().upper = range.boundaries.front();
      for (size_t b = 1; b < range.boundaries.size(); ++b) {
        buckets[b].lower = range.boundaries[b - 1];
        buckets[b].upper = range.boundaries[b];
      }
      buckets.back().lower = range.boundaries.back();
      buckets.back().open_above = true;
      values_->Scan(range.path,
                    [&](const model::Value& value, model::DocId doc) {
                      if (!std::binary_search(candidates.begin(),
                                              candidates.end(), doc)) {
                        return true;
                      }
                      const double v = value.AsDouble();
                      size_t bucket = 0;
                      while (bucket < range.boundaries.size() &&
                             v >= range.boundaries[bucket]) {
                        ++bucket;
                      }
                      ++buckets[bucket].count;
                      return true;
                    });
      range_slots[i] = std::move(buckets);
    });
  }

  // 6. Aggregates over the matching set via the value index.
  for (size_t i = 0; i < query.aggregates.size(); ++i) {
    tasks.push_back([this, &query, &candidates, &aggregate_slots, i] {
      const auto& [path, fn] = query.aggregates[i];
      double sum = 0, min = 0, max = 0;
      size_t count = 0;
      values_->Scan(path, [&](const model::Value& value, model::DocId doc) {
        if (!std::binary_search(candidates.begin(), candidates.end(), doc)) {
          return true;
        }
        const double v = value.AsDouble();
        if (count == 0) {
          min = v;
          max = v;
        } else {
          min = std::min(min, v);
          max = std::max(max, v);
        }
        sum += v;
        ++count;
        return true;
      });
      if (fn == "sum") {
        aggregate_slots[i] = sum;
      } else if (fn == "avg") {
        aggregate_slots[i] = count == 0 ? 0.0 : sum / count;
      } else if (fn == "min") {
        aggregate_slots[i] = min;
      } else if (fn == "max") {
        aggregate_slots[i] = max;
      } else {
        aggregate_slots[i] = static_cast<double>(count);
      }
    });
  }

  exec::ParallelExecutor::Shared().RunTasks(std::move(tasks), dop_);

  for (size_t i = 0; i < query.facet_paths.size(); ++i) {
    result.facets[query.facet_paths[i]] = std::move(facet_slots[i]);
  }
  for (size_t i = 0; i < query.range_facets.size(); ++i) {
    if (query.range_facets[i].boundaries.empty()) continue;
    result.range_facet_buckets[query.range_facets[i].path] =
        std::move(range_slots[i]);
  }
  for (size_t i = 0; i < query.aggregates.size(); ++i) {
    const auto& [path, fn] = query.aggregates[i];
    result.aggregate_values[fn + "(" + path + ")"] = aggregate_slots[i];
  }
  return result;
}

}  // namespace impliance::query
