#include "query/faceted.h"

#include <algorithm>

namespace impliance::query {

FacetedResult FacetedSearch::Run(const FacetedQuery& query) const {
  FacetedResult result;

  // 1. Candidate set. Keywords -> ranked; else all docs of the kind (or all
  // docs with any indexed path).
  std::vector<model::DocId> candidates;          // sorted by id
  std::vector<model::DocId> ranked;              // keyword order
  if (!query.keywords.empty()) {
    for (const auto& hit :
         inverted_->Search(query.keywords, static_cast<size_t>(-1))) {
      ranked.push_back(hit.doc);
    }
    candidates = ranked;
    std::sort(candidates.begin(), candidates.end());
  } else if (!query.kind.empty()) {
    candidates = paths_->DocsOfKind(query.kind);
  } else {
    for (const std::string& kind : paths_->Kinds()) {
      std::vector<model::DocId> docs = paths_->DocsOfKind(kind);
      candidates.insert(candidates.end(), docs.begin(), docs.end());
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }

  // 2. Kind restriction when keywords were also given.
  if (!query.keywords.empty() && !query.kind.empty()) {
    std::vector<model::DocId> of_kind = paths_->DocsOfKind(query.kind);
    std::vector<model::DocId> merged;
    std::set_intersection(candidates.begin(), candidates.end(),
                          of_kind.begin(), of_kind.end(),
                          std::back_inserter(merged));
    candidates = std::move(merged);
  }

  // 3. Drill-downs.
  for (const auto& [path, value] : query.drilldowns) {
    candidates = facets_->Restrict(path, value, candidates);
  }
  result.total_matches = candidates.size();

  // 4. Top-k results. Preserve keyword ranking when present.
  if (!ranked.empty()) {
    std::vector<model::DocId> kept(candidates.begin(), candidates.end());
    std::sort(kept.begin(), kept.end());
    for (model::DocId doc : ranked) {
      if (std::binary_search(kept.begin(), kept.end(), doc)) {
        result.docs.push_back(doc);
        if (result.docs.size() >= query.top_k) break;
      }
    }
  } else {
    for (model::DocId doc : candidates) {
      result.docs.push_back(doc);
      if (result.docs.size() >= query.top_k) break;
    }
  }

  // 5. Facet counts over the full matching set (not just top-k).
  for (const std::string& path : query.facet_paths) {
    result.facets[path] = facets_->CountFacet(path, candidates, 20);
  }

  // 5b. Numeric range facets: bucketize each candidate's value at the
  // path via one ordered scan of the value index.
  for (const FacetedQuery::RangeFacet& range : query.range_facets) {
    if (range.boundaries.empty()) continue;
    std::vector<FacetedResult::RangeBucket> buckets(range.boundaries.size() +
                                                    1);
    buckets.front().open_below = true;
    buckets.front().upper = range.boundaries.front();
    for (size_t i = 1; i < range.boundaries.size(); ++i) {
      buckets[i].lower = range.boundaries[i - 1];
      buckets[i].upper = range.boundaries[i];
    }
    buckets.back().lower = range.boundaries.back();
    buckets.back().open_above = true;
    values_->Scan(range.path,
                  [&](const model::Value& value, model::DocId doc) {
                    if (!std::binary_search(candidates.begin(),
                                            candidates.end(), doc)) {
                      return true;
                    }
                    const double v = value.AsDouble();
                    size_t bucket = 0;
                    while (bucket < range.boundaries.size() &&
                           v >= range.boundaries[bucket]) {
                      ++bucket;
                    }
                    ++buckets[bucket].count;
                    return true;
                  });
    result.range_facet_buckets[range.path] = std::move(buckets);
  }

  // 6. Aggregates over the matching set via the value index.
  for (const auto& [path, fn] : query.aggregates) {
    double sum = 0, min = 0, max = 0;
    size_t count = 0;
    values_->Scan(path, [&](const model::Value& value, model::DocId doc) {
      if (!std::binary_search(candidates.begin(), candidates.end(), doc)) {
        return true;
      }
      const double v = value.AsDouble();
      if (count == 0) {
        min = v;
        max = v;
      } else {
        min = std::min(min, v);
        max = std::max(max, v);
      }
      sum += v;
      ++count;
      return true;
    });
    const std::string label = fn + "(" + path + ")";
    if (fn == "sum") {
      result.aggregate_values[label] = sum;
    } else if (fn == "avg") {
      result.aggregate_values[label] = count == 0 ? 0.0 : sum / count;
    } else if (fn == "min") {
      result.aggregate_values[label] = min;
    } else if (fn == "max") {
      result.aggregate_values[label] = max;
    } else {
      result.aggregate_values[label] = static_cast<double>(count);
    }
  }
  return result;
}

}  // namespace impliance::query
