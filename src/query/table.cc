#include "query/table.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace impliance::query {

namespace {

// Wraps every table scan stream: accumulates ScanStats into the global
// scan.* counters (surfaced through the wire protocol's kStats op) and
// records one `table.scan` span over the stream's lifetime. Flushes once —
// at end-of-stream or on destruction, whichever comes first — so an
// abandoned scan (LIMIT satisfied early) is still accounted.
class MeteredBatchSource : public exec::BatchSource {
 public:
  explicit MeteredBatchSource(exec::BatchSourcePtr inner)
      : inner_(std::move(inner)), span_("table.scan") {}
  ~MeteredBatchSource() override { Flush(); }

  const exec::Schema& schema() const override { return inner_->schema(); }
  bool NextBatch(exec::RowBatch* batch) override {
    const bool more = inner_->NextBatch(batch);
    if (!more) Flush();
    return more;
  }
  uint64_t EstimatedRows() const override { return inner_->EstimatedRows(); }
  exec::ScanStats stats() const override { return inner_->stats(); }

 private:
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    static obs::Counter* segments_visited =
        obs::Registry::Global().GetCounter("scan.segments_visited");
    static obs::Counter* segments_skipped =
        obs::Registry::Global().GetCounter("scan.segments_skipped");
    static obs::Counter* blocks_decoded =
        obs::Registry::Global().GetCounter("scan.blocks_decoded");
    static obs::Counter* blocks_skipped =
        obs::Registry::Global().GetCounter("scan.blocks_skipped");
    static obs::Counter* rows_decoded =
        obs::Registry::Global().GetCounter("scan.rows_decoded");
    const exec::ScanStats s = inner_->stats();
    segments_visited->Increment(s.segments_visited);
    segments_skipped->Increment(s.segments_skipped);
    blocks_decoded->Increment(s.blocks_decoded);
    blocks_skipped->Increment(s.blocks_skipped);
    rows_decoded->Increment(s.rows_decoded);
  }

  exec::BatchSourcePtr inner_;
  obs::ScopedSpan span_;
  bool flushed_ = false;
};

exec::Schema ProjectSchema(const exec::Schema& full,
                           const std::vector<int>& columns) {
  exec::Schema projected;
  for (int column : columns) projected.AddColumn(full.columns[column]);
  return projected;
}

}  // namespace

exec::BatchSourcePtr Table::ScanBatches(
    std::vector<int> columns, std::vector<exec::Predicate> hints) const {
  const exec::Schema& full = schema();
  if (columns.empty()) {
    columns.resize(full.size());
    for (size_t i = 0; i < columns.size(); ++i) columns[i] = static_cast<int>(i);
  }
  for (int column : columns) {
    IMPLIANCE_CHECK(column >= 0 && static_cast<size_t>(column) < full.size());
  }
  // Project BEFORE the call: argument initialization order is unspecified,
  // so ProjectSchema(full, columns) in the argument list could read an
  // already-moved-from vector.
  exec::Schema projected = ProjectSchema(full, columns);
  return std::make_unique<MeteredBatchSource>(ScanBatchesImpl(
      std::move(projected), std::move(columns), std::move(hints)));
}

exec::BatchSourcePtr Table::ScanBatchesImpl(
    exec::Schema schema, std::vector<int> columns,
    std::vector<exec::Predicate> hints) const {
  // Materialized adapter: zone maps don't exist here, so hints are unused
  // (callers re-apply predicates regardless).
  (void)hints;
  bool identity = columns.size() == this->schema().size();
  for (size_t i = 0; identity && i < columns.size(); ++i) {
    identity = columns[i] == static_cast<int>(i);
  }
  return std::make_unique<exec::VectorBatchSource>(
      std::move(schema), ScanAll(),
      identity ? std::vector<int>{} : std::move(columns));
}

std::vector<exec::Row> Table::ScanColumns(
    const std::vector<int>& columns) const {
  exec::BatchSourcePtr source = ScanBatches(columns);
  return exec::DrainBatchSource(source.get());
}

MemTable::MemTable(std::string name, exec::Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

void MemTable::AddRow(exec::Row row) {
  IMPLIANCE_CHECK(row.size() == schema_.size());
  const size_t index = rows_.size();
  rows_.push_back(std::move(row));
  for (auto& [column, map] : indexes_) {
    const model::Value& key = rows_.back()[column];
    if (!key.is_null()) map.emplace(key, index);
  }
  ++version_;
}

exec::BatchSourcePtr MemTable::ScanBatchesImpl(
    exec::Schema schema, std::vector<int> columns,
    std::vector<exec::Predicate> hints) const {
  (void)hints;
  bool identity = columns.size() == schema_.size();
  for (size_t i = 0; identity && i < columns.size(); ++i) {
    identity = columns[i] == static_cast<int>(i);
  }
  return std::make_unique<exec::BorrowedBatchSource>(
      std::move(schema), &rows_,
      identity ? std::vector<int>{} : std::move(columns));
}

void MemTable::BuildIndex(int column) {
  IMPLIANCE_CHECK(column >= 0 && static_cast<size_t>(column) < schema_.size());
  std::multimap<model::Value, size_t>& map = indexes_[column];
  map.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    const model::Value& key = rows_[i][column];
    if (!key.is_null()) map.emplace(key, i);
  }
}

std::vector<exec::Row> MemTable::IndexLookup(int column,
                                             const model::Value& value) const {
  auto it = indexes_.find(column);
  IMPLIANCE_CHECK(it != indexes_.end()) << "no index on column " << column;
  std::vector<exec::Row> result;
  auto [lo, hi] = it->second.equal_range(value);
  for (auto entry = lo; entry != hi; ++entry) {
    result.push_back(rows_[entry->second]);
  }
  return result;
}

std::vector<exec::Row> MemTable::IndexRange(int column, const model::Value* lo,
                                            const model::Value* hi) const {
  auto it = indexes_.find(column);
  IMPLIANCE_CHECK(it != indexes_.end()) << "no index on column " << column;
  const auto& map = it->second;
  auto begin = lo == nullptr ? map.begin() : map.lower_bound(*lo);
  auto end = hi == nullptr ? map.end() : map.upper_bound(*hi);
  std::vector<exec::Row> result;
  for (auto entry = begin; entry != end; ++entry) {
    result.push_back(rows_[entry->second]);
  }
  return result;
}

void Catalog::Register(std::shared_ptr<const Table> table) {
  tables_[table->table_name()] = std::move(table);
}

const Table* Catalog::Lookup(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace impliance::query
