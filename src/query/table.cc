#include "query/table.h"

#include "common/logging.h"

namespace impliance::query {

std::vector<exec::Row> Table::ScanColumns(
    const std::vector<int>& columns) const {
  std::vector<exec::Row> rows = ScanAll();
  std::vector<exec::Row> pruned;
  pruned.reserve(rows.size());
  for (exec::Row& row : rows) {
    exec::Row out;
    out.reserve(columns.size());
    for (int column : columns) out.push_back(std::move(row[column]));
    pruned.push_back(std::move(out));
  }
  return pruned;
}

MemTable::MemTable(std::string name, exec::Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

void MemTable::AddRow(exec::Row row) {
  IMPLIANCE_CHECK(row.size() == schema_.size());
  const size_t index = rows_.size();
  rows_.push_back(std::move(row));
  for (auto& [column, map] : indexes_) {
    const model::Value& key = rows_.back()[column];
    if (!key.is_null()) map.emplace(key, index);
  }
  ++version_;
}

std::vector<exec::Row> MemTable::ScanColumns(
    const std::vector<int>& columns) const {
  std::vector<exec::Row> pruned;
  pruned.reserve(rows_.size());
  for (const exec::Row& row : rows_) {
    exec::Row out;
    out.reserve(columns.size());
    for (int column : columns) out.push_back(row[column]);
    pruned.push_back(std::move(out));
  }
  return pruned;
}

void MemTable::BuildIndex(int column) {
  IMPLIANCE_CHECK(column >= 0 && static_cast<size_t>(column) < schema_.size());
  std::multimap<model::Value, size_t>& map = indexes_[column];
  map.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    const model::Value& key = rows_[i][column];
    if (!key.is_null()) map.emplace(key, i);
  }
}

std::vector<exec::Row> MemTable::IndexLookup(int column,
                                             const model::Value& value) const {
  auto it = indexes_.find(column);
  IMPLIANCE_CHECK(it != indexes_.end()) << "no index on column " << column;
  std::vector<exec::Row> result;
  auto [lo, hi] = it->second.equal_range(value);
  for (auto entry = lo; entry != hi; ++entry) {
    result.push_back(rows_[entry->second]);
  }
  return result;
}

std::vector<exec::Row> MemTable::IndexRange(int column, const model::Value* lo,
                                            const model::Value* hi) const {
  auto it = indexes_.find(column);
  IMPLIANCE_CHECK(it != indexes_.end()) << "no index on column " << column;
  const auto& map = it->second;
  auto begin = lo == nullptr ? map.begin() : map.lower_bound(*lo);
  auto end = hi == nullptr ? map.end() : map.upper_bound(*hi);
  std::vector<exec::Row> result;
  for (auto entry = begin; entry != end; ++entry) {
    result.push_back(rows_[entry->second]);
  }
  return result;
}

void Catalog::Register(std::shared_ptr<const Table> table) {
  tables_[table->table_name()] = std::move(table);
}

const Table* Catalog::Lookup(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace impliance::query
