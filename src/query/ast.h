#ifndef IMPLIANCE_QUERY_AST_H_
#define IMPLIANCE_QUERY_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/predicate.h"
#include "model/value.h"

namespace impliance::query {

// Abstract syntax of the supported SQL subset:
//
//   SELECT <item> [, <item>]*
//   FROM <table>
//   [JOIN <table> ON <col> = <col>]*
//   [WHERE <col> <op> <literal> [AND ...]*]
//   [GROUP BY <col> [, <col>]*]
//   [ORDER BY <col|alias> [ASC|DESC] [, ...]*]
//   [LIMIT <n>]
//
// Column references may be qualified ("orders.total") or bare ("total").

struct SelectItem {
  enum class Kind { kColumn, kAggregate, kStar };
  Kind kind = Kind::kColumn;
  std::string column;             // empty for COUNT(*) / kStar
  exec::AggFn agg_fn = exec::AggFn::kCount;
  std::string alias;              // output name; defaults derived
};

struct JoinClause {
  std::string table;
  std::string left_column;   // from an earlier table (or qualified)
  std::string right_column;  // from the JOIN table
};

struct WhereClause {
  std::string column;
  exec::CompareOp op = exec::CompareOp::kEq;
  model::Value literal;
};

struct OrderItem {
  std::string column;  // may reference an output alias
  bool ascending = true;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<JoinClause> joins;  // left-deep, in textual order
  std::vector<WhereClause> where;  // conjunctive
  std::vector<std::string> group_by;
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

}  // namespace impliance::query

#endif  // IMPLIANCE_QUERY_AST_H_
