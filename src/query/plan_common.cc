#include "query/plan_common.h"

#include <algorithm>

namespace impliance::query::planning {

bool IsRangeOp(exec::CompareOp op) {
  return op == exec::CompareOp::kLt || op == exec::CompareOp::kLe ||
         op == exec::CompareOp::kGt || op == exec::CompareOp::kGe;
}

int ResolveInTable(const Table* table, const std::string& name) {
  std::string bare = name;
  const std::string prefix = table->table_name() + ".";
  if (bare.rfind(prefix, 0) == 0) bare = bare.substr(prefix.size());
  if (bare.find('.') != std::string::npos) return -1;  // other qualifier
  return table->schema().IndexOf(bare);
}

int BoundTable::KeptIndexOf(int column) const {
  for (size_t i = 0; i < kept.size(); ++i) {
    if (kept[i] == column) return static_cast<int>(i);
  }
  return -1;
}

std::vector<exec::Row> BoundTable::ScanKept(
    const std::vector<exec::Predicate>& hints) const {
  exec::BatchSourcePtr source = table->ScanBatches(kept, hints);
  return exec::DrainBatchSource(source.get());
}

BoundTable MakeBoundTable(const Table* table, std::vector<int> kept) {
  BoundTable bound;
  bound.table = table;
  bound.kept = std::move(kept);
  for (int column : bound.kept) {
    bound.schema.AddColumn(table->schema().columns[column]);
  }
  return bound;
}

Result<std::vector<const Table*>> BindTables(const SelectStatement& stmt,
                                             const Catalog& catalog) {
  std::vector<const Table*> tables;
  const Table* from = catalog.Lookup(stmt.table);
  if (from == nullptr) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  tables.push_back(from);
  for (const JoinClause& join : stmt.joins) {
    const Table* table = catalog.Lookup(join.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + join.table);
    }
    tables.push_back(table);
  }
  return tables;
}

Result<std::vector<BoundJoin>> BindJoins(
    const SelectStatement& stmt, const std::vector<const Table*>& tables) {
  std::vector<BoundJoin> joins;
  for (size_t i = 0; i < stmt.joins.size(); ++i) {
    const JoinClause& clause = stmt.joins[i];
    const int right = static_cast<int>(i) + 1;
    BoundJoin bound;
    bound.right_table = right;
    // Try both orientations of the ON clause against every earlier table,
    // in textual order.
    for (int left = 0; left < right && bound.left_column < 0; ++left) {
      int lk = ResolveInTable(tables[left], clause.left_column);
      int rk = ResolveInTable(tables[right], clause.right_column);
      if (lk < 0 || rk < 0) {
        lk = ResolveInTable(tables[left], clause.right_column);
        rk = ResolveInTable(tables[right], clause.left_column);
      }
      if (lk >= 0 && rk >= 0) {
        bound.left_table = left;
        bound.left_column = lk;
        bound.right_column = rk;
      }
    }
    if (bound.left_column < 0 || bound.right_column < 0) {
      return Status::InvalidArgument("cannot resolve join columns " +
                                     clause.left_column + " = " +
                                     clause.right_column);
    }
    joins.push_back(bound);
  }
  return joins;
}

std::vector<BoundTable> BindColumns(const SelectStatement& stmt,
                                    const std::vector<const Table*>& tables,
                                    const std::vector<BoundJoin>& joins,
                                    const std::vector<bool>& keep_all) {
  const bool star =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kStar;
                  });

  std::vector<std::set<int>> kept(tables.size());
  if (!star) {
    // Resolve every referenced name against the FULL combined schema, then
    // keep exactly the column each name binds to. This preserves
    // first-occurrence-wins for bare names that exist in several tables.
    std::vector<BoundTable> full;
    for (const Table* table : tables) {
      std::vector<int> all(table->schema().size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
      full.push_back(MakeBoundTable(table, std::move(all)));
    }
    NameResolver resolver(&full);
    auto keep = [&](const std::string& name) {
      const auto [table, column] = resolver.Locate(name);
      if (table >= 0) kept[table].insert(column);
    };
    for (const SelectItem& item : stmt.items) {
      if (!item.column.empty()) keep(item.column);
    }
    for (const WhereClause& clause : stmt.where) keep(clause.column);
    for (const std::string& column : stmt.group_by) keep(column);
    for (const OrderItem& item : stmt.order_by) keep(item.column);
    for (const BoundJoin& join : joins) {
      kept[join.left_table].insert(join.left_column);
      kept[join.right_table].insert(join.right_column);
    }
  }

  std::vector<BoundTable> bound;
  for (size_t t = 0; t < tables.size(); ++t) {
    std::vector<int> columns;
    if (star || (t < keep_all.size() && keep_all[t])) {
      columns.resize(tables[t]->schema().size());
      for (size_t i = 0; i < columns.size(); ++i) {
        columns[i] = static_cast<int>(i);
      }
    } else {
      columns.assign(kept[t].begin(), kept[t].end());  // sets are ascending
    }
    bound.push_back(MakeBoundTable(tables[t], std::move(columns)));
  }
  return bound;
}

void PruneRows(const BoundTable& bound, std::vector<exec::Row>* rows) {
  if (!bound.pruned()) return;
  for (exec::Row& row : *rows) {
    exec::Row pruned;
    pruned.reserve(bound.kept.size());
    for (int column : bound.kept) pruned.push_back(std::move(row[column]));
    row = std::move(pruned);
  }
}

NameResolver::NameResolver(const std::vector<BoundTable>* tables) {
  for (size_t t = 0; t < tables->size(); ++t) {
    const BoundTable& bound = (*tables)[t];
    offsets_.push_back(static_cast<int>(names_.size()));
    for (size_t i = 0; i < bound.schema.size(); ++i) {
      names_.push_back(bound.schema.columns[i]);
      qualified_.push_back(bound.table->table_name() + "." +
                           bound.schema.columns[i]);
      located_.emplace_back(static_cast<int>(t), static_cast<int>(i));
    }
  }
}

int NameResolver::Resolve(const std::string& name) const {
  for (size_t i = 0; i < qualified_.size(); ++i) {
    if (qualified_[i] == name) return static_cast<int>(i);
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::pair<int, int> NameResolver::Locate(const std::string& name) const {
  const int index = Resolve(name);
  return index < 0 ? std::pair<int, int>{-1, -1} : located_[index];
}

Result<UpperPlanSpec> ResolveUpper(const SelectStatement& stmt,
                                   const NameResolver& resolver,
                                   const std::set<int>& consumed_predicates,
                                   const std::vector<int>& filter_order,
                                   bool adaptive_filter) {
  UpperPlanSpec spec;
  spec.adaptive_filter = adaptive_filter;
  spec.limit = stmt.limit;

  // Residual predicates.
  for (int index : filter_order) {
    if (consumed_predicates.count(index)) continue;
    const WhereClause& clause = stmt.where[index];
    const int column = resolver.Resolve(clause.column);
    if (column < 0) {
      return Status::InvalidArgument("unknown column in WHERE: " +
                                     clause.column);
    }
    spec.predicates.push_back(
        exec::Predicate{column, clause.op, clause.literal});
  }

  // The combined (post-join) input schema.
  exec::Schema input_schema;
  for (size_t i = 0; i < resolver.size(); ++i) {
    input_schema.AddColumn(resolver.NameAt(static_cast<int>(i)));
  }

  // Aggregation.
  spec.has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });
  exec::Schema pre_order_schema;  // schema ORDER BY resolves against
  if (spec.has_aggregate) {
    for (const std::string& column : stmt.group_by) {
      const int index = resolver.Resolve(column);
      if (index < 0) {
        return Status::InvalidArgument("unknown GROUP BY column: " + column);
      }
      spec.group_columns.push_back(index);
    }
    for (const SelectItem& item : stmt.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      exec::AggSpec agg;
      agg.fn = item.agg_fn;
      agg.output_name = item.alias;
      if (!item.column.empty()) {
        agg.column = resolver.Resolve(item.column);
        if (agg.column < 0) {
          return Status::InvalidArgument("unknown aggregate column: " +
                                         item.column);
        }
      }
      spec.aggregates.push_back(std::move(agg));
    }
    const exec::Schema agg_schema = exec::GroupByAggregator::OutputSchema(
        input_schema, spec.group_columns, spec.aggregates);

    // Project the select list onto the aggregate's output order.
    spec.project = true;
    for (const SelectItem& item : stmt.items) {
      std::string wanted;
      if (item.kind == SelectItem::Kind::kAggregate) {
        wanted = item.alias;
      } else if (item.kind == SelectItem::Kind::kColumn) {
        // Must be a group-by column; match by bare name.
        wanted = item.column;
        size_t dot = wanted.rfind('.');
        if (dot != std::string::npos) wanted = wanted.substr(dot + 1);
      } else {
        return Status::InvalidArgument("SELECT * with aggregation");
      }
      const int index = agg_schema.IndexOf(wanted);
      if (index < 0) {
        return Status::InvalidArgument(
            "SELECT column not in GROUP BY or aggregates: " + wanted);
      }
      spec.project_columns.push_back(index);
      spec.project_names.push_back(item.alias.empty() ? wanted : item.alias);
    }
    pre_order_schema = exec::Schema(spec.project_names);
  } else {
    // Plain projection (unless SELECT *).
    const bool star = stmt.items.size() == 1 &&
                      stmt.items[0].kind == SelectItem::Kind::kStar;
    if (!star) {
      spec.project = true;
      for (const SelectItem& item : stmt.items) {
        const int index = resolver.Resolve(item.column);
        if (index < 0) {
          return Status::InvalidArgument("unknown SELECT column: " +
                                         item.column);
        }
        spec.project_columns.push_back(index);
        spec.project_names.push_back(
            item.alias.empty() ? resolver.NameAt(index) : item.alias);
      }
      pre_order_schema = exec::Schema(spec.project_names);
    } else {
      pre_order_schema = input_schema;
    }
  }

  // ORDER BY against the final output schema.
  for (const OrderItem& item : stmt.order_by) {
    int index = pre_order_schema.IndexOf(item.column);
    if (index < 0) {
      // Allow bare-name match against qualified select items.
      std::string bare = item.column;
      size_t dot = bare.rfind('.');
      if (dot != std::string::npos) {
        index = pre_order_schema.IndexOf(bare.substr(dot + 1));
      }
    }
    if (index < 0) {
      return Status::InvalidArgument("unknown ORDER BY column: " +
                                     item.column);
    }
    spec.sort_keys.push_back(exec::SortKey{index, item.ascending});
  }
  return spec;
}

exec::OperatorPtr BuildSerialUpper(const UpperPlanSpec& spec,
                                   exec::OperatorPtr plan,
                                   std::vector<std::string>* explain_lines) {
  if (!spec.predicates.empty()) {
    explain_lines->push_back(
        std::string(spec.adaptive_filter ? "AdaptiveFilter" : "Filter") + "(" +
        std::to_string(spec.predicates.size()) + " predicates)");
    plan = std::make_unique<exec::FilterOp>(std::move(plan), spec.predicates,
                                            spec.adaptive_filter);
  }
  if (spec.has_aggregate) {
    explain_lines->push_back(
        "HashAggregate(groups=" + std::to_string(spec.group_columns.size()) +
        ", aggs=" + std::to_string(spec.aggregates.size()) + ")");
    plan = std::make_unique<exec::HashAggregateOp>(
        std::move(plan), spec.group_columns, spec.aggregates);
  }
  if (spec.project) {
    plan = std::make_unique<exec::ProjectOp>(
        std::move(plan), spec.project_columns, spec.project_names);
  }
  if (!spec.sort_keys.empty()) {
    if (spec.limit.has_value()) {
      explain_lines->push_back("TopK(k=" + std::to_string(*spec.limit) + ")");
      plan = std::make_unique<exec::TopKOp>(std::move(plan), spec.sort_keys,
                                            *spec.limit);
    } else {
      explain_lines->push_back("Sort");
      plan = std::make_unique<exec::SortOp>(std::move(plan), spec.sort_keys);
    }
  } else if (spec.limit.has_value()) {
    explain_lines->push_back("Limit(" + std::to_string(*spec.limit) + ")");
    plan = std::make_unique<exec::LimitOp>(std::move(plan), *spec.limit);
  }
  return plan;
}

void AttachParallelUpper(const UpperPlanSpec& spec, ParallelPlan* parallel,
                         std::vector<std::string>* explain_lines) {
  if (spec.has_aggregate) {
    parallel->segment.sink = exec::MorselPlan::Sink::kAggregate;
    parallel->segment.group_columns = spec.group_columns;
    parallel->segment.aggregates = spec.aggregates;
    explain_lines->push_back(
        "PartialAggregate(groups=" + std::to_string(spec.group_columns.size()) +
        ", aggs=" + std::to_string(spec.aggregates.size()) + ") => Merge");
    // Post-aggregate select-list projection, then order/limit, run serially
    // on the merged groups.
    parallel->tail = [spec](exec::OperatorPtr source) {
      exec::OperatorPtr op = std::make_unique<exec::ProjectOp>(
          std::move(source), spec.project_columns, spec.project_names);
      if (!spec.sort_keys.empty()) {
        if (spec.limit.has_value()) {
          op = std::make_unique<exec::TopKOp>(std::move(op), spec.sort_keys,
                                              *spec.limit);
        } else {
          op = std::make_unique<exec::SortOp>(std::move(op), spec.sort_keys);
        }
      } else if (spec.limit.has_value()) {
        op = std::make_unique<exec::LimitOp>(std::move(op), *spec.limit);
      }
      return op;
    };
  } else if (!spec.sort_keys.empty() && spec.limit.has_value()) {
    parallel->segment.sink = exec::MorselPlan::Sink::kTopK;
    parallel->segment.sort_keys = spec.sort_keys;
    parallel->segment.top_k = *spec.limit;
    explain_lines->push_back(
        "PartialTopK(k=" + std::to_string(*spec.limit) + ") => Merge");
  } else {
    parallel->segment.sink = exec::MorselPlan::Sink::kCollect;
    explain_lines->push_back("Collect(morsel order)");
    if (!spec.sort_keys.empty()) {
      explain_lines->push_back("Sort");
      parallel->tail = [keys = spec.sort_keys](exec::OperatorPtr source) {
        return std::make_unique<exec::SortOp>(std::move(source), keys);
      };
    } else if (spec.limit.has_value()) {
      explain_lines->push_back("Limit(" + std::to_string(*spec.limit) + ")");
      parallel->tail = [limit = *spec.limit](exec::OperatorPtr source) {
        return std::make_unique<exec::LimitOp>(std::move(source), limit);
      };
    }
  }
}

std::string RenderExplain(const std::vector<std::string>& lines) {
  // Lines were appended bottom-up; render root-first.
  std::string out;
  for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
    if (!out.empty()) out += "\n";
    out += *it;
  }
  return out;
}

exec::IndexedNLJoinOp::LookupFn MakeIndexLookup(const Table* table,
                                                int column) {
  return [table, column](const model::Value& key) {
    return table->IndexLookup(column, key);
  };
}

IndexFetch FetchViaIndex(const Table* table, const std::string& display_name,
                         int column, exec::CompareOp op,
                         const model::Value& literal) {
  IndexFetch fetch;
  if (op == exec::CompareOp::kEq) {
    fetch.rows = table->IndexLookup(column, literal);
    fetch.description =
        "IndexLookup(" + table->table_name() + "." + display_name + ")";
    fetch.consumed = true;
    return fetch;
  }
  const model::Value* lo = nullptr;
  const model::Value* hi = nullptr;
  if (op == exec::CompareOp::kGt || op == exec::CompareOp::kGe) {
    lo = &literal;
  } else {
    hi = &literal;
  }
  fetch.rows = table->IndexRange(column, lo, hi);
  fetch.description =
      "IndexRange(" + table->table_name() + "." + display_name + ")";
  // Range via index is inclusive; strict bounds keep the predicate as a
  // residual filter (cheap, correct).
  fetch.consumed =
      op == exec::CompareOp::kGe || op == exec::CompareOp::kLe;
  return fetch;
}

}  // namespace impliance::query::planning
