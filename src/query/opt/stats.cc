#include "query/opt/stats.h"

#include <algorithm>
#include <set>

namespace impliance::query::opt {

namespace {

// k-minimum-values distinct-count sketch: track the k smallest distinct
// value hashes; the kth smallest estimates the hash-space density.
class KmvSketch {
 public:
  explicit KmvSketch(size_t k) : k_(k) {}

  void Add(uint64_t hash) {
    if (hashes_.size() >= k_ && hash >= *hashes_.rbegin()) return;
    hashes_.insert(hash);
    if (hashes_.size() > k_) hashes_.erase(std::prev(hashes_.end()));
  }

  uint64_t Estimate() const {
    if (hashes_.size() < k_) {
      return hashes_.size();  // saw every distinct hash
    }
    const uint64_t kth = *hashes_.rbegin();
    if (kth == 0) return hashes_.size();
    // E[ndv] = (k - 1) / fraction of hash space covered by the kth value.
    const double fraction =
        static_cast<double>(kth) / static_cast<double>(UINT64_MAX);
    return static_cast<uint64_t>(static_cast<double>(k_ - 1) / fraction);
  }

 private:
  size_t k_;
  std::set<uint64_t> hashes_;
};

}  // namespace

TableStats CollectTableStats(const Table& table, const StatsOptions& options) {
  TableStats stats;
  stats.table_name = table.table_name();
  stats.row_count = table.RowCount();
  stats.data_version = table.DataVersion();

  const size_t width = table.schema().size();
  stats.columns.resize(width);
  std::vector<KmvSketch> sketches(width, KmvSketch(options.kmv_k));

  // One pass over a prefix sample, streamed batch-wise so the scan stops
  // after the cap instead of materializing the table (the old ScanAll path
  // copied every row just to read the first few thousand). The cap bounds
  // the per-column sketch work, which dominates.
  const size_t cap = std::max<size_t>(1, options.sample_rows);
  exec::BatchSourcePtr source = table.ScanBatches({});
  exec::RowBatch batch;
  size_t sample = 0;
  while (sample < cap && source->NextBatch(&batch)) {
    for (const exec::Row& row : batch.rows) {
      if (sample >= cap) break;
      ++sample;
      for (size_t c = 0; c < width && c < row.size(); ++c) {
        const model::Value& value = row[c];
        ColumnStats& column = stats.columns[c];
        if (value.is_null()) {
          ++column.null_count;
          continue;
        }
        sketches[c].Add(value.HashValue());
        if (column.min.is_null() || value.Compare(column.min) < 0) {
          column.min = value;
        }
        if (column.max.is_null() || value.Compare(column.max) > 0) {
          column.max = value;
        }
      }
    }
  }
  stats.sampled_rows = sample;

  // Backends with storage metadata (columnar zone maps) answer min/max and
  // null counts exactly — prefer that over the sampled figures. NDV still
  // comes from the sample sketch.
  for (size_t c = 0; c < width; ++c) {
    const auto summary = table.SummarizeColumn(static_cast<int>(c));
    if (!summary.has_value()) continue;
    ColumnStats& column = stats.columns[c];
    column.min = summary->min;
    column.max = summary->max;
    column.null_count = summary->null_count;
  }

  for (size_t c = 0; c < width; ++c) {
    uint64_t ndv = sketches[c].Estimate();
    if (sample > 0 && stats.row_count > sample) {
      // Partial sample: a near-unique column's distinct count grows with
      // the table, a saturated one's does not. Scale only the former.
      if (ndv * 10 >= sample * 9) {
        ndv = static_cast<uint64_t>(
            static_cast<double>(ndv) *
            (static_cast<double>(stats.row_count) / sample));
      }
    }
    stats.columns[c].ndv = std::min<uint64_t>(ndv, stats.row_count);
  }
  return stats;
}

}  // namespace impliance::query::opt
