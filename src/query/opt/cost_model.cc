#include "query/opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace impliance::query::opt {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

double EstimateSelectivity(const ColumnStats* column, exec::CompareOp op,
                           const model::Value& literal,
                           const CostParams& params) {
  // Comparison predicates never match a null literal; the optimizer folds
  // these to contradictions before costing, but stay safe here too.
  if (literal.is_null() && op != exec::CompareOp::kContains) return 0.0;

  const double ndv =
      column != nullptr && column->ndv > 0
          ? static_cast<double>(column->ndv)
          : params.default_ndv;
  switch (op) {
    case exec::CompareOp::kEq:
      return 1.0 / ndv;
    case exec::CompareOp::kNe:
      return 1.0 - 1.0 / ndv;
    case exec::CompareOp::kContains:
      return params.contains_selectivity;
    default:
      break;
  }
  // Range: interpolate within the observed value bounds when everything is
  // numeric (ints, doubles, timestamps share an axis through AsDouble).
  if (column == nullptr || column->min.is_null() || column->max.is_null() ||
      !column->min.is_numeric() || !column->max.is_numeric() ||
      !literal.is_numeric()) {
    return params.range_selectivity;
  }
  const double lo = column->min.AsDouble();
  const double hi = column->max.AsDouble();
  const double v = literal.AsDouble();
  if (hi <= lo) {
    // Single observed value: the predicate either keeps or drops it all.
    const exec::Predicate probe{0, op, literal};
    const model::Row row{column->min};
    return probe.Eval(row) ? 1.0 : 0.0;
  }
  const double below = Clamp01((v - lo) / (hi - lo));
  switch (op) {
    case exec::CompareOp::kLt:
    case exec::CompareOp::kLe:
      return below;
    case exec::CompareOp::kGt:
    case exec::CompareOp::kGe:
      return 1.0 - below;
    default:
      return params.range_selectivity;
  }
}

double EstimateJoinRows(double left_rows, double right_rows, double left_ndv,
                        double right_ndv) {
  const double ndv = std::max(1.0, std::max(left_ndv, right_ndv));
  return left_rows * right_rows / ndv;
}

double SortCost(double rows, const CostParams& params) {
  if (rows <= 1.0) return 0.0;
  return rows * std::log2(rows) * params.sort_row;
}

}  // namespace impliance::query::opt
