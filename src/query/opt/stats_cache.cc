#include "query/opt/stats_cache.h"

#include <algorithm>

namespace impliance::query::opt {

namespace {

// Column-sketch recollection threshold: 10% row-count drift.
bool SketchesStale(uint64_t cached_rows, uint64_t current_rows) {
  const uint64_t drift = cached_rows > current_rows
                             ? cached_rows - current_rows
                             : current_rows - cached_rows;
  return drift * 10 >= std::max<uint64_t>(1, cached_rows);
}

}  // namespace

std::shared_ptr<const TableStats> TableStatsCache::Get(const Table& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(table.table_name());
  if (it == cache_.end()) return RefreshLocked(table);
  if (mode_ == Mode::kManual) return it->second;  // stale until ANALYZE

  // DataVersion() == 0 means the backend does no change tracking; treat
  // every read as a potential move and rely on the row-drift check below.
  const uint64_t version = table.DataVersion();
  if (version != 0 && version == it->second->data_version) return it->second;

  const uint64_t rows = table.RowCount();
  if (SketchesStale(it->second->row_count, rows)) return RefreshLocked(table);

  // Version moved but rows barely drifted: keep the (bounded-stale) column
  // sketches, refresh the exact cardinality and the version stamp.
  auto updated = std::make_shared<TableStats>(*it->second);
  updated->row_count = rows;
  updated->data_version = version;
  it->second = updated;
  return updated;
}

std::shared_ptr<const TableStats> TableStatsCache::Refresh(const Table& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RefreshLocked(table);
}

std::shared_ptr<const TableStats> TableStatsCache::RefreshLocked(
    const Table& table) {
  auto stats =
      std::make_shared<const TableStats>(CollectTableStats(table, options_));
  cache_[table.table_name()] = stats;
  ++collections_;
  return stats;
}

void TableStatsCache::Forget(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.erase(table_name);
}

uint64_t TableStatsCache::collections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return collections_;
}

}  // namespace impliance::query::opt
