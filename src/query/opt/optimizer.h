#ifndef IMPLIANCE_QUERY_OPT_OPTIMIZER_H_
#define IMPLIANCE_QUERY_OPT_OPTIMIZER_H_

#include <optional>

#include "common/result.h"
#include "query/opt/cost_model.h"
#include "query/opt/stats_cache.h"
#include "query/planner.h"

namespace impliance::query::opt {

// Two-phase cost-aware planner — the optimizer the appliance now runs by
// default; SimplePlanner remains the paper-faithful baseline, selectable
// per request.
//
// Logical phase (statistics-free rewrites):
//   - every WHERE conjunct references one table (the grammar compares a
//     column to a literal), so predicates push below the joins onto their
//     owning table's access path;
//   - per-column predicate folding: duplicate equalities collapse, ranges
//     tighten to the narrowest interval, implied conjuncts drop, and
//     contradictions (x = 1 AND x = 2, empty intervals, comparisons
//     against NULL) reduce the whole join tree to an empty row source;
//   - projection pushdown: scans fetch only referenced columns.
//
// Physical phase (costed against TableStatsCache snapshots):
//   - index-vs-scan per table by estimated fetch cost;
//   - greedy join reordering: start from the smallest filtered table, then
//     repeatedly attach the join partner minimizing the estimated
//     intermediate cardinality (|L|*|R| / max key NDV);
//   - join method per edge: indexed nested-loop vs hash build/probe vs
//     sort-merge, the latter credited with eliding the final ORDER BY sort
//     when it already emits the requested order.
//
// Results are identical to SimplePlanner's for every statement (modulo row
// order where SQL leaves it unspecified); only the work to produce them
// changes. Plan() fills PlanResult::nodes with the costed tree that
// EXPLAIN ships over the wire.
class CostAwarePlanner : public Planner {
 public:
  // `stats` is borrowed and must outlive the planner.
  explicit CostAwarePlanner(TableStatsCache* stats) : stats_(stats) {}

  Result<PlanResult> Plan(const SelectStatement& stmt,
                          const Catalog& catalog) override;

  // Morsel-parallel variant; covers plans whose joins all came out as hash
  // joins (indexed-NL and sort-merge shapes stay serial).
  Result<std::optional<ParallelPlan>> PlanParallel(
      const SelectStatement& stmt, const Catalog& catalog) override;

 private:
  TableStatsCache* stats_;
  CostParams params_;
};

}  // namespace impliance::query::opt

#endif  // IMPLIANCE_QUERY_OPT_OPTIMIZER_H_
