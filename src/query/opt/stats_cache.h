#ifndef IMPLIANCE_QUERY_OPT_STATS_CACHE_H_
#define IMPLIANCE_QUERY_OPT_STATS_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "query/opt/stats.h"

namespace impliance::query::opt {

// Statistics cache keyed by table name. In kAuto mode (the appliance
// default) snapshots maintain themselves: every Get() compares the table's
// DataVersion against the snapshot's, refreshes the exact row count when
// the version moved, and recollects the column sketches once the row count
// has drifted beyond 10% — so cardinalities are always exact and sketch
// staleness is bounded, with zero administration. kManual mode is the
// conventional-DBA comparator for experiment E2: snapshots update ONLY on
// an explicit Refresh() ("ANALYZE"), and silently go stale otherwise —
// exactly the maintenance burden the paper argues against.
class TableStatsCache {
 public:
  enum class Mode { kAuto, kManual };

  explicit TableStatsCache(Mode mode = Mode::kAuto,
                           StatsOptions options = StatsOptions{})
      : mode_(mode), options_(options) {}

  // Current statistics for `table`, per the mode's freshness policy. Never
  // returns null: a missing snapshot is collected on first sight in either
  // mode.
  std::shared_ptr<const TableStats> Get(const Table& table);

  // Forces a full recollection now (manual ANALYZE).
  std::shared_ptr<const TableStats> Refresh(const Table& table);

  // Drops a table's snapshot (e.g. when the table is unregistered).
  void Forget(const std::string& table_name);

  Mode mode() const { return mode_; }

  // Full collections performed so far (observability / tests).
  uint64_t collections() const;

 private:
  std::shared_ptr<const TableStats> RefreshLocked(const Table& table);

  const Mode mode_;
  const StatsOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const TableStats>, std::less<>> cache_;
  uint64_t collections_ = 0;
};

}  // namespace impliance::query::opt

#endif  // IMPLIANCE_QUERY_OPT_STATS_CACHE_H_
