#ifndef IMPLIANCE_QUERY_OPT_STATS_H_
#define IMPLIANCE_QUERY_OPT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/value.h"
#include "query/table.h"

namespace impliance::query::opt {

// Per-column statistics snapshot: distinct-value estimate from a
// k-minimum-values sketch, value bounds, and null count, all over the
// sampled rows.
struct ColumnStats {
  uint64_t ndv = 0;         // estimated distinct non-null values (table-wide)
  uint64_t null_count = 0;  // nulls among the sampled rows (exact table-wide
                            // when the backend answers SummarizeColumn)
  model::Value min;         // Null until a non-null value is seen
  model::Value max;
};

// One table's statistics snapshot, stamped with the data version it was
// collected at so the cache can tell exactly when it went stale.
struct TableStats {
  std::string table_name;
  uint64_t row_count = 0;     // exact (Table::RowCount at collection time)
  uint64_t data_version = 0;  // Table::DataVersion at collection time
  uint64_t sampled_rows = 0;  // rows fed to the column sketches
  std::vector<ColumnStats> columns;  // parallel to the table schema

  const ColumnStats* Column(int index) const {
    return index >= 0 && static_cast<size_t>(index) < columns.size()
               ? &columns[index]
               : nullptr;
  }
};

struct StatsOptions {
  size_t sample_rows = 4096;  // cap on rows fed to the column sketches
  size_t kmv_k = 256;         // k-minimum-values sketch size
};

// Collects a statistics snapshot in one pass over (a prefix sample of) the
// table: exact row count, and per-column KMV distinct-count sketch, min/max,
// and null count over at most `options.sample_rows` rows. When the sample
// was partial, NDVs are scaled up only for near-unique columns (a distinct
// count that keeps growing with the sample tracks the table size; a
// saturated one does not).
TableStats CollectTableStats(const Table& table,
                             const StatsOptions& options = {});

}  // namespace impliance::query::opt

#endif  // IMPLIANCE_QUERY_OPT_STATS_H_
