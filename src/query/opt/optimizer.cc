#include "query/opt/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "exec/operators.h"
#include "query/plan_common.h"

namespace impliance::query::opt {

namespace {

using planning::BindColumns;
using planning::BindJoins;
using planning::BindTables;
using planning::BoundJoin;
using planning::BoundTable;
using planning::FetchViaIndex;
using planning::IndexFetch;
using planning::IsRangeOp;
using planning::MakeBoundTable;
using planning::MakeIndexLookup;
using planning::NameResolver;
using planning::PruneRows;
using planning::ResolveUpper;
using planning::UpperPlanSpec;

// ------------------------------------------------------------ explain tree

// In-construction plan tree node; flattened pre-order into ExplainNodes and
// rendered as the indented EXPLAIN text.
struct Node {
  std::string name;
  std::string detail;
  double rows = 0;
  double cost = 0;
  std::vector<Node> children;
};

void FlattenNode(const Node& node, uint32_t depth,
                 std::vector<ExplainNode>* out) {
  out->push_back(ExplainNode{depth, node.name, node.detail, node.rows,
                             node.cost});
  for (const Node& child : node.children) FlattenNode(child, depth + 1, out);
}

std::string FormatEst(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

void RenderNode(const Node& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name);
  if (!node.detail.empty()) *out += "(" + node.detail + ")";
  *out += " [rows~" + FormatEst(node.rows) + " cost~" + FormatEst(node.cost) +
          "]";
  for (const Node& child : node.children) {
    *out += "\n";
    RenderNode(child, depth + 1, out);
  }
}

std::string PredicateLabel(const std::string& column, exec::CompareOp op,
                           const model::Value& literal) {
  return column + " " + exec::CompareOpName(op) + " " + literal.AsString();
}

// ----------------------------------------------------------- logical phase

// A predicate pushed down onto one table, in that table's full schema.
struct LocalPredicate {
  int column = -1;
  exec::CompareOp op = exec::CompareOp::kEq;
  model::Value literal;
  double selectivity = 1.0;
};

struct TableLogical {
  std::vector<LocalPredicate> predicates;  // folded
  bool contradiction = false;
};

struct RangeBound {
  model::Value value;
  bool strict = false;
};

// Folds the conjuncts on one (table, column): duplicate equalities
// collapse, ranges tighten to the narrowest interval, conjuncts implied by
// an equality drop, and unsatisfiable combinations mark the table
// contradictory. Literal-vs-literal decisions use Value::Compare — the same
// total order Predicate::Eval applies at runtime — so folding can never
// disagree with execution. CONTAINS conjuncts pass through untouched.
void FoldColumn(
    int column,
    const std::vector<std::pair<exec::CompareOp, model::Value>>& conjuncts,
    TableLogical* out) {
  std::optional<model::Value> eq;
  std::optional<RangeBound> lo;
  std::optional<RangeBound> hi;
  std::vector<model::Value> nes;
  for (const auto& [op, literal] : conjuncts) {
    if (literal.is_null() && op != exec::CompareOp::kContains) {
      // No value satisfies a comparison against NULL.
      out->contradiction = true;
      return;
    }
    switch (op) {
      case exec::CompareOp::kEq:
        if (eq.has_value() && eq->Compare(literal) != 0) {
          out->contradiction = true;
          return;
        }
        eq = literal;
        break;
      case exec::CompareOp::kGt:
      case exec::CompareOp::kGe: {
        const bool strict = op == exec::CompareOp::kGt;
        const int cmp = lo.has_value() ? literal.Compare(lo->value) : 1;
        if (cmp > 0 || (cmp == 0 && strict)) lo = RangeBound{literal, strict};
        break;
      }
      case exec::CompareOp::kLt:
      case exec::CompareOp::kLe: {
        const bool strict = op == exec::CompareOp::kLt;
        const int cmp = hi.has_value() ? literal.Compare(hi->value) : -1;
        if (cmp < 0 || (cmp == 0 && strict)) hi = RangeBound{literal, strict};
        break;
      }
      case exec::CompareOp::kNe: {
        const bool dup = std::any_of(
            nes.begin(), nes.end(),
            [&](const model::Value& v) { return v.Compare(literal) == 0; });
        if (!dup) nes.push_back(literal);
        break;
      }
      case exec::CompareOp::kContains:
        out->predicates.push_back(
            LocalPredicate{column, op, literal});
        break;
    }
  }
  if (eq.has_value()) {
    if (lo.has_value()) {
      const int cmp = eq->Compare(lo->value);
      if (!(cmp > 0 || (cmp == 0 && !lo->strict))) {
        out->contradiction = true;
        return;
      }
    }
    if (hi.has_value()) {
      const int cmp = eq->Compare(hi->value);
      if (!(cmp < 0 || (cmp == 0 && !hi->strict))) {
        out->contradiction = true;
        return;
      }
    }
    for (const model::Value& ne : nes) {
      if (eq->Compare(ne) == 0) {
        out->contradiction = true;
        return;
      }
    }
    // Ranges and inequalities are implied by the equality: drop them.
    out->predicates.push_back(
        LocalPredicate{column, exec::CompareOp::kEq, *eq});
    return;
  }
  if (lo.has_value() && hi.has_value()) {
    const int cmp = lo->value.Compare(hi->value);
    if (cmp > 0 || (cmp == 0 && (lo->strict || hi->strict))) {
      out->contradiction = true;
      return;
    }
  }
  if (lo.has_value()) {
    out->predicates.push_back(LocalPredicate{
        column, lo->strict ? exec::CompareOp::kGt : exec::CompareOp::kGe,
        lo->value});
  }
  if (hi.has_value()) {
    out->predicates.push_back(LocalPredicate{
        column, hi->strict ? exec::CompareOp::kLt : exec::CompareOp::kLe,
        hi->value});
  }
  for (model::Value& ne : nes) {
    out->predicates.push_back(
        LocalPredicate{column, exec::CompareOp::kNe, std::move(ne)});
  }
}

// ---------------------------------------------------------- physical phase

struct TablePhysical {
  std::shared_ptr<const TableStats> stats;
  double base_rows = 0;
  double est_rows = 0;    // after every local predicate
  double fetch_rows = 0;  // rows the chosen access path fetches
  double access_cost = 0;
  int access_predicate = -1;  // into TableLogical::predicates; -1 = scan
};

struct JoinStep {
  enum class Method { kHash, kInlj, kSortMerge };
  int table = -1;          // newly attached table (textual index)
  int placed_table = -1;   // key owner on the intermediate side
  int placed_column = -1;  // full-schema index in placed_table
  int new_column = -1;     // full-schema index in `table`
  Method method = Method::kHash;
  double est_out = 0;
  double matched = 0;  // pre-residual-filter rows (INLJ)
  double cost = 0;
};

struct Optimized {
  std::vector<const Table*> tables;
  std::vector<BoundJoin> joins;
  std::vector<TableLogical> locals;
  bool contradiction = false;
  std::vector<TablePhysical> phys;
  int driver = 0;
  std::vector<JoinStep> steps;  // in execution order
  bool all_hash = true;
  bool elide_sort = false;  // final ORDER BY absorbed by a sort-merge join
  std::vector<BoundTable> bound;
};

double NdvOf(const TablePhysical& phys, int column, const CostParams& params) {
  const ColumnStats* stats =
      phys.stats == nullptr ? nullptr : phys.stats->Column(column);
  return stats != nullptr && stats->ndv > 0 ? static_cast<double>(stats->ndv)
                                            : params.default_ndv;
}

// Whether the single-key ascending ORDER BY (with no aggregate and no
// LIMIT) resolves to full-schema column `(table, column)` — if a final
// sort-merge join keys on it, the output already carries the order.
struct OrderTarget {
  bool eligible = false;
  int table = -1;
  int column = -1;
};

OrderTarget ResolveOrderTarget(const SelectStatement& stmt,
                               const NameResolver& full_resolver,
                               const std::vector<BoundTable>& full_bound) {
  OrderTarget target;
  const bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& item) {
                    return item.kind == SelectItem::Kind::kAggregate;
                  });
  if (has_aggregate || stmt.limit.has_value() || stmt.order_by.size() != 1 ||
      !stmt.order_by[0].ascending) {
    return target;
  }
  const auto [table, kept] = full_resolver.Locate(stmt.order_by[0].column);
  if (table < 0) return target;
  target.eligible = true;
  target.table = table;
  target.column = full_bound[table].kept[kept];
  return target;
}

Result<Optimized> Optimize(const SelectStatement& stmt, const Catalog& catalog,
                           TableStatsCache* cache, const CostParams& params) {
  Optimized opt;
  IMPLIANCE_ASSIGN_OR_RETURN(opt.tables, BindTables(stmt, catalog));
  IMPLIANCE_ASSIGN_OR_RETURN(opt.joins, BindJoins(stmt, opt.tables));

  // Full-schema bound tables give predicate ownership the same
  // first-occurrence-wins resolution SimplePlanner applies post-join.
  std::vector<BoundTable> full_bound;
  for (const Table* table : opt.tables) {
    std::vector<int> all(table->schema().size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    full_bound.push_back(MakeBoundTable(table, std::move(all)));
  }
  const NameResolver full_resolver(&full_bound);

  // --- logical phase: push every conjunct onto its table and fold.
  std::map<std::pair<int, int>,
           std::vector<std::pair<exec::CompareOp, model::Value>>>
      groups;
  for (const WhereClause& clause : stmt.where) {
    const auto [table, column] = full_resolver.Locate(clause.column);
    if (table < 0) {
      return Status::InvalidArgument("unknown column in WHERE: " +
                                     clause.column);
    }
    groups[{table, column}].emplace_back(clause.op, clause.literal);
  }
  opt.locals.resize(opt.tables.size());
  for (const auto& [key, conjuncts] : groups) {
    FoldColumn(key.second, conjuncts, &opt.locals[key.first]);
    if (opt.locals[key.first].contradiction) opt.contradiction = true;
  }
  if (opt.contradiction) {
    opt.bound = BindColumns(stmt, opt.tables, opt.joins,
                            std::vector<bool>(opt.tables.size(), false));
    return opt;
  }

  // --- physical phase: statistics, selectivities, access paths.
  opt.phys.resize(opt.tables.size());
  for (size_t t = 0; t < opt.tables.size(); ++t) {
    TablePhysical& phys = opt.phys[t];
    TableLogical& local = opt.locals[t];
    phys.stats = cache->Get(*opt.tables[t]);
    phys.base_rows = static_cast<double>(phys.stats->row_count);
    double est = phys.base_rows;
    for (LocalPredicate& pred : local.predicates) {
      pred.selectivity = EstimateSelectivity(
          phys.stats->Column(pred.column), pred.op, pred.literal, params);
      est *= pred.selectivity;
    }
    phys.est_rows = est;
    phys.fetch_rows = phys.base_rows;
    phys.access_cost = phys.base_rows * params.scan_row;
    // Zone-mapped backends skip blocks their scan hints refute, so a
    // selective eq/range predicate makes the full scan proportionally
    // cheaper (floored: skipping is best-case-clustered, not guaranteed).
    if (opt.tables[t]->SupportsZoneMapSkipping()) {
      double best = 1.0;
      for (const LocalPredicate& pred : local.predicates) {
        if (pred.op != exec::CompareOp::kEq && !IsRangeOp(pred.op)) continue;
        best = std::min(best, pred.selectivity);
      }
      phys.access_cost *= std::max(best, params.zone_map_min_fraction);
    }
    for (size_t i = 0; i < local.predicates.size(); ++i) {
      const LocalPredicate& pred = local.predicates[i];
      if (pred.op != exec::CompareOp::kEq && !IsRangeOp(pred.op)) continue;
      if (!opt.tables[t]->HasIndexOn(pred.column)) continue;
      const double fetch = phys.base_rows * pred.selectivity;
      const double cost = fetch * params.index_row;
      if (cost < phys.access_cost) {
        phys.access_cost = cost;
        phys.fetch_rows = fetch;
        phys.access_predicate = static_cast<int>(i);
      }
    }
  }

  // --- greedy join ordering: smallest filtered table first, then always
  // attach the partner minimizing the estimated intermediate cardinality.
  const size_t n = opt.tables.size();
  opt.driver = 0;
  for (size_t t = 1; t < n; ++t) {
    if (opt.phys[t].est_rows < opt.phys[opt.driver].est_rows) {
      opt.driver = static_cast<int>(t);
    }
  }
  std::vector<bool> placed(n, false);
  std::vector<bool> used(opt.joins.size(), false);
  placed[opt.driver] = true;
  double current = opt.phys[opt.driver].est_rows;
  while (opt.steps.size() < opt.joins.size()) {
    int best_edge = -1;
    JoinStep best;
    for (size_t e = 0; e < opt.joins.size(); ++e) {
      if (used[e]) continue;
      const BoundJoin& edge = opt.joins[e];
      JoinStep step;
      if (placed[edge.left_table] && !placed[edge.right_table]) {
        step.table = edge.right_table;
        step.placed_table = edge.left_table;
        step.placed_column = edge.left_column;
        step.new_column = edge.right_column;
      } else if (placed[edge.right_table] && !placed[edge.left_table]) {
        step.table = edge.left_table;
        step.placed_table = edge.right_table;
        step.placed_column = edge.right_column;
        step.new_column = edge.left_column;
      } else {
        continue;
      }
      step.est_out = EstimateJoinRows(
          current, opt.phys[step.table].est_rows,
          NdvOf(opt.phys[step.placed_table], step.placed_column, params),
          NdvOf(opt.phys[step.table], step.new_column, params));
      if (best_edge < 0 || step.est_out < best.est_out ||
          (step.est_out == best.est_out && step.table < best.table)) {
        best_edge = static_cast<int>(e);
        best = step;
      }
    }
    if (best_edge < 0) {
      return Status::InvalidArgument("join graph is disconnected");
    }
    used[best_edge] = true;
    placed[best.table] = true;
    current = best.est_out;
    opt.steps.push_back(best);
  }

  // --- join methods, walking the chosen chain.
  const OrderTarget order_target =
      ResolveOrderTarget(stmt, full_resolver, full_bound);
  double left_rows = opt.phys[opt.driver].est_rows;
  for (size_t s = 0; s < opt.steps.size(); ++s) {
    JoinStep& step = opt.steps[s];
    const TablePhysical& phys = opt.phys[step.table];
    const double ndv_placed =
        NdvOf(opt.phys[step.placed_table], step.placed_column, params);
    const double ndv_new = NdvOf(phys, step.new_column, params);
    step.matched =
        EstimateJoinRows(left_rows, phys.base_rows, ndv_placed, ndv_new);

    step.method = JoinStep::Method::kHash;
    step.cost = phys.access_cost + phys.est_rows * params.hash_build_row +
                left_rows * params.hash_probe_row;
    if (opt.tables[step.table]->HasIndexOn(step.new_column)) {
      const double inlj_cost = left_rows * params.index_probe +
                               step.matched * params.index_row;
      if (inlj_cost < step.cost) {
        step.method = JoinStep::Method::kInlj;
        step.cost = inlj_cost;
      }
    }
    // Sort-merge on the last join when it would absorb the final ORDER BY.
    const bool last = s + 1 == opt.steps.size();
    if (last && order_target.eligible &&
        ((order_target.table == step.placed_table &&
          order_target.column == step.placed_column) ||
         (order_target.table == step.table &&
          order_target.column == step.new_column))) {
      const double smj_cost = phys.access_cost + SortCost(left_rows, params) +
                              SortCost(phys.est_rows, params) +
                              (left_rows + phys.est_rows) * params.scan_row;
      const double rival_with_sort = step.cost + SortCost(step.est_out, params);
      if (smj_cost < rival_with_sort) {
        step.method = JoinStep::Method::kSortMerge;
        step.cost = smj_cost;
        opt.elide_sort = true;
      }
    }
    left_rows = step.est_out;
  }

  for (const JoinStep& step : opt.steps) {
    if (step.method != JoinStep::Method::kHash) opt.all_hash = false;
  }

  // Index lookups return full rows: IndexedNLJoin targets stay unpruned.
  std::vector<bool> keep_all(n, false);
  for (const JoinStep& step : opt.steps) {
    if (step.method == JoinStep::Method::kInlj) keep_all[step.table] = true;
  }
  opt.bound = BindColumns(stmt, opt.tables, opt.joins, keep_all);
  return opt;
}

// ----------------------------------------------------------- plan building

// Materializes one table's access path with local predicates applied:
// index fetch or pruned scan, then residual predicate evaluation in place.
// `node` receives the access (+ filter) subtree.
std::vector<exec::Row> MaterializeTable(const Optimized& opt, int t,
                                        const CostParams& params, Node* node) {
  const TablePhysical& phys = opt.phys[t];
  const TableLogical& local = opt.locals[t];
  const BoundTable& bound = opt.bound[t];
  const Table* table = opt.tables[t];

  std::vector<exec::Row> rows;
  bool consumed = false;
  if (phys.access_predicate >= 0) {
    const LocalPredicate& pred = local.predicates[phys.access_predicate];
    const std::string& column_name = table->schema().columns[pred.column];
    IndexFetch fetch = FetchViaIndex(table, column_name, pred.column, pred.op,
                                     pred.literal);
    consumed = fetch.consumed;
    rows = std::move(fetch.rows);
    PruneRows(bound, &rows);
    *node = Node{pred.op == exec::CompareOp::kEq ? "IndexLookup" : "IndexRange",
                 table->table_name() + "." + column_name, phys.fetch_rows,
                 phys.access_cost,
                 {}};
  } else {
    // Every local predicate rides along as a scan hint: zone-mapped
    // backends skip refuted blocks, everyone else ignores them. The
    // residual Filter below re-applies all of them either way.
    std::vector<exec::Predicate> hints;
    for (const LocalPredicate& pred : local.predicates) {
      hints.push_back(exec::Predicate{pred.column, pred.op, pred.literal});
    }
    rows = bound.ScanKept(hints);
    *node = Node{table->SupportsZoneMapSkipping() && !hints.empty()
                     ? "ColumnarScan"
                     : "Scan",
                 table->table_name(), phys.fetch_rows, phys.access_cost,
                 {}};
  }

  std::vector<exec::Predicate> residual;
  std::string label;
  for (size_t i = 0; i < local.predicates.size(); ++i) {
    if (consumed && static_cast<int>(i) == phys.access_predicate) continue;
    const LocalPredicate& pred = local.predicates[i];
    residual.push_back(exec::Predicate{bound.KeptIndexOf(pred.column), pred.op,
                                       pred.literal});
    if (!label.empty()) label += " AND ";
    label += PredicateLabel(table->schema().columns[pred.column], pred.op,
                            pred.literal);
  }
  if (!residual.empty()) {
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const exec::Row& row) {
                                return !exec::EvalAll(residual, row);
                              }),
               rows.end());
    Node filter{"Filter", label, phys.est_rows,
                phys.fetch_rows * 0.1 * static_cast<double>(residual.size()),
                {}};
    filter.children.push_back(std::move(*node));
    *node = std::move(filter);
  }
  (void)params;
  return rows;
}

// Combined-layout bookkeeping while the join chain is assembled: position
// of each (table, full column) pair in the current row layout.
class Layout {
 public:
  void Append(int table, int column) { slots_.emplace_back(table, column); }
  void AppendTable(const BoundTable& bound, int table) {
    for (int column : bound.kept) Append(table, column);
  }
  int PositionOf(int table, int column) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i] == std::make_pair(table, column)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  size_t size() const { return slots_.size(); }

 private:
  std::vector<std::pair<int, int>> slots_;
};

// Select-list / aggregate / order-limit operators with explain nodes.
// `group_ndv` estimates the distinct count of a combined-schema column for
// aggregate output sizing.
struct UpperBuild {
  exec::OperatorPtr plan;
  Node node;
};

UpperBuild BuildUpperWithNodes(const UpperPlanSpec& spec,
                               exec::OperatorPtr plan, Node node, double rows,
                               const std::function<double(int)>& group_ndv,
                               const CostParams& params) {
  if (spec.has_aggregate) {
    double groups = 1.0;
    for (int column : spec.group_columns) groups *= group_ndv(column);
    groups = std::min(groups, std::max(rows, 1.0));
    Node agg{"HashAggregate",
             "groups=" + std::to_string(spec.group_columns.size()) +
                 ", aggs=" + std::to_string(spec.aggregates.size()),
             groups, rows * params.scan_row,
             {}};
    agg.children.push_back(std::move(node));
    node = std::move(agg);
    plan = std::make_unique<exec::HashAggregateOp>(
        std::move(plan), spec.group_columns, spec.aggregates);
    rows = groups;
  }
  if (spec.project) {
    std::string names;
    for (const std::string& name : spec.project_names) {
      if (!names.empty()) names += ", ";
      names += name;
    }
    Node project{"Project", names, rows, 0, {}};
    project.children.push_back(std::move(node));
    node = std::move(project);
    plan = std::make_unique<exec::ProjectOp>(
        std::move(plan), spec.project_columns, spec.project_names);
  }
  if (!spec.sort_keys.empty()) {
    if (spec.limit.has_value()) {
      const double k = static_cast<double>(*spec.limit);
      Node top{"TopK", "k=" + std::to_string(*spec.limit), std::min(rows, k),
               rows * std::log2(std::max(k, 2.0)) * params.sort_row,
               {}};
      top.children.push_back(std::move(node));
      node = std::move(top);
      plan = std::make_unique<exec::TopKOp>(std::move(plan), spec.sort_keys,
                                            *spec.limit);
    } else {
      Node sort{"Sort", "", rows, SortCost(rows, params), {}};
      sort.children.push_back(std::move(node));
      node = std::move(sort);
      plan = std::make_unique<exec::SortOp>(std::move(plan), spec.sort_keys);
    }
  } else if (spec.limit.has_value()) {
    const double k = static_cast<double>(*spec.limit);
    Node limit{"Limit", std::to_string(*spec.limit), std::min(rows, k), 0, {}};
    limit.children.push_back(std::move(node));
    node = std::move(limit);
    plan = std::make_unique<exec::LimitOp>(std::move(plan), *spec.limit);
  }
  return UpperBuild{std::move(plan), std::move(node)};
}

exec::Schema CombinedSchema(const NameResolver& resolver) {
  exec::Schema schema;
  for (size_t i = 0; i < resolver.size(); ++i) {
    schema.AddColumn(resolver.NameAt(static_cast<int>(i)));
  }
  return schema;
}

}  // namespace

Result<PlanResult> CostAwarePlanner::Plan(const SelectStatement& stmt,
                                          const Catalog& catalog) {
  IMPLIANCE_ASSIGN_OR_RETURN(Optimized opt,
                             Optimize(stmt, catalog, stats_, params_));
  const NameResolver resolver(&opt.bound);
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(stmt, resolver, /*consumed_predicates=*/{},
                   /*filter_order=*/{}, /*adaptive_filter=*/false));

  // Maps a combined-schema position to the NDV of its backing column.
  auto group_ndv = [&](int combined) {
    int t = 0;
    while (t + 1 < static_cast<int>(opt.bound.size()) &&
           resolver.Offset(t + 1) <= combined) {
      ++t;
    }
    if (opt.phys.empty()) return params_.default_ndv;
    const int column = opt.bound[t].kept[combined - resolver.Offset(t)];
    return NdvOf(opt.phys[t], column, params_);
  };

  if (opt.contradiction) {
    Node empty{"EmptyResult", "contradictory WHERE clauses", 0, 0, {}};
    exec::OperatorPtr plan = std::make_unique<exec::RowSourceOp>(
        CombinedSchema(resolver), std::vector<exec::Row>{});
    UpperBuild upper = BuildUpperWithNodes(spec, std::move(plan),
                                           std::move(empty), 0, group_ndv,
                                           params_);
    std::string text;
    RenderNode(upper.node, 0, &text);
    std::vector<ExplainNode> nodes;
    FlattenNode(upper.node, 0, &nodes);
    return PlanResult{std::move(upper.plan), std::move(text),
                      std::move(nodes)};
  }

  if (opt.elide_sort) spec.sort_keys.clear();

  // Driver access.
  Node chain_node;
  std::vector<exec::Row> driver_rows =
      MaterializeTable(opt, opt.driver, params_, &chain_node);
  exec::OperatorPtr plan = std::make_unique<exec::RowSourceOp>(
      opt.bound[opt.driver].schema, std::move(driver_rows));
  Layout layout;
  layout.AppendTable(opt.bound[opt.driver], opt.driver);
  double rows = opt.phys[opt.driver].est_rows;

  // Join chain in the optimized order.
  for (const JoinStep& step : opt.steps) {
    const BoundTable& right = opt.bound[step.table];
    const Table* right_table = opt.tables[step.table];
    const int left_key = layout.PositionOf(step.placed_table,
                                           step.placed_column);
    const std::string key_label =
        right_table->table_name() + "." +
        right_table->schema().columns[step.new_column];
    if (step.method == JoinStep::Method::kInlj) {
      const TableLogical& local = opt.locals[step.table];
      plan = std::make_unique<exec::IndexedNLJoinOp>(
          std::move(plan), left_key,
          MakeIndexLookup(right_table, step.new_column),
          right_table->schema());
      Node join{"IndexedNLJoin", key_label,
                local.predicates.empty() ? step.est_out : step.matched,
                step.cost,
                {}};
      join.children.push_back(std::move(chain_node));
      join.children.push_back(
          Node{"IndexProbe", key_label, step.matched, 0, {}});
      chain_node = std::move(join);
      layout.AppendTable(right, step.table);
      // The lookup returns unfiltered rows; the table's local predicates
      // become a post-join residual filter.
      if (!local.predicates.empty()) {
        std::vector<exec::Predicate> residual;
        std::string label;
        for (const LocalPredicate& pred : local.predicates) {
          residual.push_back(
              exec::Predicate{layout.PositionOf(step.table, pred.column),
                              pred.op, pred.literal});
          if (!label.empty()) label += " AND ";
          label += PredicateLabel(
              right_table->schema().columns[pred.column], pred.op,
              pred.literal);
        }
        plan = std::make_unique<exec::FilterOp>(std::move(plan), residual,
                                                /*adaptive=*/false);
        Node filter{"Filter", label, step.est_out,
                    step.matched * 0.1 *
                        static_cast<double>(residual.size()),
                    {}};
        filter.children.push_back(std::move(chain_node));
        chain_node = std::move(filter);
      }
    } else {
      Node build_node;
      std::vector<exec::Row> build_rows =
          MaterializeTable(opt, step.table, params_, &build_node);
      auto build = std::make_unique<exec::RowSourceOp>(right.schema,
                                                       std::move(build_rows));
      const int right_key = right.KeptIndexOf(step.new_column);
      Node join;
      if (step.method == JoinStep::Method::kSortMerge) {
        plan = std::make_unique<exec::SortMergeJoinOp>(
            std::move(plan), std::move(build), left_key, right_key);
        join = Node{"SortMergeJoin",
                    "key=" + key_label +
                        (opt.elide_sort ? ", emits ORDER BY order" : ""),
                    step.est_out, step.cost,
                    {}};
      } else {
        plan = std::make_unique<exec::HashJoinOp>(
            std::move(plan), std::move(build), left_key, right_key);
        join = Node{"HashJoin", "build=" + right_table->table_name(),
                    step.est_out, step.cost,
                    {}};
      }
      join.children.push_back(std::move(chain_node));
      join.children.push_back(std::move(build_node));
      chain_node = std::move(join);
      layout.AppendTable(right, step.table);
    }
    rows = step.est_out;
  }

  // Restore the textual column layout when the join order permuted it, so
  // the (shared) upper resolution stays planner-independent.
  std::vector<int> perm;
  std::vector<std::string> perm_names;
  bool identity = true;
  for (size_t t = 0; t < opt.bound.size(); ++t) {
    for (size_t i = 0; i < opt.bound[t].kept.size(); ++i) {
      const int pos =
          layout.PositionOf(static_cast<int>(t), opt.bound[t].kept[i]);
      if (pos != static_cast<int>(perm.size())) identity = false;
      perm.push_back(pos);
      perm_names.push_back(opt.bound[t].schema.columns[i]);
    }
  }
  if (!identity) {
    plan = std::make_unique<exec::ProjectOp>(std::move(plan), perm,
                                             perm_names);
    Node reorder{"Reorder", "textual column layout", rows, 0, {}};
    reorder.children.push_back(std::move(chain_node));
    chain_node = std::move(reorder);
  }

  UpperBuild upper = BuildUpperWithNodes(spec, std::move(plan),
                                         std::move(chain_node), rows,
                                         group_ndv, params_);
  std::string text;
  RenderNode(upper.node, 0, &text);
  std::vector<ExplainNode> nodes;
  FlattenNode(upper.node, 0, &nodes);
  return PlanResult{std::move(upper.plan), std::move(text), std::move(nodes)};
}

Result<std::optional<ParallelPlan>> CostAwarePlanner::PlanParallel(
    const SelectStatement& stmt, const Catalog& catalog) {
  IMPLIANCE_ASSIGN_OR_RETURN(Optimized opt,
                             Optimize(stmt, catalog, stats_, params_));
  // Contradictions are trivially cheap serially; indexed-NL and sort-merge
  // shapes stay serial (streaming / ordered-output benefits).
  if (opt.contradiction || !opt.all_hash) {
    return std::optional<ParallelPlan>();
  }
  const NameResolver resolver(&opt.bound);
  IMPLIANCE_ASSIGN_OR_RETURN(
      UpperPlanSpec spec,
      ResolveUpper(stmt, resolver, /*consumed_predicates=*/{},
                   /*filter_order=*/{}, /*adaptive_filter=*/false));

  std::vector<std::string> lines;
  Node scratch;
  std::vector<exec::Row> driver_rows =
      MaterializeTable(opt, opt.driver, params_, &scratch);
  lines.push_back("Access(" + opt.tables[opt.driver]->table_name() +
                  ", prefiltered)");

  Layout layout;
  layout.AppendTable(opt.bound[opt.driver], opt.driver);

  struct Probe {
    std::shared_ptr<const exec::JoinHashTable> table;
    int left_key = -1;
  };
  std::vector<Probe> probes;
  for (const JoinStep& step : opt.steps) {
    const BoundTable& right = opt.bound[step.table];
    std::vector<exec::Row> build_rows =
        MaterializeTable(opt, step.table, params_, &scratch);
    exec::RowSourceOp build(right.schema, std::move(build_rows));
    probes.push_back(
        Probe{exec::JoinHashTable::Build(&build,
                                         right.KeptIndexOf(step.new_column)),
              layout.PositionOf(step.placed_table, step.placed_column)});
    layout.AppendTable(right, step.table);
    lines.push_back("HashProbe(build=" +
                    opt.tables[step.table]->table_name() + ", shared)");
  }

  // Restore the textual layout inside the pipeline when reordered.
  std::vector<int> perm;
  std::vector<std::string> perm_names;
  bool identity = true;
  for (size_t t = 0; t < opt.bound.size(); ++t) {
    for (size_t i = 0; i < opt.bound[t].kept.size(); ++i) {
      const int pos =
          layout.PositionOf(static_cast<int>(t), opt.bound[t].kept[i]);
      if (pos != static_cast<int>(perm.size())) identity = false;
      perm.push_back(pos);
      perm_names.push_back(opt.bound[t].schema.columns[i]);
    }
  }
  if (!identity) lines.push_back("Reorder(textual column layout)");

  ParallelPlan parallel;
  parallel.segment.source_schema = opt.bound[opt.driver].schema;
  parallel.segment.source_rows =
      std::make_shared<std::vector<exec::Row>>(std::move(driver_rows));

  const bool project_in_pipeline = !spec.has_aggregate && spec.project;
  parallel.segment.make_pipeline =
      [probes, identity, perm, perm_names, project_in_pipeline,
       columns = spec.project_columns,
       names = spec.project_names](exec::OperatorPtr source) {
        exec::OperatorPtr op = std::move(source);
        for (const Probe& probe : probes) {
          op = std::make_unique<exec::HashProbeOp>(std::move(op), probe.table,
                                                   probe.left_key);
        }
        if (!identity) {
          op = std::make_unique<exec::ProjectOp>(std::move(op), perm,
                                                 perm_names);
        }
        if (project_in_pipeline) {
          op = std::make_unique<exec::ProjectOp>(std::move(op), columns,
                                                 names);
        }
        return op;
      };

  planning::AttachParallelUpper(spec, &parallel, &lines);
  parallel.explain =
      "ParallelMorsels(cost-aware)\n" + planning::RenderExplain(lines);
  return std::optional<ParallelPlan>(std::move(parallel));
}

}  // namespace impliance::query::opt
