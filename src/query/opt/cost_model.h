#ifndef IMPLIANCE_QUERY_OPT_COST_MODEL_H_
#define IMPLIANCE_QUERY_OPT_COST_MODEL_H_

#include "exec/predicate.h"
#include "model/value.h"
#include "query/opt/stats.h"

namespace impliance::query::opt {

// Abstract per-row cost weights. Units are arbitrary; only ratios matter.
struct CostParams {
  double scan_row = 1.0;        // sequential read of one row
  double index_probe = 4.0;     // one index lookup (per probing row)
  double index_row = 2.0;       // one row fetched through an index
  double hash_build_row = 1.5;  // insert into a join hash table
  double hash_probe_row = 1.0;  // probe of a join hash table
  double sort_row = 0.3;        // per row * log2(rows) of a sort
  double default_ndv = 10.0;    // when no column stats exist
  double contains_selectivity = 0.1;
  double range_selectivity = 1.0 / 3.0;  // fallback range guess
  // Zone-map skipping floor: a scan over a zone-mapped table is charged
  // base_rows * max(best predicate selectivity, this fraction) * scan_row —
  // even perfectly clustered data still reads block metadata, and scattered
  // data skips nothing, so the discount never models below this floor.
  double zone_map_min_fraction = 0.05;
};

// Estimated fraction of rows satisfying `column <op> literal`. Equality and
// inequality use the NDV estimate; ranges interpolate within the observed
// [min, max] when both bound and literal are numeric, else fall back to the
// textbook 1/3. `column` may be null (no statistics).
double EstimateSelectivity(const ColumnStats* column, exec::CompareOp op,
                           const model::Value& literal,
                           const CostParams& params = {});

// Standard equi-join cardinality: |L| * |R| / max(ndv of either key).
double EstimateJoinRows(double left_rows, double right_rows, double left_ndv,
                        double right_ndv);

// n * log2(n) * sort_row, the cost charged for SortOp / sort-merge inputs.
double SortCost(double rows, const CostParams& params = {});

}  // namespace impliance::query::opt

#endif  // IMPLIANCE_QUERY_OPT_COST_MODEL_H_
