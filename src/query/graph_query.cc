#include "query/graph_query.h"

#include <algorithm>
#include <set>

#include "exec/parallel.h"

namespace impliance::query {

std::optional<GraphQuery::Connection> GraphQuery::HowConnected(
    model::DocId from, model::DocId to, size_t max_depth) const {
  auto path = join_index_->FindConnection(from, to, max_depth);
  if (!path.has_value()) return std::nullopt;
  Connection connection;
  connection.hops = path->size();
  connection.edges = std::move(*path);
  return connection;
}

std::string GraphQuery::Label(model::DocId doc) const {
  if (label_fn_) {
    std::string label = label_fn_(doc);
    if (!label.empty()) return label;
  }
  return "doc(" + std::to_string(doc) + ")";
}

std::string GraphQuery::ExplainConnection(model::DocId from,
                                          const Connection& connection) const {
  std::string out = Label(from);
  model::DocId current = from;
  for (const index::JoinIndex::Edge& edge : connection.edges) {
    const bool forward = edge.src == current;
    const model::DocId next = forward ? edge.dst : edge.src;
    out += forward ? " -[" + edge.relation + "]-> "
                   : " <-[" + edge.relation + "]- ";
    out += Label(next);
    current = next;
  }
  return out;
}

std::vector<model::DocId> GraphQuery::RelatedWithin(model::DocId seed,
                                                    size_t depth) const {
  if (dop_ <= 1) return join_index_->TransitiveClosure(seed, depth);
  // Level-synchronous BFS: every node in the current frontier expands
  // concurrently into its own slot, then the slots fold into the visited
  // set serially. Same closure as TransitiveClosure at any dop.
  std::set<model::DocId> visited{seed};
  std::vector<model::DocId> frontier{seed};
  for (size_t level = 0; level < depth && !frontier.empty(); ++level) {
    std::vector<std::vector<model::DocId>> slots(frontier.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) {
      tasks.push_back([this, &frontier, &slots, i] {
        slots[i] = join_index_->Neighbors(frontier[i]);
      });
    }
    exec::ParallelExecutor::Shared().RunTasks(std::move(tasks), dop_);
    std::vector<model::DocId> next;
    for (const std::vector<model::DocId>& slot : slots) {
      for (model::DocId neighbor : slot) {
        if (visited.insert(neighbor).second) next.push_back(neighbor);
      }
    }
    frontier = std::move(next);
  }
  return std::vector<model::DocId>(visited.begin(), visited.end());
}

std::vector<model::DocId> GraphQuery::RelatedBy(
    model::DocId doc, std::string_view relation) const {
  std::set<model::DocId> related;
  for (const auto& edge : join_index_->EdgesFrom(doc, relation)) {
    related.insert(edge.dst);
  }
  for (const auto& edge : join_index_->EdgesTo(doc, relation)) {
    related.insert(edge.src);
  }
  return std::vector<model::DocId>(related.begin(), related.end());
}

}  // namespace impliance::query
