#ifndef IMPLIANCE_OBS_METRICS_H_
#define IMPLIANCE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Process-wide observability primitives for the appliance's hot paths.
// The self-managing behaviors of Sections 3.4/5 (admission control,
// brokered resources, execution management) all need the system to see its
// own latencies and queue depths cheaply and continuously, which rules out
// the exact-sample common/Histogram (unbounded memory, sort-per-read).
// Everything here is O(1) per recording, allocation-free after
// registration, and safe to hammer from any number of threads while a
// reader snapshots. This library deliberately depends on nothing but the
// standard library so `common` (ThreadPool) can depend on it.
namespace impliance::obs {

// Runtime kill-switch: with metrics disabled every Add/Increment becomes a
// single relaxed load + branch, which is what bench_obs measures as the
// disarmed floor. Enabled by default.
void SetMetricsEnabled(bool enabled);

inline std::atomic<bool>& MetricsEnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline bool MetricsEnabled() {
  return MetricsEnabledFlag().load(std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Counter

// Monotonic counter, sharded across cache lines so concurrent writers from
// different threads do not bounce one hot line. Value() sums the shards
// (reads are rare; writes are the hot path).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  Shard shards_[kShards];
};

// -------------------------------------------------------------------- Gauge

// Point-in-time signed value (queue depth, live connections).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// --------------------------------------------------------- BoundedHistogram

// Fixed-memory log-scale histogram: values land in geometric buckets
// growing by 2^(1/kBucketsPerOctave) per step, so quantiles are accurate
// to within one bucket width (<= ~19% relative error) at any sample count.
// Add is O(1) (one log2 + one relaxed fetch_add); memory is a constant
// ~1.4 KiB regardless of how many samples are recorded — the replacement
// for the exact-sample Histogram on server and core hot paths.
struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // size kNumBuckets
  uint64_t total = 0;
  double sum = 0.0;
  double max = 0.0;

  size_t count() const { return static_cast<size_t>(total); }
  double Mean() const { return total == 0 ? 0.0 : sum / total; }
  double Max() const { return max; }
  // Nearest-rank quantile, reported as the containing bucket's upper
  // bound (monotone in p, so P99() >= P50() always holds).
  double Percentile(double p) const;
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  // Bucket-level exact merge (bucket boundaries are globally fixed).
  void Merge(const HistogramSnapshot& other);

  // One-line summary "n=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;
};

class BoundedHistogram {
 public:
  static constexpr size_t kBucketsPerOctave = 4;
  static constexpr size_t kOctaves = 40;
  // Bucket 0 is the underflow bucket [0, kMinValue]; the last bucket
  // absorbs overflow.
  static constexpr size_t kNumBuckets = 1 + kBucketsPerOctave * kOctaves;
  static constexpr double kMinValue = 1e-3;

  // Bucket index for a value; exposed so the accuracy test can compare
  // exact and approximate quantiles in bucket units.
  static size_t BucketIndex(double value);
  // Upper boundary of bucket `index` (the value quantiles report).
  static double BucketUpperBound(size_t index);

  void Add(double value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    // Double-precision sum as atomic bits: CAS loop, uncontended in
    // practice because latency recordings are brief.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
    double max = max_.load(std::memory_order_relaxed);
    while (value > max && !max_.compare_exchange_weak(
                              max, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// ----------------------------------------------------------------- Registry

struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Name-keyed home of every counter/gauge/histogram in the process.
// Registration (Get*) takes a mutex and is meant to happen once per call
// site (cache the returned pointer); the returned objects are lock-free
// and live for the life of the process.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  BoundedHistogram* GetHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;

  // Testing/bench escape hatch: forget every registered metric. Pointers
  // handed out earlier dangle afterwards — only for process-wide resets
  // between bench phases, never on serving paths.
  void ResetForTesting();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<BoundedHistogram>> histograms_;
};

}  // namespace impliance::obs

#endif  // IMPLIANCE_OBS_METRICS_H_
