#ifndef IMPLIANCE_OBS_TRACE_H_
#define IMPLIANCE_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace impliance::obs {

// Per-request tracing in the Dapper mold: the server mints one
// TraceContext per request (trace id, op, optional deadline), the context
// rides through the core into cluster scatter/gather and parallel morsel
// execution via a thread-local current-trace pointer (explicitly re-attached
// on worker threads), and every interesting stage records a named span.
// Finished traces land in a bounded in-memory ring; traces slower than the
// slow-query threshold are additionally counted and logged, and both are
// surfaced through the wire protocol's kStats op.

// One timed stage of a request. `start_micros` is relative to the trace
// start, so summaries are self-contained.
struct Span {
  std::string name;
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;
};

class TraceContext {
 public:
  // Spans beyond this are dropped (counted in spans_dropped) so a scatter
  // over many partitions cannot grow a trace without bound.
  static constexpr size_t kMaxSpans = 32;

  TraceContext(uint64_t trace_id, std::string op, uint64_t deadline_micros);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& op() const { return op_; }
  uint64_t start_micros() const { return start_micros_; }
  // Absolute (monotonic-clock) deadline; 0 = none.
  uint64_t deadline_micros() const { return deadline_micros_; }

  // Thread-safe; `start_micros` is absolute and converted to a trace-
  // relative offset here.
  void RecordSpan(std::string name, uint64_t start_micros,
                  uint64_t duration_micros);

 private:
  friend struct FinishedTrace;
  friend void FinishTrace(const std::shared_ptr<TraceContext>& trace);

  const uint64_t trace_id_;
  const std::string op_;
  const uint64_t start_micros_;
  const uint64_t deadline_micros_;

  std::mutex mutex_;
  std::vector<Span> spans_;
  uint64_t spans_dropped_ = 0;
};

using TracePtr = std::shared_ptr<TraceContext>;

// Mints a context with a fresh process-unique trace id. Does NOT attach it
// to the current thread; pair with ScopedTraceAttach.
TracePtr StartTrace(std::string op, uint64_t deadline_micros = 0);

// The trace the current thread is working for (nullptr when untraced).
// Copying the returned shared_ptr into a task closure is how a trace
// crosses threads (cluster node tasks, morsel workers).
TracePtr CurrentTrace();

// Installs `trace` as the current thread's trace for the scope, restoring
// the previous one on destruction. Safe to nest.
class ScopedTraceAttach {
 public:
  explicit ScopedTraceAttach(TracePtr trace);
  ~ScopedTraceAttach();

  ScopedTraceAttach(const ScopedTraceAttach&) = delete;
  ScopedTraceAttach& operator=(const ScopedTraceAttach&) = delete;

 private:
  TracePtr previous_;
};

// Records one span into the thread's current trace (no-op when untraced —
// a relaxed thread-local read, cheap enough for hot paths).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TracePtr trace_;  // captured at construction; survives detach
  const char* name_;
  uint64_t start_micros_ = 0;
};

// An immutable completed trace as stored in the ring.
struct FinishedTrace {
  uint64_t trace_id = 0;
  std::string op;
  uint64_t total_micros = 0;
  bool slow = false;
  uint64_t spans_dropped = 0;
  std::vector<Span> spans;
};

// Completes `trace`: computes the total duration, appends the summary to
// the bounded recent-traces ring, and — above the slow threshold — bumps
// the slow counter and writes one log line.
void FinishTrace(const TracePtr& trace);

// Most recent finished traces, newest first, at most `max_traces`.
std::vector<FinishedTrace> RecentTraces(size_t max_traces);

// Traces with total duration >= this threshold are flagged slow.
void SetSlowTraceThresholdMicros(uint64_t micros);
uint64_t SlowTraceThresholdMicros();
uint64_t SlowTraceCount();

// Testing: drops every buffered finished trace.
void ClearTracesForTesting();

}  // namespace impliance::obs

#endif  // IMPLIANCE_OBS_TRACE_H_
