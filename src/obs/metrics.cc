#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace impliance::obs {

void SetMetricsEnabled(bool enabled) {
  MetricsEnabledFlag().store(enabled, std::memory_order_relaxed);
}

// ------------------------------------------------------------------ Counter

size_t Counter::ShardIndex() {
  // One shard per thread, assigned round-robin on first use; the bitmask
  // folds thread counts beyond kShards back onto existing shards.
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

// --------------------------------------------------------- BoundedHistogram

size_t BoundedHistogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN and negatives
  const double octaves = std::log2(value / kMinValue);
  const size_t index =
      1 + static_cast<size_t>(octaves * kBucketsPerOctave);
  return std::min(index, kNumBuckets - 1);
}

double BoundedHistogram::BucketUpperBound(size_t index) {
  if (index == 0) return kMinValue;
  return kMinValue *
         std::exp2(static_cast<double>(index) / kBucketsPerOctave);
}

HistogramSnapshot BoundedHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    snapshot.buckets[i] = n;
    snapshot.total += n;
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

double HistogramSnapshot::Percentile(double p) const {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Never report beyond the true maximum (tightens the top bucket).
      return std::min(BoundedHistogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  total += other.total;
  sum += other.sum;
  max = std::max(max, other.max);
}

std::string HistogramSnapshot::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(total), Mean(),
                Percentile(50), Percentile(95), Percentile(99), Max());
  return buf;
}

// ----------------------------------------------------------------- Registry

Registry& Registry::Global() {
  // Leaked singleton: metric pointers cached in static locals across the
  // process must stay valid through static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

BoundedHistogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<BoundedHistogram>();
  return slot.get();
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

void Registry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace impliance::obs
