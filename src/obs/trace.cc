#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>

namespace impliance::obs {

namespace {

uint64_t MonotonicMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Thread-local current trace. The slot is heap-allocated on first attach
// (so threads that never trace pay nothing) and reclaimed by a TLS reaper
// at thread exit; the reaper nulls the pointer, so a late recreation from
// another TLS destructor degrades to a leak rather than a dangling read.
// The TracePtr destructor only touches its own heap context, never other
// statics, so running it during thread/process teardown is safe.
thread_local TracePtr* t_current_trace = nullptr;

struct SlotReaper {
  ~SlotReaper() {
    delete t_current_trace;
    t_current_trace = nullptr;
  }
};
thread_local SlotReaper t_slot_reaper;

TracePtr& CurrentSlot() {
  if (t_current_trace == nullptr) {
    (void)&t_slot_reaper;  // force TLS construction so the reaper runs
    t_current_trace = new TracePtr();
  }
  return *t_current_trace;
}

constexpr size_t kRecentRingCapacity = 64;
// 100 ms: generous for an in-memory appliance, tight enough that a scan
// stuck behind failover rounds shows up.
constexpr uint64_t kDefaultSlowThresholdMicros = 100'000;

struct TraceSink {
  std::mutex mutex;
  std::deque<FinishedTrace> ring;  // newest at back
  std::atomic<uint64_t> slow_threshold_micros{kDefaultSlowThresholdMicros};
  std::atomic<uint64_t> slow_count{0};
};

TraceSink& Sink() {
  static TraceSink* sink = new TraceSink();  // leaked: outlives all threads
  return *sink;
}

}  // namespace

TraceContext::TraceContext(uint64_t trace_id, std::string op,
                           uint64_t deadline_micros)
    : trace_id_(trace_id),
      op_(std::move(op)),
      start_micros_(MonotonicMicros()),
      deadline_micros_(deadline_micros) {}

void TraceContext::RecordSpan(std::string name, uint64_t start_micros,
                              uint64_t duration_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= kMaxSpans) {
    ++spans_dropped_;
    return;
  }
  Span span;
  span.name = std::move(name);
  span.start_micros =
      start_micros >= start_micros_ ? start_micros - start_micros_ : 0;
  span.duration_micros = duration_micros;
  spans_.push_back(std::move(span));
}

TracePtr StartTrace(std::string op, uint64_t deadline_micros) {
  static std::atomic<uint64_t> next_id{1};
  return std::make_shared<TraceContext>(
      next_id.fetch_add(1, std::memory_order_relaxed), std::move(op),
      deadline_micros);
}

TracePtr CurrentTrace() {
  // Read-only: an untraced thread must not allocate (and leak) a slot just
  // by asking — only ScopedTraceAttach materializes one.
  return t_current_trace == nullptr ? nullptr : *t_current_trace;
}

ScopedTraceAttach::ScopedTraceAttach(TracePtr trace) {
  TracePtr& slot = CurrentSlot();
  previous_ = std::move(slot);
  slot = std::move(trace);
}

ScopedTraceAttach::~ScopedTraceAttach() {
  CurrentSlot() = std::move(previous_);
}

ScopedSpan::ScopedSpan(const char* name)
    : trace_(CurrentTrace()), name_(name) {
  if (trace_ != nullptr) start_micros_ = MonotonicMicros();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  trace_->RecordSpan(name_, start_micros_, MonotonicMicros() - start_micros_);
}

void FinishTrace(const TracePtr& trace) {
  if (trace == nullptr) return;
  FinishedTrace finished;
  finished.trace_id = trace->trace_id();
  finished.op = trace->op();
  finished.total_micros = MonotonicMicros() - trace->start_micros();
  {
    std::lock_guard<std::mutex> lock(trace->mutex_);
    finished.spans = trace->spans_;
    finished.spans_dropped = trace->spans_dropped_;
  }
  TraceSink& sink = Sink();
  finished.slow = finished.total_micros >=
                  sink.slow_threshold_micros.load(std::memory_order_relaxed);
  if (finished.slow) {
    sink.slow_count.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr,
                 "[impliance] SLOW trace %llu op=%s total=%.3fms spans=%zu\n",
                 static_cast<unsigned long long>(finished.trace_id),
                 finished.op.c_str(), finished.total_micros / 1000.0,
                 finished.spans.size());
  }
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.ring.push_back(std::move(finished));
  if (sink.ring.size() > kRecentRingCapacity) sink.ring.pop_front();
}

std::vector<FinishedTrace> RecentTraces(size_t max_traces) {
  TraceSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  std::vector<FinishedTrace> out;
  const size_t n = std::min(max_traces, sink.ring.size());
  out.reserve(n);
  for (auto it = sink.ring.rbegin(); it != sink.ring.rend() && out.size() < n;
       ++it) {
    out.push_back(*it);
  }
  return out;
}

void SetSlowTraceThresholdMicros(uint64_t micros) {
  Sink().slow_threshold_micros.store(micros, std::memory_order_relaxed);
}

uint64_t SlowTraceThresholdMicros() {
  return Sink().slow_threshold_micros.load(std::memory_order_relaxed);
}

uint64_t SlowTraceCount() {
  return Sink().slow_count.load(std::memory_order_relaxed);
}

void ClearTracesForTesting() {
  TraceSink& sink = Sink();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.ring.clear();
}

}  // namespace impliance::obs
