#ifndef IMPLIANCE_SERVER_WIRE_PROTOCOL_H_
#define IMPLIANCE_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace impliance::server::wire {

// The appliance wire protocol: a compact length-prefixed binary framing
// that turns the in-process `core::Impliance` facade into a network
// service ("users interact with it through a network API", Section 2.1).
// Encode/decode is fully separated from transport so every frame shape is
// unit-testable without sockets.
//
// Frame layout on the wire:
//
//   fixed32 body_length | body
//
// where body is, for requests:
//
//   byte version | byte op | varint64 request_id | varint64 deadline_ms |
//   lp(kind) | lp(payload) | varint64 doc_id | varint64 limit |
//   varint32 n_facet_paths | n * lp(path)
//
// and for responses:
//
//   byte version | byte status | varint64 request_id | lp(error) |
//   varint32 n_doc_ids | n * varint64 |
//   varint32 n_hits   | n * (varint64 doc | fixed64 score-bits |
//                            lp(kind) | lp(snippet)) |
//   varint32 n_rows   | n * lp(row) |
//   varint32 n_counters | n * (lp(name) | varint64 value) |
//   varint32 n_latencies | n * (lp(op) | varint64 count |
//                               3 * fixed64 pXX-ms-bits) |
//   varint32 n_traces | n * (varint64 trace_id | lp(op) |
//                            varint64 total_micros | byte slow |
//                            varint64 spans_dropped | varint32 n_spans |
//                            n * (lp(name) | varint64 start_micros |
//                                 varint64 duration_micros)) |
//   varint32 n_plan | n * (varint32 depth | lp(name) | lp(detail) |
//                          fixed64 est-rows-bits | fixed64 est-cost-bits) |
//   byte degraded | varint64 missing_partitions |
//   lp(body)
//
// (`lp` = length-prefixed string: varint32 size + bytes.) Every field is
// always present — absent semantics are "empty"/0 — which keeps decode
// branch-free and makes randomized round-trip testing exhaustive.

// Bumped on any incompatible layout change; peers reject mismatches.
// v2: responses carry degraded/missing_partitions (result completeness).
// v3: Stats responses carry recent request traces with per-stage spans.
// v4: Explain op; responses carry the costed plan tree (pre-order,
//     depth-encoded). Request `kind` doubles as the planner name for
//     Sql/Explain ("" = cost-aware default, "simple" = baseline).
inline constexpr uint8_t kWireVersion = 4;

// Upper bound on a frame body; anything larger is rejected before
// allocation so a garbage length prefix cannot OOM the server.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

enum class Op : uint8_t {
  kPing = 0,
  kIngest = 1,    // kind + payload (raw content, format sniffed)
  kGet = 2,       // doc_id -> JSON body
  kSearch = 3,    // payload = keywords, limit = top-k
  kFacet = 4,     // payload = keywords, kind, facet_paths
  kSql = 5,       // payload = statement -> rows (kind = planner name)
  kStats = 6,     // appliance + serving statistics
  kShutdown = 7,  // graceful drain
  kExplain = 8,   // payload = statement -> plan tree, not executed
};

// Highest valid Op value. Every per-op table must be sized kLastOp + 1, and
// decoding rejects anything above it.
inline constexpr Op kLastOp = Op::kExplain;

enum class WireStatus : uint8_t {
  kOk = 0,
  kError = 1,             // op-level failure; see `error`
  kNotFound = 2,
  kInvalidRequest = 3,    // malformed frame / unknown op / bad version
  kOverloaded = 4,        // admission queue full — load was shed
  kDeadlineExceeded = 5,  // expired before a worker picked it up
  kShuttingDown = 6,      // server is draining; no new work accepted
};

const char* OpName(Op op);
const char* WireStatusName(WireStatus status);

struct Request {
  Op op = Op::kPing;
  uint64_t id = 0;
  // Total budget for the request measured from server receipt; 0 = none.
  // Requests still queued when the budget lapses are answered with
  // kDeadlineExceeded instead of being executed.
  uint64_t deadline_ms = 0;
  std::string kind;     // Ingest, Facet kind restriction, Sql/Explain planner
  std::string payload;  // Ingest raw / Search+Facet keywords / Sql text
  uint64_t doc_id = 0;  // Get
  uint64_t limit = 10;  // Search/Facet top-k
  std::vector<std::string> facet_paths;  // Facet

  friend bool operator==(const Request&, const Request&) = default;
};

struct SearchResult {
  uint64_t doc = 0;
  double score = 0.0;
  std::string kind;
  std::string snippet;

  friend bool operator==(const SearchResult&, const SearchResult&) = default;
};

// Per-op serving latency, extracted server-side from a Histogram.
struct OpLatency {
  std::string op;
  uint64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  friend bool operator==(const OpLatency&, const OpLatency&) = default;
};

// One timed stage of a traced request (start is trace-relative).
struct TraceSpan {
  std::string name;
  uint64_t start_micros = 0;
  uint64_t duration_micros = 0;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

// One node of the costed plan tree an Explain response carries: pre-order
// with explicit depth, so the client can re-indent without a tree codec.
struct PlanNode {
  uint32_t depth = 0;
  std::string name;    // operator ("HashJoin", "IndexLookup", ...)
  std::string detail;  // operator argument rendering
  double est_rows = 0.0;
  double est_cost = 0.0;

  friend bool operator==(const PlanNode&, const PlanNode&) = default;
};

// A finished request trace as surfaced by the Stats op: where each stage
// of a recent request spent its time, and whether it crossed the
// slow-query threshold.
struct TraceSummary {
  uint64_t trace_id = 0;
  std::string op;
  uint64_t total_micros = 0;
  bool slow = false;
  uint64_t spans_dropped = 0;
  std::vector<TraceSpan> spans;

  friend bool operator==(const TraceSummary&, const TraceSummary&) = default;
};

struct Response {
  uint64_t id = 0;
  WireStatus status = WireStatus::kOk;
  std::string error;               // non-empty iff status != kOk
  std::vector<uint64_t> doc_ids;   // Ingest
  std::vector<SearchResult> hits;  // Search
  std::vector<std::string> rows;   // Sql (tab-separated values per row)
  // Stats: named counters (documents, terms, shed_total, ...).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<OpLatency> op_latencies;  // Stats
  std::vector<TraceSummary> traces;     // Stats: recent request traces
  std::vector<PlanNode> plan;           // Explain: costed plan tree
  // Result completeness: a kOk answer with degraded=true is explicitly
  // partial — `missing_partitions` units of work were lost to node
  // failures even after failover. Complete answers are {false, 0}.
  bool degraded = false;
  uint64_t missing_partitions = 0;
  std::string body;                // Get JSON / Facet rendering

  friend bool operator==(const Response&, const Response&) = default;
};

// Appends a complete frame (length prefix + body) to *dst.
void EncodeRequest(const Request& request, std::string* dst);
void EncodeResponse(const Response& response, std::string* dst);

// Decodes a frame *body* (without the length prefix). Returns
// InvalidArgument on version mismatch, unknown op/status, or trailing or
// truncated bytes; *out is unspecified on error.
Status DecodeRequest(std::string_view body, Request* out);
Status DecodeResponse(std::string_view body, Response* out);

// Incremental frame extraction for buffered transports. Inspects *buffer:
// returns kOk and moves one frame body into *body (consuming it from
// *buffer), kBusy when more bytes are needed, or kInvalidArgument when the
// length prefix exceeds max_frame_bytes (connection should be dropped).
Status ExtractFrame(std::string* buffer, std::string* body,
                    uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace impliance::server::wire

#endif  // IMPLIANCE_SERVER_WIRE_PROTOCOL_H_
