#ifndef IMPLIANCE_SERVER_NET_UTIL_H_
#define IMPLIANCE_SERVER_NET_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/wire_protocol.h"

namespace impliance::server {

// Thin POSIX socket helpers shared by ImplianceServer and ImplianceClient.
// All functions are blocking and EINTR-safe.

// Writes every byte of `data` to `fd`.
Status WriteFully(int fd, std::string_view data);

// Reads exactly `n` bytes into *out (replacing its contents). An EOF before
// any byte arrives returns NotFound ("connection closed"); a partial read
// followed by EOF returns IOError.
Status ReadFully(int fd, size_t n, std::string* out);

// Reads one length-prefixed frame body from `fd`. NotFound on clean EOF at
// a frame boundary, InvalidArgument when the announced length exceeds
// `max_frame_bytes` (caller should drop the connection — the stream can no
// longer be trusted to be framed).
Status RecvFrame(int fd, std::string* body,
                 uint32_t max_frame_bytes = wire::kMaxFrameBytes);

// Creates a TCP socket connected to host:port, or an error Status.
Status ConnectTcp(const std::string& host, uint16_t port, int* fd_out);

// Creates a listening TCP socket bound to host:port (SO_REUSEADDR; port 0
// picks an ephemeral port). On success stores the fd and the actual port.
Status ListenTcp(const std::string& host, uint16_t port, int* fd_out,
                 uint16_t* port_out);

// Sets SO_RCVTIMEO so blocking reads fail with IOError instead of hanging.
Status SetRecvTimeout(int fd, uint64_t timeout_ms);

}  // namespace impliance::server

#endif  // IMPLIANCE_SERVER_NET_UTIL_H_
