#include "server/wire_protocol.h"

#include <bit>

#include "common/coding.h"

namespace impliance::server::wire {

namespace {

constexpr uint8_t kMaxStatus = static_cast<uint8_t>(WireStatus::kShuttingDown);

void PutDouble(std::string* dst, double value) {
  PutFixed64(dst, std::bit_cast<uint64_t>(value));
}

bool GetDouble(std::string_view* input, double* value) {
  uint64_t bits = 0;
  if (!GetFixed64(input, &bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool GetByte(std::string_view* input, uint8_t* value) {
  if (input->empty()) return false;
  *value = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  return true;
}

bool GetString(std::string_view* input, std::string* out) {
  std::string_view piece;
  if (!GetLengthPrefixed(input, &piece)) return false;
  out->assign(piece);
  return true;
}

// Wraps `body` in a length-prefixed frame appended to *dst.
void AppendFrame(std::string_view body, std::string* dst) {
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  dst->append(body);
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing: return "ping";
    case Op::kIngest: return "ingest";
    case Op::kGet: return "get";
    case Op::kSearch: return "search";
    case Op::kFacet: return "facet";
    case Op::kSql: return "sql";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kExplain: return "explain";
  }
  return "unknown";
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "OK";
    case WireStatus::kError: return "ERROR";
    case WireStatus::kNotFound: return "NOT_FOUND";
    case WireStatus::kInvalidRequest: return "INVALID_REQUEST";
    case WireStatus::kOverloaded: return "OVERLOADED";
    case WireStatus::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireStatus::kShuttingDown: return "SHUTTING_DOWN";
  }
  return "unknown";
}

void EncodeRequest(const Request& request, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(kWireVersion));
  body.push_back(static_cast<char>(request.op));
  PutVarint64(&body, request.id);
  PutVarint64(&body, request.deadline_ms);
  PutLengthPrefixed(&body, request.kind);
  PutLengthPrefixed(&body, request.payload);
  PutVarint64(&body, request.doc_id);
  PutVarint64(&body, request.limit);
  PutVarint32(&body, static_cast<uint32_t>(request.facet_paths.size()));
  for (const std::string& path : request.facet_paths) {
    PutLengthPrefixed(&body, path);
  }
  AppendFrame(body, dst);
}

Status DecodeRequest(std::string_view body, Request* out) {
  uint8_t version = 0, op = 0;
  if (!GetByte(&body, &version)) return Malformed("missing version");
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (!GetByte(&body, &op)) return Malformed("missing op");
  if (op > static_cast<uint8_t>(kLastOp)) {
    return Status::InvalidArgument("unknown op " + std::to_string(op));
  }
  out->op = static_cast<Op>(op);
  uint32_t n_paths = 0;
  if (!GetVarint64(&body, &out->id) ||
      !GetVarint64(&body, &out->deadline_ms) ||
      !GetString(&body, &out->kind) || !GetString(&body, &out->payload) ||
      !GetVarint64(&body, &out->doc_id) || !GetVarint64(&body, &out->limit) ||
      !GetVarint32(&body, &n_paths)) {
    return Malformed("truncated request");
  }
  if (n_paths > body.size()) return Malformed("facet path count");
  out->facet_paths.clear();
  out->facet_paths.reserve(n_paths);
  for (uint32_t i = 0; i < n_paths; ++i) {
    std::string path;
    if (!GetString(&body, &path)) return Malformed("truncated facet path");
    out->facet_paths.push_back(std::move(path));
  }
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

void EncodeResponse(const Response& response, std::string* dst) {
  std::string body;
  body.push_back(static_cast<char>(kWireVersion));
  body.push_back(static_cast<char>(response.status));
  PutVarint64(&body, response.id);
  PutLengthPrefixed(&body, response.error);
  PutVarint32(&body, static_cast<uint32_t>(response.doc_ids.size()));
  for (uint64_t id : response.doc_ids) PutVarint64(&body, id);
  PutVarint32(&body, static_cast<uint32_t>(response.hits.size()));
  for (const SearchResult& hit : response.hits) {
    PutVarint64(&body, hit.doc);
    PutDouble(&body, hit.score);
    PutLengthPrefixed(&body, hit.kind);
    PutLengthPrefixed(&body, hit.snippet);
  }
  PutVarint32(&body, static_cast<uint32_t>(response.rows.size()));
  for (const std::string& row : response.rows) PutLengthPrefixed(&body, row);
  PutVarint32(&body, static_cast<uint32_t>(response.counters.size()));
  for (const auto& [name, value] : response.counters) {
    PutLengthPrefixed(&body, name);
    PutVarint64(&body, value);
  }
  PutVarint32(&body, static_cast<uint32_t>(response.op_latencies.size()));
  for (const OpLatency& latency : response.op_latencies) {
    PutLengthPrefixed(&body, latency.op);
    PutVarint64(&body, latency.count);
    PutDouble(&body, latency.p50_ms);
    PutDouble(&body, latency.p95_ms);
    PutDouble(&body, latency.p99_ms);
  }
  PutVarint32(&body, static_cast<uint32_t>(response.traces.size()));
  for (const TraceSummary& trace : response.traces) {
    PutVarint64(&body, trace.trace_id);
    PutLengthPrefixed(&body, trace.op);
    PutVarint64(&body, trace.total_micros);
    body.push_back(static_cast<char>(trace.slow ? 1 : 0));
    PutVarint64(&body, trace.spans_dropped);
    PutVarint32(&body, static_cast<uint32_t>(trace.spans.size()));
    for (const TraceSpan& span : trace.spans) {
      PutLengthPrefixed(&body, span.name);
      PutVarint64(&body, span.start_micros);
      PutVarint64(&body, span.duration_micros);
    }
  }
  PutVarint32(&body, static_cast<uint32_t>(response.plan.size()));
  for (const PlanNode& node : response.plan) {
    PutVarint32(&body, node.depth);
    PutLengthPrefixed(&body, node.name);
    PutLengthPrefixed(&body, node.detail);
    PutDouble(&body, node.est_rows);
    PutDouble(&body, node.est_cost);
  }
  body.push_back(static_cast<char>(response.degraded ? 1 : 0));
  PutVarint64(&body, response.missing_partitions);
  PutLengthPrefixed(&body, response.body);
  AppendFrame(body, dst);
}

Status DecodeResponse(std::string_view body, Response* out) {
  uint8_t version = 0, status = 0;
  if (!GetByte(&body, &version)) return Malformed("missing version");
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  if (!GetByte(&body, &status)) return Malformed("missing status");
  if (status > kMaxStatus) {
    return Status::InvalidArgument("unknown status " + std::to_string(status));
  }
  out->status = static_cast<WireStatus>(status);
  if (!GetVarint64(&body, &out->id) || !GetString(&body, &out->error)) {
    return Malformed("truncated response header");
  }

  uint32_t n = 0;
  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("doc ids");
  out->doc_ids.clear();
  out->doc_ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id = 0;
    if (!GetVarint64(&body, &id)) return Malformed("truncated doc id");
    out->doc_ids.push_back(id);
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("hits");
  out->hits.clear();
  out->hits.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SearchResult hit;
    if (!GetVarint64(&body, &hit.doc) || !GetDouble(&body, &hit.score) ||
        !GetString(&body, &hit.kind) || !GetString(&body, &hit.snippet)) {
      return Malformed("truncated hit");
    }
    out->hits.push_back(std::move(hit));
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("rows");
  out->rows.clear();
  out->rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string row;
    if (!GetString(&body, &row)) return Malformed("truncated row");
    out->rows.push_back(std::move(row));
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("counters");
  out->counters.clear();
  out->counters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!GetString(&body, &name) || !GetVarint64(&body, &value)) {
      return Malformed("truncated counter");
    }
    out->counters.emplace_back(std::move(name), value);
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("latencies");
  out->op_latencies.clear();
  out->op_latencies.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    OpLatency latency;
    if (!GetString(&body, &latency.op) ||
        !GetVarint64(&body, &latency.count) ||
        !GetDouble(&body, &latency.p50_ms) ||
        !GetDouble(&body, &latency.p95_ms) ||
        !GetDouble(&body, &latency.p99_ms)) {
      return Malformed("truncated latency");
    }
    out->op_latencies.push_back(std::move(latency));
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("traces");
  out->traces.clear();
  out->traces.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TraceSummary trace;
    uint8_t slow = 0;
    uint32_t n_spans = 0;
    if (!GetVarint64(&body, &trace.trace_id) || !GetString(&body, &trace.op) ||
        !GetVarint64(&body, &trace.total_micros) || !GetByte(&body, &slow) ||
        slow > 1 || !GetVarint64(&body, &trace.spans_dropped) ||
        !GetVarint32(&body, &n_spans) || n_spans > body.size()) {
      return Malformed("truncated trace");
    }
    trace.slow = slow != 0;
    trace.spans.reserve(n_spans);
    for (uint32_t s = 0; s < n_spans; ++s) {
      TraceSpan span;
      if (!GetString(&body, &span.name) ||
          !GetVarint64(&body, &span.start_micros) ||
          !GetVarint64(&body, &span.duration_micros)) {
        return Malformed("truncated span");
      }
      trace.spans.push_back(std::move(span));
    }
    out->traces.push_back(std::move(trace));
  }

  if (!GetVarint32(&body, &n) || n > body.size()) return Malformed("plan");
  out->plan.clear();
  out->plan.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PlanNode node;
    if (!GetVarint32(&body, &node.depth) || !GetString(&body, &node.name) ||
        !GetString(&body, &node.detail) || !GetDouble(&body, &node.est_rows) ||
        !GetDouble(&body, &node.est_cost)) {
      return Malformed("truncated plan node");
    }
    out->plan.push_back(std::move(node));
  }

  uint8_t degraded = 0;
  if (!GetByte(&body, &degraded) || degraded > 1) {
    return Malformed("degraded flag");
  }
  out->degraded = degraded != 0;
  if (!GetVarint64(&body, &out->missing_partitions)) {
    return Malformed("truncated missing partitions");
  }
  if (!GetString(&body, &out->body)) return Malformed("truncated body");
  if (!body.empty()) return Malformed("trailing bytes");
  return Status::OK();
}

Status ExtractFrame(std::string* buffer, std::string* body,
                    uint32_t max_frame_bytes) {
  if (buffer->size() < 4) return Status::Busy("need length prefix");
  std::string_view view(*buffer);
  uint32_t length = 0;
  GetFixed32(&view, &length);
  if (length > max_frame_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(length) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_frame_bytes));
  }
  if (view.size() < length) return Status::Busy("need frame body");
  body->assign(view.substr(0, length));
  buffer->erase(0, 4 + length);
  return Status::OK();
}

}  // namespace impliance::server::wire
