#include "server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "server/net_util.h"

namespace impliance::server {

ImplianceClient::ImplianceClient(ClientOptions options)
    : options_(std::move(options)) {}

ImplianceClient::~ImplianceClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<ImplianceClient>> ImplianceClient::Connect(
    ClientOptions options) {
  if (options.port == 0) return Status::InvalidArgument("port is required");
  auto client =
      std::unique_ptr<ImplianceClient>(new ImplianceClient(options));

  Status last = Status::OK();
  uint64_t backoff_ms = client->options_.retry_backoff_ms;
  const int attempts = std::max(1, client->options_.connect_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    last = ConnectTcp(client->options_.host, client->options_.port,
                      &client->fd_);
    if (last.ok()) break;
  }
  IMPLIANCE_RETURN_IF_ERROR(last);
  if (client->options_.recv_timeout_ms != 0) {
    IMPLIANCE_RETURN_IF_ERROR(
        SetRecvTimeout(client->fd_, client->options_.recv_timeout_ms));
  }
  return client;
}

Result<wire::Response> ImplianceClient::Call(wire::Request request) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  request.id = next_request_id_++;
  if (request.deadline_ms == 0) request.deadline_ms = options_.deadline_ms;

  std::string frame;
  wire::EncodeRequest(request, &frame);
  IMPLIANCE_RETURN_IF_ERROR(WriteFully(fd_, frame));

  std::string body;
  Status status = RecvFrame(fd_, &body);
  if (status.IsNotFound()) return Status::IOError("server closed connection");
  IMPLIANCE_RETURN_IF_ERROR(status);

  wire::Response response;
  IMPLIANCE_RETURN_IF_ERROR(wire::DecodeResponse(body, &response));
  if (response.id != 0 && response.id != request.id) {
    return Status::Internal("response id " + std::to_string(response.id) +
                            " does not match request id " +
                            std::to_string(request.id));
  }
  return response;
}

Status ImplianceClient::ToStatus(const wire::Response& response) {
  const std::string& message = response.error;
  switch (response.status) {
    case wire::WireStatus::kOk:
      return Status::OK();
    case wire::WireStatus::kNotFound:
      return Status::NotFound(message);
    case wire::WireStatus::kInvalidRequest:
      return Status::InvalidArgument(message);
    case wire::WireStatus::kOverloaded:
      return Status::Busy(message.empty() ? "server overloaded" : message);
    case wire::WireStatus::kDeadlineExceeded:
      return Status::Aborted(message.empty() ? "deadline exceeded" : message);
    case wire::WireStatus::kShuttingDown:
      return Status::Busy(message.empty() ? "server shutting down" : message);
    case wire::WireStatus::kError:
      break;
  }
  return Status::Internal(message.empty() ? "server error" : message);
}

Status ImplianceClient::Ping() {
  wire::Request request;
  request.op = wire::Op::kPing;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  return ToStatus(response);
}

Result<std::vector<uint64_t>> ImplianceClient::Ingest(const std::string& kind,
                                                      const std::string& raw) {
  wire::Request request;
  request.op = wire::Op::kIngest;
  request.kind = kind;
  request.payload = raw;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return std::move(response.doc_ids);
}

Result<std::string> ImplianceClient::Get(uint64_t doc_id) {
  wire::Request request;
  request.op = wire::Op::kGet;
  request.doc_id = doc_id;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return std::move(response.body);
}

Result<std::vector<wire::SearchResult>> ImplianceClient::Search(
    const std::string& keywords, uint64_t limit) {
  wire::Request request;
  request.op = wire::Op::kSearch;
  request.payload = keywords;
  request.limit = limit;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return std::move(response.hits);
}

Result<ImplianceClient::SearchAnswer> ImplianceClient::SearchChecked(
    const std::string& keywords, uint64_t limit) {
  wire::Request request;
  request.op = wire::Op::kSearch;
  request.payload = keywords;
  request.limit = limit;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  SearchAnswer answer;
  answer.hits = std::move(response.hits);
  answer.degraded = response.degraded;
  answer.missing_partitions = response.missing_partitions;
  return answer;
}

Result<std::vector<std::string>> ImplianceClient::Sql(
    const std::string& statement, const std::string& planner) {
  wire::Request request;
  request.op = wire::Op::kSql;
  request.payload = statement;
  request.kind = planner;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return std::move(response.rows);
}

Result<ImplianceClient::ExplainAnswer> ImplianceClient::Explain(
    const std::string& statement, const std::string& planner) {
  wire::Request request;
  request.op = wire::Op::kExplain;
  request.payload = statement;
  request.kind = planner;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  ExplainAnswer answer;
  answer.plan = std::move(response.plan);
  answer.text = std::move(response.body);
  return answer;
}

Result<ImplianceClient::SqlAnswer> ImplianceClient::SqlChecked(
    const std::string& statement, const std::string& planner) {
  wire::Request request;
  request.op = wire::Op::kSql;
  request.payload = statement;
  request.kind = planner;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  SqlAnswer answer;
  answer.rows = std::move(response.rows);
  answer.degraded = response.degraded;
  answer.missing_partitions = response.missing_partitions;
  return answer;
}

Result<wire::Response> ImplianceClient::Facet(
    const std::string& keywords, const std::string& kind,
    const std::vector<std::string>& facet_paths, uint64_t limit) {
  wire::Request request;
  request.op = wire::Op::kFacet;
  request.payload = keywords;
  request.kind = kind;
  request.facet_paths = facet_paths;
  request.limit = limit;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return response;
}

Result<wire::Response> ImplianceClient::Stats() {
  wire::Request request;
  request.op = wire::Op::kStats;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  IMPLIANCE_RETURN_IF_ERROR(ToStatus(response));
  return response;
}

Status ImplianceClient::RequestShutdown() {
  wire::Request request;
  request.op = wire::Op::kShutdown;
  IMPLIANCE_ASSIGN_OR_RETURN(wire::Response response, Call(std::move(request)));
  return ToStatus(response);
}

}  // namespace impliance::server
