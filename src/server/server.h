#ifndef IMPLIANCE_SERVER_SERVER_H_
#define IMPLIANCE_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/impliance.h"
#include "server/wire_protocol.h"

namespace impliance::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port (see ImplianceServer::port)
  size_t worker_threads = 4;
  // Admission control: upper bound on requests admitted but not yet
  // executing. Arrivals beyond it are answered kOverloaded immediately —
  // the appliance sheds load instead of building an unbounded backlog
  // ("self-managing" resource behavior, Section 3.4).
  size_t max_queue_depth = 256;
  // Applied to requests that carry no deadline of their own; 0 = none.
  uint64_t default_deadline_ms = 0;
  uint32_t max_frame_bytes = wire::kMaxFrameBytes;
  // Quiesce the appliance's background discovery workers as part of the
  // graceful drain, so the core is idle by the time the caller tears it
  // down.
  bool quiesce_core_on_drain = true;
  // Test seam: runs in the worker immediately before a request executes
  // (after admission and the deadline check). Lets tests hold workers on a
  // latch to saturate the queue deterministically.
  std::function<void(const wire::Request&)> pre_execute_hook;
};

struct ServingStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_admitted = 0;
  uint64_t requests_completed = 0;
  uint64_t requests_shed = 0;      // kOverloaded responses
  uint64_t deadline_expired = 0;   // kDeadlineExceeded responses
  uint64_t invalid_frames = 0;     // malformed/oversized frames
  uint64_t requests_rejected_draining = 0;
};
// Per-op serving latency (receipt to response write) lives in the process
// metrics registry as bounded histograms named "server.op.<name>" — an
// unbounded per-sample histogram on the serving hot path would grow one
// allocation per request forever.

// TCP front end for one `core::Impliance`: speaks the wire protocol of
// wire_protocol.h, runs requests on a worker pool, and applies admission
// control so overload degrades into explicit kOverloaded responses rather
// than unbounded queueing. One reader thread per connection; responses may
// be written by any worker (serialized per connection).
class ImplianceServer {
 public:
  // Binds, listens, and starts the accept loop. `impliance` must outlive
  // the server.
  static Result<std::unique_ptr<ImplianceServer>> Start(
      core::Impliance* impliance, ServerOptions options);
  ~ImplianceServer();

  ImplianceServer(const ImplianceServer&) = delete;
  ImplianceServer& operator=(const ImplianceServer&) = delete;

  // The bound port (resolved when options.port was 0).
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  // Graceful drain: stop accepting connections, answer new requests with
  // kShuttingDown, finish everything already admitted, then close all
  // connections. Idempotent; safe to call from any thread (including the
  // wire kShutdown path). Blocks until the drain completes.
  void Shutdown();

  // Blocks until Shutdown() has completed (e.g. triggered remotely via the
  // kShutdown op).
  void WaitUntilShutdown();

  ServingStats GetServingStats() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  ImplianceServer(core::Impliance* impliance, ServerOptions options);

  void AcceptLoop();
  // Owns one connection's read side. Takes the shared_ptr directly (handed
  // over at spawn) so dispatching never has to rediscover it by scanning
  // connections_ under connections_mutex_ per request.
  void ReaderLoop(std::shared_ptr<Connection> connection);
  // Admission control + dispatch for one decoded request.
  void Dispatch(std::shared_ptr<Connection> connection, wire::Request request);
  wire::Response Execute(const wire::Request& request);
  wire::Response BuildStatsResponse() const;
  void SendResponse(Connection* connection, const wire::Response& response);
  void RecordLatency(wire::Op op, double millis);
  void ReapFinishedConnections();

  core::Impliance* const impliance_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::atomic<bool> draining_{false};
  // Requests admitted but not yet picked up by a worker.
  std::atomic<size_t> queued_{0};

  mutable std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  mutable std::mutex stats_mutex_;
  ServingStats stats_;

  std::mutex shutdown_mutex_;  // serializes Shutdown()
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool shutdown_complete_ = false;
  std::thread remote_shutdown_thread_;  // runs Shutdown() for kShutdown ops
};

}  // namespace impliance::server

#endif  // IMPLIANCE_SERVER_SERVER_H_
