#include "server/net_util.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/coding.h"

namespace impliance::server {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Status WriteFully(int fd, std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

Status ReadFully(int fd, size_t n, std::string* out) {
  out->clear();
  out->resize(n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out->data() + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status RecvFrame(int fd, std::string* body, uint32_t max_frame_bytes) {
  std::string prefix;
  IMPLIANCE_RETURN_IF_ERROR(ReadFully(fd, 4, &prefix));
  std::string_view view(prefix);
  uint32_t length = 0;
  GetFixed32(&view, &length);
  if (length > max_frame_bytes) {
    return Status::InvalidArgument("frame of " + std::to_string(length) +
                                   " bytes exceeds limit of " +
                                   std::to_string(max_frame_bytes));
  }
  return ReadFully(fd, length, body);
}

Status ConnectTcp(const std::string& host, uint16_t port, int* fd_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("connect");
    ::close(fd);
    return status;
  }
  // Request/response frames are small; never wait for Nagle coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *fd_out = fd;
  return Status::OK();
}

Status ListenTcp(const std::string& host, uint16_t port, int* fd_out,
                 uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Errno("bind");
    ::close(fd);
    return status;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status status = Errno("getsockname");
    ::close(fd);
    return status;
  }
  *fd_out = fd;
  *port_out = ntohs(bound.sin_port);
  return Status::OK();
}

Status SetRecvTimeout(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

}  // namespace impliance::server
