#include "server/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <string_view>
#include <utility>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "model/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/net_util.h"

namespace impliance::server {

namespace {

wire::Response ErrorResponse(uint64_t id, wire::WireStatus status,
                             std::string error) {
  wire::Response response;
  response.id = id;
  response.status = status;
  response.error = std::move(error);
  return response;
}

// Maps a core Status onto the wire status vocabulary.
wire::WireStatus WireStatusFor(const Status& status) {
  if (status.IsNotFound()) return wire::WireStatus::kNotFound;
  return wire::WireStatus::kError;
}

// Registry histograms "server.op.<name>", one per op, resolved once — the
// recording itself is then lock-free on the serving hot path.
obs::BoundedHistogram* OpLatencyHistogram(wire::Op op) {
  static const auto table = [] {
    constexpr size_t kNumOps = static_cast<size_t>(wire::kLastOp) + 1;
    std::array<obs::BoundedHistogram*, kNumOps> histograms{};
    for (size_t i = 0; i < kNumOps; ++i) {
      histograms[i] = obs::Registry::Global().GetHistogram(
          std::string("server.op.") +
          wire::OpName(static_cast<wire::Op>(i)));
    }
    return histograms;
  }();
  return table[static_cast<size_t>(op)];
}

// How many recent traces one Stats response ships.
constexpr size_t kStatsMaxTraces = 8;

}  // namespace

ImplianceServer::ImplianceServer(core::Impliance* impliance,
                                 ServerOptions options)
    : impliance_(impliance), options_(std::move(options)) {}

Result<std::unique_ptr<ImplianceServer>> ImplianceServer::Start(
    core::Impliance* impliance, ServerOptions options) {
  if (impliance == nullptr) {
    return Status::InvalidArgument("impliance must not be null");
  }
  if (options.worker_threads == 0 || options.max_queue_depth == 0) {
    return Status::InvalidArgument(
        "worker_threads and max_queue_depth must be positive");
  }
  auto server = std::unique_ptr<ImplianceServer>(
      new ImplianceServer(impliance, std::move(options)));
  IMPLIANCE_RETURN_IF_ERROR(ListenTcp(server->options_.host,
                                      server->options_.port,
                                      &server->listen_fd_, &server->port_));
  server->workers_ =
      std::make_unique<ThreadPool>(server->options_.worker_threads);
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  IMPLIANCE_LOG(Info) << "serving on " << server->options_.host << ":"
                      << server->port_;
  return server;
}

ImplianceServer::~ImplianceServer() {
  Shutdown();
  if (remote_shutdown_thread_.joinable()) remote_shutdown_thread_.join();
}

// ------------------------------------------------------------ Accept/read

void ImplianceServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed during drain (or a transient accept failure while
      // shutting down) — either way the loop is done.
      break;
    }
    if (draining_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    ReapFinishedConnections();
    connections_.push_back(connection);
    // The reader owns a shared_ptr from birth; per-request dispatch hands
    // copies to workers without ever touching connections_ again.
    connections_.back()->reader = std::thread(
        [this, connection] { ReaderLoop(connection); });
  }
}

// Joins and closes connections whose reader has already exited (client
// hung up). Caller holds connections_mutex_.
void ImplianceServer::ReapFinishedConnections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection* connection = it->get();
    if (!connection->done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (connection->reader.joinable()) connection->reader.join();
    {
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      if (connection->fd >= 0) {
        ::close(connection->fd);
        connection->fd = -1;
      }
    }
    it = connections_.erase(it);
  }
}

void ImplianceServer::ReaderLoop(std::shared_ptr<Connection> connection) {
  std::string body;
  while (true) {
    Status status = RecvFrame(connection->fd, &body,
                              options_.max_frame_bytes);
    if (status.IsNotFound()) break;  // clean close
    if (status.IsInvalidArgument()) {
      // Oversized length prefix: answer, then drop the connection — the
      // byte stream can no longer be trusted to be framed.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.invalid_frames;
      }
      SendResponse(connection.get(),
                   ErrorResponse(0, wire::WireStatus::kInvalidRequest,
                                 status.message()));
      break;
    }
    if (!status.ok()) break;  // torn read / connection reset

    wire::Request request;
    status = wire::DecodeRequest(body, &request);
    if (!status.ok()) {
      // Garbage inside a well-framed body: reject the request but keep
      // the connection — framing is still intact.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.invalid_frames;
      }
      SendResponse(connection.get(),
                   ErrorResponse(0, wire::WireStatus::kInvalidRequest,
                                 status.message()));
      continue;
    }

    Dispatch(connection, std::move(request));
  }
  // Signal EOF to the peer right away — the fd itself is closed at reap or
  // drain time, strictly after this thread is joined.
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

// ------------------------------------------------- Admission + execution

void ImplianceServer::Dispatch(std::shared_ptr<Connection> connection,
                               wire::Request request) {
  if (draining_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_rejected_draining;
    }
    SendResponse(connection.get(),
                 ErrorResponse(request.id, wire::WireStatus::kShuttingDown,
                               "server is draining"));
    return;
  }

  // Admission control: bound the number of admitted-but-not-executing
  // requests. Overload turns into an immediate, explicit signal the client
  // can back off on, instead of latency creep followed by a timeout.
  size_t depth = queued_.load(std::memory_order_relaxed);
  do {
    if (depth >= options_.max_queue_depth) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests_shed;
      }
      SendResponse(connection.get(),
                   ErrorResponse(request.id, wire::WireStatus::kOverloaded,
                                 "admission queue full"));
      return;
    }
  } while (!queued_.compare_exchange_weak(depth, depth + 1,
                                          std::memory_order_acq_rel));

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_admitted;
  }

  const uint64_t received_micros = NowMicros();
  const uint64_t deadline_ms = request.deadline_ms != 0
                                   ? request.deadline_ms
                                   : options_.default_deadline_ms;
  // Mint the request's trace at admission: everything downstream — core
  // planning, cluster scatter/gather, morsel workers — records spans into
  // it through the thread-local current-trace pointer.
  obs::TracePtr trace = obs::StartTrace(
      wire::OpName(request.op),
      deadline_ms != 0 ? received_micros + deadline_ms * 1000 : 0);
  workers_->Submit([this, connection = std::move(connection),
                    request = std::move(request), received_micros,
                    deadline_ms, trace = std::move(trace)]() mutable {
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    trace->RecordSpan("admission.wait", received_micros,
                      NowMicros() - received_micros);

    // Per-request deadline: a request that waited out its whole budget in
    // the queue is dead on arrival — tell the client instead of burning a
    // worker on an answer nobody is waiting for.
    if (deadline_ms != 0 &&
        NowMicros() > received_micros + deadline_ms * 1000) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.deadline_expired;
      }
      SendResponse(connection.get(),
                   ErrorResponse(request.id,
                                 wire::WireStatus::kDeadlineExceeded,
                                 "deadline expired in queue"));
      return;
    }

    if (options_.pre_execute_hook) options_.pre_execute_hook(request);

    // Worker fault: the request is lost before execution. The client still
    // gets an explicit error — a dropped request must never look like an
    // empty-but-successful answer.
    if (FaultPoint("server.worker.drop")) {
      SendResponse(connection.get(),
                   ErrorResponse(request.id, wire::WireStatus::kError,
                                 "request dropped by worker (fault injected)"));
      return;
    }

    wire::Response response;
    {
      // Attach for the execute scope only: everything the core and cluster
      // record below lands in this request's trace.
      obs::ScopedTraceAttach attach(trace);
      obs::ScopedSpan execute_span("server.execute");
      response = Execute(request);
    }
    response.id = request.id;
    RecordLatency(request.op, (NowMicros() - received_micros) / 1000.0);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_completed;
    }
    SendResponse(connection.get(), response);
    obs::FinishTrace(trace);

    if (request.op == wire::Op::kShutdown &&
        response.status == wire::WireStatus::kOk) {
      // Drain on a dedicated thread: Shutdown() waits for this worker
      // pool to go idle, so the drain must not run on a pool thread.
      std::lock_guard<std::mutex> lock(done_mutex_);
      if (!remote_shutdown_thread_.joinable()) {
        remote_shutdown_thread_ = std::thread([this] { Shutdown(); });
      }
    }
  });
}

wire::Response ImplianceServer::Execute(const wire::Request& request) {
  wire::Response response;
  switch (request.op) {
    case wire::Op::kPing:
      response.body = request.payload;
      return response;

    case wire::Op::kIngest: {
      auto ids = impliance_->InfuseContent(request.kind, request.payload);
      if (!ids.ok()) {
        return ErrorResponse(request.id, WireStatusFor(ids.status()),
                             ids.status().ToString());
      }
      response.doc_ids.assign(ids->begin(), ids->end());
      return response;
    }

    case wire::Op::kGet: {
      auto doc = impliance_->Get(request.doc_id);
      if (!doc.ok()) {
        return ErrorResponse(request.id, WireStatusFor(doc.status()),
                             doc.status().ToString());
      }
      response.body = model::DocumentToJson(*doc);
      return response;
    }

    case wire::Op::kSearch: {
      core::QueryHealth health;
      for (const core::SearchHit& hit :
           impliance_->Search(request.payload, request.limit, &health)) {
        response.hits.push_back(
            {hit.doc, hit.score, hit.kind, hit.snippet});
      }
      // Completeness travels with the answer so clients can distinguish
      // "nothing matched" from "partitions were lost".
      response.degraded = health.degraded;
      response.missing_partitions = health.missing_partitions;
      return response;
    }

    case wire::Op::kFacet: {
      query::FacetedQuery faceted;
      faceted.keywords = request.payload;
      faceted.kind = request.kind;
      faceted.facet_paths = request.facet_paths;
      faceted.top_k = request.limit;
      core::QueryHealth health;
      query::FacetedResult result = impliance_->Faceted(faceted, &health);
      // Same contract as search: facet counts computed without unreachable
      // partitions must say so, not pose as complete.
      response.degraded = health.degraded;
      response.missing_partitions = health.missing_partitions;
      response.doc_ids.assign(result.docs.begin(), result.docs.end());
      response.counters.emplace_back("total_matches", result.total_matches);
      std::string rendered;
      for (const auto& [path, counts] : result.facets) {
        for (const auto& facet : counts) {
          rendered += path + "\t" + facet.value.AsString() + "\t" +
                      std::to_string(facet.count) + "\n";
        }
      }
      response.body = std::move(rendered);
      return response;
    }

    case wire::Op::kSql: {
      core::QueryHealth health;
      // `kind` carries the planner name ("" = cost-aware default).
      auto rows = impliance_->Sql(request.payload, &health, request.kind);
      if (!rows.ok()) {
        return ErrorResponse(request.id, WireStatusFor(rows.status()),
                             rows.status().ToString());
      }
      response.degraded = health.degraded;
      response.missing_partitions = health.missing_partitions;
      response.rows.reserve(rows->size());
      for (const exec::Row& row : *rows) {
        std::string line;
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) line += '\t';
          line += row[i].AsString();
        }
        response.rows.push_back(std::move(line));
      }
      return response;
    }

    case wire::Op::kExplain: {
      auto plan = impliance_->ExplainSql(request.payload, request.kind);
      if (!plan.ok()) {
        return ErrorResponse(request.id, WireStatusFor(plan.status()),
                             plan.status().ToString());
      }
      response.plan.reserve(plan->nodes.size());
      for (const query::ExplainNode& node : plan->nodes) {
        response.plan.push_back(wire::PlanNode{node.depth, node.name,
                                               node.detail, node.est_rows,
                                               node.est_cost});
      }
      response.body = std::move(plan->text);
      return response;
    }

    case wire::Op::kStats:
      return BuildStatsResponse();

    case wire::Op::kShutdown:
      response.body = "draining";
      return response;
  }
  return ErrorResponse(request.id, wire::WireStatus::kInvalidRequest,
                       "unknown op");
}

wire::Response ImplianceServer::BuildStatsResponse() const {
  wire::Response response;
  const core::ImplianceStats core_stats = impliance_->GetStats();
  response.counters = {
      {"documents", core_stats.indexed_documents},
      {"versions", core_stats.store.num_versions},
      {"kinds", core_stats.kinds},
      {"terms", core_stats.indexed_terms},
      {"paths", core_stats.indexed_paths},
      {"join_edges", core_stats.join_edges},
      {"segments", core_stats.store.num_segments},
      {"admin_steps", core_stats.admin_steps},
  };
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    response.counters.insert(
        response.counters.end(),
        {{"connections_accepted", stats_.connections_accepted},
         {"requests_admitted", stats_.requests_admitted},
         {"requests_completed", stats_.requests_completed},
         {"requests_shed", stats_.requests_shed},
         {"deadline_expired", stats_.deadline_expired},
         {"invalid_frames", stats_.invalid_frames}});
  }
  // Process-wide metrics registry: counters and gauges ship under their
  // registry names; "server.op.<name>" histograms become the per-op
  // latency summaries (prefix stripped — they ARE the serving latencies).
  const obs::RegistrySnapshot registry = obs::Registry::Global().Snapshot();
  for (const auto& [name, value] : registry.counters) {
    response.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : registry.gauges) {
    response.counters.emplace_back(
        name, value > 0 ? static_cast<uint64_t>(value) : 0);
  }
  response.counters.emplace_back("slow_traces", obs::SlowTraceCount());
  constexpr std::string_view kOpPrefix = "server.op.";
  for (const auto& [name, snapshot] : registry.histograms) {
    if (snapshot.count() == 0) continue;
    std::string op_name = name.rfind(kOpPrefix, 0) == 0
                              ? name.substr(kOpPrefix.size())
                              : name;
    // The wire struct is in milliseconds; histograms recorded in
    // microseconds (named *_us, e.g. index.search.latency_us) convert here.
    const double scale = name.size() > 3 &&
                                 name.compare(name.size() - 3, 3, "_us") == 0
                             ? 1e-3
                             : 1.0;
    response.op_latencies.push_back({std::move(op_name), snapshot.count(),
                                     snapshot.P50() * scale,
                                     snapshot.P95() * scale,
                                     snapshot.P99() * scale});
  }
  // The appliance's own interactive-path latency (queue wait + execution
  // inside the core), distinct from end-to-end serving latency.
  const obs::HistogramSnapshot& interactive = core_stats.interactive_latency_ms;
  if (interactive.count() > 0) {
    response.op_latencies.push_back({"core.interactive", interactive.count(),
                                     interactive.P50(), interactive.P95(),
                                     interactive.P99()});
  }
  // Recent request traces: where each stage of the last few requests spent
  // its time (the kStats caller's own request finishes after this builds,
  // so the newest visible trace is the previous request).
  for (const obs::FinishedTrace& finished : obs::RecentTraces(kStatsMaxTraces)) {
    wire::TraceSummary summary;
    summary.trace_id = finished.trace_id;
    summary.op = finished.op;
    summary.total_micros = finished.total_micros;
    summary.slow = finished.slow;
    summary.spans_dropped = finished.spans_dropped;
    summary.spans.reserve(finished.spans.size());
    for (const obs::Span& span : finished.spans) {
      summary.spans.push_back(
          {span.name, span.start_micros, span.duration_micros});
    }
    response.traces.push_back(std::move(summary));
  }
  response.body = "documents=" +
                  std::to_string(core_stats.indexed_documents) +
                  " kinds=" + std::to_string(core_stats.kinds);
  return response;
}

void ImplianceServer::SendResponse(Connection* connection,
                                   const wire::Response& response) {
  std::string frame;
  wire::EncodeResponse(response, &frame);
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  if (connection->fd < 0) return;  // connection already closed
  Status status = WriteFully(connection->fd, frame);
  if (!status.ok()) {
    // The client went away mid-response; the reader will notice on its
    // next recv. Nothing further to do.
    IMPLIANCE_LOG(Debug) << "response write failed: " << status.ToString();
  }
}

void ImplianceServer::RecordLatency(wire::Op op, double millis) {
  OpLatencyHistogram(op)->Add(millis);
}

ServingStats ImplianceServer::GetServingStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// ----------------------------------------------------------------- Drain

void ImplianceServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    if (shutdown_complete_) return;
  }

  // 1. Stop accepting: new requests on existing connections now get
  //    kShuttingDown; closing the listener wakes the accept loop.
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Finish everything already admitted — in-flight requests complete
  //    and their responses are written before any connection closes.
  workers_->WaitIdle();

  // 3. Close connections: wake blocked readers, join them, then close.
  //    Joining happens outside connections_mutex_ so a reader that is
  //    still finishing its last loop iteration can never be blocked on it.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (const auto& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
    std::lock_guard<std::mutex> write_lock(connection->write_mutex);
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
  connections.clear();

  // 4. Join the worker pool (a rare late submission racing the drain flag
  //    finishes here; its response write is a no-op on the closed fd).
  workers_->WaitIdle();
  workers_.reset();

  // 5. Quiesce the appliance's background workers so the core is torn
  //    down only once nothing is running behind it.
  if (options_.quiesce_core_on_drain) impliance_->Quiesce();

  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    shutdown_complete_ = true;
  }
  done_cv_.notify_all();
  IMPLIANCE_LOG(Info) << "drain complete on port " << port_;
}

void ImplianceServer::WaitUntilShutdown() {
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_cv_.wait(lock, [this] { return shutdown_complete_; });
}

}  // namespace impliance::server
