#ifndef IMPLIANCE_SERVER_CLIENT_H_
#define IMPLIANCE_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/wire_protocol.h"

namespace impliance::server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // required
  // Connect retries with exponential backoff (appliances reboot; clients
  // should ride it out): attempt, sleep backoff, attempt, sleep 2x, ...
  int connect_attempts = 3;
  uint64_t retry_backoff_ms = 50;
  // SO_RCVTIMEO on the socket so a wedged server surfaces as IOError
  // rather than a hang; 0 = block forever.
  uint64_t recv_timeout_ms = 10'000;
  // Deadline stamped on every request (server sheds it once expired);
  // 0 = none.
  uint64_t deadline_ms = 0;
};

// Blocking client for the appliance wire protocol. One connection, one
// outstanding request at a time; not thread-safe — use one client per
// thread (they are cheap).
class ImplianceClient {
 public:
  static Result<std::unique_ptr<ImplianceClient>> Connect(
      ClientOptions options);
  ~ImplianceClient();

  ImplianceClient(const ImplianceClient&) = delete;
  ImplianceClient& operator=(const ImplianceClient&) = delete;

  // Typed wrappers. Each returns the server-side error as a non-OK Status
  // when the response status is not kOk (kOverloaded maps to Busy,
  // kDeadlineExceeded to Aborted, kShuttingDown to Unavailable-ish Busy,
  // kNotFound to NotFound, the rest to Internal/InvalidArgument).
  Status Ping();
  Result<std::vector<uint64_t>> Ingest(const std::string& kind,
                                       const std::string& raw);
  // Latest version of a document, rendered as JSON.
  Result<std::string> Get(uint64_t doc_id);
  Result<std::vector<wire::SearchResult>> Search(const std::string& keywords,
                                                 uint64_t limit = 10);
  // Search that surfaces the answer's completeness: with a scale-out
  // appliance, node failures can leave an explicitly degraded answer
  // (degraded=true, missing_partitions > 0) rather than a silently
  // partial one. Callers that care about completeness use this form.
  struct SearchAnswer {
    std::vector<wire::SearchResult> hits;
    bool degraded = false;
    uint64_t missing_partitions = 0;
  };
  Result<SearchAnswer> SearchChecked(const std::string& keywords,
                                     uint64_t limit = 10);
  // Rows as tab-separated strings. `planner` selects the engine:
  // "" / "cost" = cost-aware optimizer (default), "simple" = baseline.
  Result<std::vector<std::string>> Sql(const std::string& statement,
                                       const std::string& planner = "");
  // SQL with the same completeness contract as SearchChecked: the rows
  // plus whether unreachable partitions were excluded from the scan.
  struct SqlAnswer {
    std::vector<std::string> rows;
    bool degraded = false;
    uint64_t missing_partitions = 0;
  };
  Result<SqlAnswer> SqlChecked(const std::string& statement,
                               const std::string& planner = "");
  // EXPLAIN without executing: the costed plan tree (structured nodes)
  // plus the server's text rendering in `text`.
  struct ExplainAnswer {
    std::vector<wire::PlanNode> plan;
    std::string text;
  };
  Result<ExplainAnswer> Explain(const std::string& statement,
                                const std::string& planner = "");
  Result<wire::Response> Facet(const std::string& keywords,
                               const std::string& kind,
                               const std::vector<std::string>& facet_paths,
                               uint64_t limit = 10);
  Result<wire::Response> Stats();
  // Asks the server to drain and stop. OK means the drain was accepted.
  Status RequestShutdown();

  // Escape hatch: send any request and return the raw response. Fills in
  // request.id and request.deadline_ms (when unset) automatically.
  Result<wire::Response> Call(wire::Request request);

  uint64_t requests_sent() const { return next_request_id_ - 1; }

 private:
  explicit ImplianceClient(ClientOptions options);

  // Converts a non-kOk wire status into a Status for the typed wrappers.
  static Status ToStatus(const wire::Response& response);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
};

}  // namespace impliance::server

#endif  // IMPLIANCE_SERVER_CLIENT_H_
