#include "baseline/filesystem_baseline.h"

namespace impliance::baseline {

Status FileSystemBaseline::Write(const std::string& name, std::string bytes) {
  auto it = files_.find(name);
  if (it != files_.end()) {
    total_bytes_ -= it->second.size();
  }
  total_bytes_ += bytes.size();
  files_[name] = std::move(bytes);
  return Status::OK();
}

Result<std::string> FileSystemBaseline::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + name);
  }
  return it->second;
}

std::vector<std::string> FileSystemBaseline::Grep(
    const std::string& needle, uint64_t* bytes_scanned) const {
  std::vector<std::string> hits;
  uint64_t scanned = 0;
  for (const auto& [name, bytes] : files_) {
    scanned += bytes.size();
    if (bytes.find(needle) != std::string::npos) {
      hits.push_back(name);
    }
  }
  if (bytes_scanned != nullptr) *bytes_scanned = scanned;
  return hits;
}

}  // namespace impliance::baseline
