#ifndef IMPLIANCE_BASELINE_CONTENT_MANAGER_BASELINE_H_
#define IMPLIANCE_BASELINE_CONTENT_MANAGER_BASELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace impliance::baseline {

// The Figure-4 "content manager" comparator: stores content as opaque
// BLOBs and a metadata catalog; "searching and querying are limited to the
// metadata about that content" (Section 3.2). Metadata keys must match a
// pre-registered catalog schema (JSR-170-style: no schema chaos). No joins,
// no aggregation, no content search.
class ContentManagerBaseline {
 public:
  using ItemId = uint64_t;

  // Admin step: register the allowed metadata attributes.
  Status DefineCatalog(const std::vector<std::string>& attributes);

  // Stores a blob with metadata; unknown metadata keys are rejected.
  Result<ItemId> Store(std::string content,
                       const std::map<std::string, std::string>& metadata);

  Result<std::string> Fetch(ItemId id) const;

  // Metadata equality search — the only query capability.
  std::vector<ItemId> SearchMetadata(const std::string& attribute,
                                     const std::string& value) const;

  // Content search is not supported by architecture.
  Result<std::vector<ItemId>> SearchContent(const std::string& keywords) const {
    return Status::NotSupported("content manager searches metadata only");
  }

  size_t admin_steps() const { return admin_steps_; }
  size_t size() const { return items_.size(); }

 private:
  struct Item {
    std::string content;
    std::map<std::string, std::string> metadata;
  };

  std::vector<std::string> catalog_;
  std::map<ItemId, Item> items_;
  ItemId next_id_ = 1;
  size_t admin_steps_ = 0;
};

}  // namespace impliance::baseline

#endif  // IMPLIANCE_BASELINE_CONTENT_MANAGER_BASELINE_H_
