#ifndef IMPLIANCE_BASELINE_FILESYSTEM_BASELINE_H_
#define IMPLIANCE_BASELINE_FILESYSTEM_BASELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace impliance::baseline {

// The Figure-4 "filer" comparator: the ultra-simple bag-of-bytes model,
// the "repository of last resort" (Section 3.2). Accepts anything (best
// ingestion!), offers nothing but retrieval by name and brute-force grep —
// every search is O(total bytes), with no ranking, joins, or aggregates.
class FileSystemBaseline {
 public:
  Status Write(const std::string& name, std::string bytes);
  Result<std::string> Read(const std::string& name) const;

  // Case-sensitive substring scan over every file; returns matching names.
  // Also reports how many bytes were scanned (the cost of having no index).
  std::vector<std::string> Grep(const std::string& needle,
                                uint64_t* bytes_scanned = nullptr) const;

  size_t num_files() const { return files_.size(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::map<std::string, std::string> files_;
  uint64_t total_bytes_ = 0;
};

}  // namespace impliance::baseline

#endif  // IMPLIANCE_BASELINE_FILESYSTEM_BASELINE_H_
