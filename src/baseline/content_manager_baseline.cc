#include "baseline/content_manager_baseline.h"

#include <algorithm>

namespace impliance::baseline {

Status ContentManagerBaseline::DefineCatalog(
    const std::vector<std::string>& attributes) {
  if (!catalog_.empty()) {
    return Status::AlreadyExists("catalog already defined");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("catalog needs at least one attribute");
  }
  ++admin_steps_;
  catalog_ = attributes;
  return Status::OK();
}

Result<ContentManagerBaseline::ItemId> ContentManagerBaseline::Store(
    std::string content, const std::map<std::string, std::string>& metadata) {
  if (catalog_.empty()) {
    return Status::InvalidArgument("define the metadata catalog first");
  }
  for (const auto& [key, value] : metadata) {
    if (std::find(catalog_.begin(), catalog_.end(), key) == catalog_.end()) {
      return Status::InvalidArgument("metadata key not in catalog: " + key);
    }
  }
  const ItemId id = next_id_++;
  items_[id] = Item{std::move(content), metadata};
  return id;
}

Result<std::string> ContentManagerBaseline::Fetch(ItemId id) const {
  auto it = items_.find(id);
  if (it == items_.end()) {
    return Status::NotFound("no such item: " + std::to_string(id));
  }
  return it->second.content;
}

std::vector<ContentManagerBaseline::ItemId>
ContentManagerBaseline::SearchMetadata(const std::string& attribute,
                                       const std::string& value) const {
  std::vector<ItemId> hits;
  for (const auto& [id, item] : items_) {
    auto it = item.metadata.find(attribute);
    if (it != item.metadata.end() && it->second == value) {
      hits.push_back(id);
    }
  }
  return hits;
}

}  // namespace impliance::baseline
