#include "baseline/relational_baseline.h"

#include "model/value.h"

namespace impliance::baseline {

Status RelationalBaseline::CreateTable(
    const std::string& name, const std::vector<std::string>& columns) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  ++admin_steps_;
  exec::Schema schema(columns);
  auto table = std::make_shared<query::MemTable>(name, schema);
  tables_[name] = table;
  catalog_.Register(table);
  return Status::OK();
}

Status RelationalBaseline::CreateIndex(const std::string& table,
                                       const std::string& column) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  const int index = it->second->schema().IndexOf(column);
  if (index < 0) return Status::NotFound("no such column: " + column);
  ++admin_steps_;
  it->second->BuildIndex(index);
  return Status::OK();
}

Status RelationalBaseline::Analyze(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table: " + table);
  // The whole point of the manual-mode cache: statistics move only when
  // the administrator says so, and that costs an admin step.
  ++admin_steps_;
  stats_.Refresh(*it->second);
  return Status::OK();
}

Status RelationalBaseline::LoadRow(const std::string& table,
                                   const std::vector<std::string>& values) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table +
                            " (CREATE TABLE first)");
  }
  if (values.size() != it->second->schema().size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) + " != schema arity " +
        std::to_string(it->second->schema().size()));
  }
  exec::Row row;
  row.reserve(values.size());
  for (const std::string& value : values) {
    row.push_back(model::ParseValue(value));
  }
  it->second->AddRow(std::move(row));
  return Status::OK();
}

Result<std::vector<exec::Row>> RelationalBaseline::Query(
    const std::string& sql) {
  return query::RunSql(sql, catalog_, &planner_);
}

}  // namespace impliance::baseline
