#ifndef IMPLIANCE_BASELINE_RELATIONAL_BASELINE_H_
#define IMPLIANCE_BASELINE_RELATIONAL_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/opt/optimizer.h"
#include "query/opt/stats_cache.h"
#include "query/planner.h"
#include "query/table.h"

namespace impliance::baseline {

// The Figure-4 "RDBMS" comparator: a schema-first relational engine sharing
// Impliance's executor. Its defining architectural property is what it
// REQUIRES of the administrator: explicit CREATE TABLE / CREATE INDEX /
// ANALYZE steps before data is queryable, strict row arity, no text or
// semi-structured ingestion. Every such step bumps admin_steps(), the TCO
// proxy used by experiments E4 and E10.
class RelationalBaseline {
 public:
  // Admin step: declare a schema. Loading into an undeclared table fails.
  Status CreateTable(const std::string& name,
                     const std::vector<std::string>& columns);

  // Admin step: build an index (nothing is indexed automatically).
  Status CreateIndex(const std::string& table, const std::string& column);

  // Admin step: refresh optimizer statistics.
  Status Analyze(const std::string& table);

  // Loads one row of raw fields; fails on unknown table or arity mismatch
  // (no "schema chaos" tolerated).
  Status LoadRow(const std::string& table,
                 const std::vector<std::string>& values);

  Result<std::vector<exec::Row>> Query(const std::string& sql);

  // Not supported by architecture: the error itself is the measurement.
  Result<std::vector<uint64_t>> KeywordSearch(const std::string& keywords) {
    return Status::NotSupported("relational baseline has no text search");
  }

  size_t admin_steps() const { return admin_steps_; }
  size_t num_tables() const { return tables_.size(); }

 private:
  query::Catalog catalog_;
  std::map<std::string, std::shared_ptr<query::MemTable>> tables_;
  // Manual-mode statistics: stale until the administrator runs Analyze —
  // the architectural contrast with the appliance's auto-refreshed cache.
  query::opt::TableStatsCache stats_{
      query::opt::TableStatsCache::Mode::kManual};
  query::opt::CostAwarePlanner planner_{&stats_};
  size_t admin_steps_ = 0;
};

}  // namespace impliance::baseline

#endif  // IMPLIANCE_BASELINE_RELATIONAL_BASELINE_H_
