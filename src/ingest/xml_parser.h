#ifndef IMPLIANCE_INGEST_XML_PARSER_H_
#define IMPLIANCE_INGEST_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "model/item.h"

namespace impliance::ingest {

// Parses an XML document into an Item tree. Mapping: the root element maps
// to a node named "doc" with its tag preserved as a child "@tag" when the
// tag is not "doc"; elements become children named by tag; attributes
// become children named "@<attr>"; character data becomes the element's
// (typed) value. Handles comments, processing instructions, the XML
// declaration, CDATA sections, and the five predefined entities. No
// namespaces or DTDs.
Result<model::Item> ParseXmlToItem(std::string_view xml);

}  // namespace impliance::ingest

#endif  // IMPLIANCE_INGEST_XML_PARSER_H_
