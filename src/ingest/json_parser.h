#ifndef IMPLIANCE_INGEST_JSON_PARSER_H_
#define IMPLIANCE_INGEST_JSON_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "model/item.h"

namespace impliance::ingest {

// Parses a JSON value into an Item tree rooted at a node named "doc".
// Mapping: object members become children named by key; array elements
// become repeated children named "item" (or, for arrays that are object
// members, repeated children with the member's name); scalars become typed
// Values. Rejects trailing garbage. Supports the full JSON grammar except
// \uXXXX escapes beyond Latin-1 (mapped byte-wise).
Result<model::Item> ParseJsonToItem(std::string_view json);

}  // namespace impliance::ingest

#endif  // IMPLIANCE_INGEST_JSON_PARSER_H_
