#include "ingest/xml_parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace impliance::ingest {

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  Result<model::Item> Parse() {
    SkipProlog();
    if (Peek() != '<') return Error("expected root element");
    model::Item root("doc");
    IMPLIANCE_ASSIGN_OR_RETURN(std::string tag, ParseElementInto(&root));
    if (tag != "doc") {
      // Preserve the original root tag for provenance.
      model::Item tag_item("@tag", model::Value::String(tag));
      root.children.insert(root.children.begin(), std::move(tag_item));
    }
    SkipWhitespaceAndMisc();
    if (pos_ != input_.size()) return Error("trailing content after root");
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("XML parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  // Skips whitespace, comments and processing instructions between nodes.
  void SkipWhitespaceAndMisc() {
    while (true) {
      SkipWhitespace();
      if (input_.substr(pos_, 4) == "<!--") {
        size_t end = input_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? input_.size() : end + 3;
      } else if (input_.substr(pos_, 2) == "<?") {
        size_t end = input_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? input_.size() : end + 2;
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndMisc();
    if (input_.substr(pos_, 2) == "<!") {  // DOCTYPE: skip to '>'
      size_t end = input_.find('>', pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 1;
      SkipWhitespaceAndMisc();
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string DecodeEntities(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] != '&') {
        out.push_back(text[i]);
        continue;
      }
      if (text.substr(i, 4) == "&lt;") {
        out.push_back('<');
        i += 3;
      } else if (text.substr(i, 4) == "&gt;") {
        out.push_back('>');
        i += 3;
      } else if (text.substr(i, 5) == "&amp;") {
        out.push_back('&');
        i += 4;
      } else if (text.substr(i, 6) == "&quot;") {
        out.push_back('"');
        i += 5;
      } else if (text.substr(i, 6) == "&apos;") {
        out.push_back('\'');
        i += 5;
      } else {
        out.push_back('&');
      }
    }
    return out;
  }

  // Parses one element (cursor at '<'); fills `node` with attributes,
  // children and text; returns the tag name.
  Result<std::string> ParseElementInto(model::Item* node) {
    if (Peek() != '<') return Error("expected '<'");
    ++pos_;
    IMPLIANCE_ASSIGN_OR_RETURN(std::string tag, ParseName());

    // Attributes.
    while (true) {
      SkipWhitespace();
      char c = Peek();
      if (c == '/') {
        if (input_.substr(pos_, 2) != "/>") return Error("expected '/>'");
        pos_ += 2;
        return tag;  // self-closing, no content
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      IMPLIANCE_ASSIGN_OR_RETURN(std::string attr, ParseName());
      SkipWhitespace();
      if (Peek() != '=') return Error("expected '=' after attribute");
      ++pos_;
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      size_t end = input_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated attribute value");
      }
      std::string value = DecodeEntities(input_.substr(pos_, end - pos_));
      pos_ = end + 1;
      node->AddChild("@" + attr, model::ParseValue(value));
    }

    // Content: interleaved text and child elements until </tag>.
    std::string text;
    while (true) {
      if (pos_ >= input_.size()) return Error("unterminated element <" + tag);
      if (input_[pos_] == '<') {
        if (input_.substr(pos_, 2) == "</") {
          pos_ += 2;
          IMPLIANCE_ASSIGN_OR_RETURN(std::string close, ParseName());
          if (close != tag) {
            return Error("mismatched close tag </" + close + "> for <" + tag +
                         ">");
          }
          SkipWhitespace();
          if (Peek() != '>') return Error("expected '>' in close tag");
          ++pos_;
          break;
        }
        if (input_.substr(pos_, 4) == "<!--") {
          size_t end = input_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) {
            return Error("unterminated comment");
          }
          pos_ = end + 3;
          continue;
        }
        if (input_.substr(pos_, 9) == "<![CDATA[") {
          size_t end = input_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) return Error("unterminated CDATA");
          text.append(input_.substr(pos_ + 9, end - pos_ - 9));
          pos_ = end + 3;
          continue;
        }
        model::Item child("");
        IMPLIANCE_ASSIGN_OR_RETURN(std::string child_tag,
                                   ParseElementInto(&child));
        child.name = child_tag;
        node->children.push_back(std::move(child));
      } else {
        size_t next = input_.find('<', pos_);
        if (next == std::string_view::npos) next = input_.size();
        text.append(DecodeEntities(input_.substr(pos_, next - pos_)));
        pos_ = next;
      }
    }

    std::string_view trimmed = TrimWhitespace(text);
    if (!trimmed.empty()) {
      node->value = model::ParseValue(trimmed);
    }
    return tag;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<model::Item> ParseXmlToItem(std::string_view xml) {
  return XmlParser(xml).Parse();
}

}  // namespace impliance::ingest
