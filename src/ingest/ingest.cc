#include "ingest/ingest.h"

#include <cctype>

#include "common/string_util.h"
#include "ingest/json_parser.h"
#include "ingest/xml_parser.h"

namespace impliance::ingest {

model::Document FromRelationalRow(std::string_view table,
                                  const std::vector<std::string>& columns,
                                  const std::vector<std::string>& values) {
  model::Document doc;
  doc.kind = std::string(table);
  doc.root = model::Item("doc");
  const size_t n = std::min(columns.size(), values.size());
  for (size_t i = 0; i < n; ++i) {
    doc.root.AddChild(columns[i], model::ParseValue(values[i]));
  }
  return doc;
}

namespace {

// Splits one CSV line honoring double-quoted fields ("" = literal quote).
std::vector<std::string> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

Result<std::vector<model::Document>> FromCsv(std::string_view kind,
                                             std::string_view csv) {
  std::vector<std::string> lines = Split(csv, '\n');
  // Drop trailing \r (CRLF input) and empty trailing lines.
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) {
    return Status::InvalidArgument("CSV input is empty");
  }
  std::vector<std::string> header = SplitCsvLine(lines[0]);
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV header is empty");
  }
  std::vector<model::Document> docs;
  for (size_t row = 1; row < lines.size(); ++row) {
    if (lines[row].empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(lines[row]);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(row) + " has " +
          std::to_string(fields.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    docs.push_back(FromRelationalRow(kind, header, fields));
  }
  return docs;
}

Result<model::Document> FromJson(std::string_view kind,
                                 std::string_view json) {
  model::Document doc;
  doc.kind = std::string(kind);
  IMPLIANCE_ASSIGN_OR_RETURN(doc.root, ParseJsonToItem(json));
  return doc;
}

Result<model::Document> FromXml(std::string_view kind, std::string_view xml) {
  model::Document doc;
  doc.kind = std::string(kind);
  IMPLIANCE_ASSIGN_OR_RETURN(doc.root, ParseXmlToItem(xml));
  return doc;
}

Result<model::Document> FromEmail(std::string_view text,
                                  std::string_view kind) {
  model::Document doc;
  doc.kind = kind.empty() ? "email" : std::string(kind);
  doc.root = model::Item("doc");

  std::vector<std::string> lines = Split(text, '\n');
  size_t body_start = lines.size();
  bool saw_header = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string& line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      body_start = i + 1;
      break;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("malformed e-mail header line " +
                                     std::to_string(i));
    }
    std::string name = ToLower(TrimWhitespace(line.substr(0, colon)));
    std::string_view value = TrimWhitespace(
        std::string_view(line).substr(colon + 1));
    doc.root.AddChild(std::move(name), model::ParseValue(value));
    saw_header = true;
  }
  if (!saw_header) {
    return Status::InvalidArgument("e-mail without headers");
  }
  std::string body;
  for (size_t i = body_start; i < lines.size(); ++i) {
    if (!body.empty()) body.push_back('\n');
    body += lines[i];
  }
  doc.root.AddChild("body", model::Value::String(std::move(body)));
  return doc;
}

model::Document FromPlainText(std::string_view kind, std::string_view title,
                              std::string_view body) {
  return model::MakeTextDocument(std::string(kind), std::string(title),
                                 std::string(body));
}

Result<std::vector<model::Document>> FromLogLines(std::string_view kind,
                                                  std::string_view text) {
  std::vector<model::Document> docs;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = TrimWhitespace(raw_line);
    if (line.empty()) continue;
    model::Document doc;
    doc.kind = std::string(kind);
    doc.root = model::Item("doc");

    // Try "<date> [LEVEL] source: message".
    bool structured = false;
    if (line.size() > 12 && line[4] == '-' && line[7] == '-') {
      model::Value timestamp = model::ParseValue(line.substr(0, 10));
      size_t open = line.find('[', 10);
      size_t close = open == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(']', open);
      if (timestamp.type() == model::ValueType::kTimestamp &&
          close != std::string_view::npos) {
        std::string_view level = line.substr(open + 1, close - open - 1);
        std::string_view rest = TrimWhitespace(line.substr(close + 1));
        size_t colon = rest.find(':');
        if (colon != std::string_view::npos && colon > 0) {
          doc.root.AddChild("timestamp", timestamp);
          doc.root.AddChild("level",
                            model::Value::String(ToLower(level)));
          doc.root.AddChild(
              "source",
              model::Value::String(std::string(
                  TrimWhitespace(rest.substr(0, colon)))));
          doc.root.AddChild(
              "message",
              model::Value::String(std::string(
                  TrimWhitespace(rest.substr(colon + 1)))));
          structured = true;
        }
      }
    }
    if (!structured) {
      doc.root.AddChild("message", model::Value::String(std::string(line)));
    }
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) {
    return Status::InvalidArgument("log input had no lines");
  }
  return docs;
}

Format DetectFormat(std::string_view content) {
  std::string_view trimmed = TrimWhitespace(content);
  if (trimmed.empty()) return Format::kPlainText;
  if (trimmed.front() == '{' || trimmed.front() == '[') return Format::kJson;
  if (trimmed.front() == '<') return Format::kXml;

  // E-mail: first line looks like "Header: value" and a known header name.
  size_t eol = trimmed.find('\n');
  std::string_view first_line =
      eol == std::string_view::npos ? trimmed : trimmed.substr(0, eol);
  size_t colon = first_line.find(':');
  if (colon != std::string_view::npos) {
    std::string name = ToLower(TrimWhitespace(first_line.substr(0, colon)));
    if (name == "from" || name == "to" || name == "subject" ||
        name == "date" || name == "cc" || name == "message-id") {
      return Format::kEmail;
    }
  }

  // CSV: at least two lines, and a comma in the first line whose field
  // count is matched by the second line.
  if (eol != std::string_view::npos &&
      first_line.find(',') != std::string_view::npos) {
    std::string_view second = trimmed.substr(eol + 1);
    size_t eol2 = second.find('\n');
    if (eol2 != std::string_view::npos) second = second.substr(0, eol2);
    if (SplitCsvLine(first_line).size() == SplitCsvLine(second).size() &&
        !second.empty()) {
      return Format::kCsv;
    }
  }
  return Format::kPlainText;
}

Result<std::vector<model::Document>> IngestAny(std::string_view kind,
                                               std::string_view content) {
  switch (DetectFormat(content)) {
    case Format::kCsv:
      return FromCsv(kind, content);
    case Format::kJson: {
      IMPLIANCE_ASSIGN_OR_RETURN(model::Document doc, FromJson(kind, content));
      return std::vector<model::Document>{std::move(doc)};
    }
    case Format::kXml: {
      IMPLIANCE_ASSIGN_OR_RETURN(model::Document doc, FromXml(kind, content));
      return std::vector<model::Document>{std::move(doc)};
    }
    case Format::kEmail: {
      IMPLIANCE_ASSIGN_OR_RETURN(model::Document doc,
                                 FromEmail(content, kind));
      return std::vector<model::Document>{std::move(doc)};
    }
    case Format::kPlainText: {
      return std::vector<model::Document>{
          FromPlainText(kind, "", std::string(content))};
    }
  }
  return Status::Internal("unreachable format");
}

}  // namespace impliance::ingest
