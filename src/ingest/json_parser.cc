#include "ingest/json_parser.h"

#include <cctype>
#include <charconv>
#include <string>

namespace impliance::ingest {

namespace {

// Recursive-descent JSON parser writing into Item nodes.
class JsonParser {
 public:
  explicit JsonParser(std::string_view input) : input_(input) {}

  Result<model::Item> Parse() {
    model::Item root("doc");
    IMPLIANCE_RETURN_IF_ERROR(ParseValueInto(&root, "doc"));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after JSON value");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWhitespace();
    return pos_ < input_.size() ? input_[pos_] : '\0';
  }

  // Parses the next JSON value and stores it into `node` (scalar -> value,
  // object -> children, array -> repeated children named `array_name`).
  Status ParseValueInto(model::Item* node, std::string_view array_name) {
    switch (Peek()) {
      case '{':
        return ParseObjectInto(node);
      case '[':
        return ParseArrayInto(node, array_name);
      case '"': {
        IMPLIANCE_ASSIGN_OR_RETURN(std::string s, ParseString());
        node->value = model::Value::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (input_.substr(pos_, 4) == "true") {
          pos_ += 4;
          node->value = model::Value::Bool(true);
          return Status::OK();
        }
        return Error("expected 'true'");
      case 'f':
        if (input_.substr(pos_, 5) == "false") {
          pos_ += 5;
          node->value = model::Value::Bool(false);
          return Status::OK();
        }
        return Error("expected 'false'");
      case 'n':
        if (input_.substr(pos_, 4) == "null") {
          pos_ += 4;
          node->value = model::Value::Null();
          return Status::OK();
        }
        return Error("expected 'null'");
      default:
        return ParseNumberInto(node);
    }
  }

  Status ParseObjectInto(model::Item* node) {
    if (!Consume('{')) return Error("expected '{'");
    if (Consume('}')) return Status::OK();  // empty object
    while (true) {
      if (Peek() != '"') return Error("expected object key");
      IMPLIANCE_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Error("expected ':'");
      // Arrays under a key become repeated children named by the key,
      // giving natural repeated-sibling structure.
      if (Peek() == '[') {
        IMPLIANCE_RETURN_IF_ERROR(ParseArrayAsRepeated(node, key));
      } else {
        model::Item& child = node->AddChild(key);
        IMPLIANCE_RETURN_IF_ERROR(ParseValueInto(&child, key));
      }
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  // [1, 2] under key "x" -> two children named "x".
  Status ParseArrayAsRepeated(model::Item* parent, const std::string& name) {
    if (!Consume('[')) return Error("expected '['");
    if (Consume(']')) return Status::OK();  // empty array: no children
    while (true) {
      model::Item& child = parent->AddChild(name);
      IMPLIANCE_RETURN_IF_ERROR(ParseValueInto(&child, name));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  // A top-level (or nested-in-array) array: children named "item".
  Status ParseArrayInto(model::Item* node, std::string_view element_name) {
    std::string name =
        element_name.empty() ? "item" : std::string(element_name);
    return ParseArrayAsRepeated(node, name == "doc" ? "item" : name);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < input_.size()) {
      char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) return Error("dangling escape");
      char esc = input_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the code point (BMP only; surrogates unpaired
          // are encoded as-is, adequate for ingestion).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumberInto(model::Item* node) {
    SkipWhitespace();
    const size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view text = input_.substr(start, pos_ - start);
    if (text.empty() || text == "-" || text == "+") {
      return Error("expected a value");
    }
    if (!is_double) {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec == std::errc() && ptr == text.data() + text.size()) {
        node->value = model::Value::Int(v);
        return Status::OK();
      }
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), d);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return Error("malformed number '" + std::string(text) + "'");
    }
    node->value = model::Value::Double(d);
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<model::Item> ParseJsonToItem(std::string_view json) {
  return JsonParser(json).Parse();
}

}  // namespace impliance::ingest
