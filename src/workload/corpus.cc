#include "workload/corpus.h"

#include <cstdio>

namespace impliance::workload {

namespace {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "ada",   "grace", "alan",  "edgar", "barbara", "donald",
      "edsger", "tony",  "john",  "jim",   "leslie",  "ken",
      "dennis", "bjarne", "niklaus", "frances"};
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "lovelace", "hopper",  "turing",   "codd",    "liskov",  "knuth",
      "dijkstra", "hoare",   "backus",   "gray",    "lamport", "thompson",
      "ritchie",  "kernighan", "wirth",  "allen"};
  return *kNames;
}

const std::vector<std::string>& Products() {
  static const std::vector<std::string>* kProducts =
      new std::vector<std::string>{"WidgetPro",  "GizmoMax",  "FlexCable",
                                   "TurboPump",  "NanoSensor", "PowerCell",
                                   "DataVault",  "CloudBox"};
  return *kProducts;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string>* kCities = new std::vector<std::string>{
      "london", "paris", "rome", "berlin", "madrid", "vienna", "dublin",
      "lisbon"};
  return *kCities;
}

const std::vector<std::string>& Procedures() {
  static const std::vector<std::string>* kProcedures =
      new std::vector<std::string>{"appendectomy", "arthroscopy", "biopsy",
                                   "angioplasty", "colonoscopy",
                                   "tonsillectomy"};
  return *kProcedures;
}

std::string Date(Rng* rng) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "200%d-%02d-%02d",
                static_cast<int>(5 + rng->Uniform(2)),
                static_cast<int>(1 + rng->Uniform(12)),
                static_cast<int>(1 + rng->Uniform(28)));
  return buf;
}

}  // namespace

std::vector<std::string> CorpusGenerator::ProductNames() { return Products(); }
std::vector<std::string> CorpusGenerator::CityNames() { return Cities(); }
std::vector<std::string> CorpusGenerator::ProcedureNames() {
  return Procedures();
}

CorpusGenerator::CorpusGenerator(const CorpusOptions& options)
    : options_(options), rng_(options.seed) {}

std::string CorpusGenerator::MakePersonName() {
  return rng_.Pick(FirstNames()) + " " + rng_.Pick(LastNames());
}

std::string CorpusGenerator::Typo(const std::string& name) {
  std::string out = name;
  // Swap two adjacent letters away from the word boundary.
  if (out.size() > 4) {
    size_t pos = 1 + rng_.Uniform(out.size() - 3);
    if (out[pos] == ' ' || out[pos + 1] == ' ') pos = 1;
    std::swap(out[pos], out[pos + 1]);
  }
  return out;
}

std::vector<RawItem> CorpusGenerator::GenerateRaw(GroundTruth* truth) {
  std::vector<RawItem> items;
  GroundTruth local_truth;
  GroundTruth* gt = truth != nullptr ? truth : &local_truth;

  // ----------------------------------------------------------- customers
  customers_.clear();
  std::string customer_csv = "id,name,email,city,phone\n";
  for (size_t i = 0; i < options_.num_customers; ++i) {
    Customer customer;
    customer.id = 100 + static_cast<int64_t>(i);
    customer.name = MakePersonName();
    std::string user = customer.name;
    for (char& c : user) {
      if (c == ' ') c = '.';
    }
    customer.email = user + std::to_string(i) + "@example.com";
    customer.city = rng_.Pick(Cities());
    customers_.push_back(customer);
    gt->customer_names[customer.id] = customer.name;
    char phone[32];
    std::snprintf(phone, sizeof(phone), "555-%03d-%04d",
                  static_cast<int>(rng_.Uniform(1000)),
                  static_cast<int>(rng_.Uniform(10000)));
    customer_csv += std::to_string(customer.id) + "," + customer.name + "," +
                    customer.email + "," + customer.city + "," + phone + "\n";
  }
  // Duplicate customer records with typo'd names (same email OR same city).
  int64_t next_dup_id = 100 + static_cast<int64_t>(options_.num_customers);
  const size_t num_dups =
      static_cast<size_t>(options_.num_customers * options_.duplicate_rate);
  for (size_t i = 0; i < num_dups; ++i) {
    const Customer& original = customers_[rng_.Uniform(customers_.size())];
    Customer dup = original;
    dup.id = next_dup_id++;
    dup.name = Typo(original.name);
    gt->customer_names[dup.id] = original.name;  // same entity
    gt->duplicate_customers.emplace_back(original.id, dup.id);
    customer_csv += std::to_string(dup.id) + "," + dup.name + "," + dup.email +
                    "," + dup.city + ",555-000-0000\n";
  }
  items.push_back(RawItem{"customer", customer_csv});

  // ------------------------------------------------- orders (3 formats)
  int64_t order_no = 9000;
  auto pick_customer = [this]() -> const Customer& {
    return customers_[rng_.Uniform(customers_.size())];
  };

  std::string order_csv = "order_no,customer_id,product,total,date\n";
  for (size_t i = 0; i < options_.num_orders_csv; ++i) {
    const Customer& customer = pick_customer();
    const std::string& product = rng_.Pick(Products());
    const double total = 10.0 + rng_.Uniform(5000) / 10.0;
    gt->order_customer[order_no] = customer.id;
    gt->order_product[order_no] = product;
    char total_buf[16];
    std::snprintf(total_buf, sizeof(total_buf), "%.2f", total);
    order_csv += std::to_string(order_no++) + "," +
                 std::to_string(customer.id) + "," + product + "," +
                 total_buf + "," + Date(&rng_) + "\n";
  }
  items.push_back(RawItem{"order_csv", order_csv});

  for (size_t i = 0; i < options_.num_orders_xml; ++i) {
    const Customer& customer = pick_customer();
    const std::string& product = rng_.Pick(Products());
    const double total = 10.0 + rng_.Uniform(5000) / 10.0;
    gt->order_customer[order_no] = customer.id;
    gt->order_product[order_no] = product;
    char xml[512];
    std::snprintf(xml, sizeof(xml),
                  "<order>\n  <order_no>%lld</order_no>\n"
                  "  <customer_id>%lld</customer_id>\n"
                  "  <product>%s</product>\n  <total>%.2f</total>\n"
                  "  <date>%s</date>\n</order>",
                  static_cast<long long>(order_no),
                  static_cast<long long>(customer.id), product.c_str(), total,
                  Date(&rng_).c_str());
    ++order_no;
    items.push_back(RawItem{"order_xml", xml});
  }

  for (size_t i = 0; i < options_.num_orders_email; ++i) {
    const Customer& customer = pick_customer();
    const std::string& product = rng_.Pick(Products());
    const double total = 10.0 + rng_.Uniform(5000) / 10.0;
    gt->order_customer[order_no] = customer.id;
    gt->order_product[order_no] = product;
    char body[512];
    std::snprintf(body, sizeof(body),
                  "From: %s\nTo: sales@example.com\n"
                  "Subject: Purchase order PO-%lld\n\n"
                  "Please process PO-%lld: customer %lld orders one %s "
                  "for $%.2f. Thanks!",
                  customer.email.c_str(), static_cast<long long>(order_no),
                  static_cast<long long>(order_no),
                  static_cast<long long>(customer.id), product.c_str(), total);
    ++order_no;
    items.push_back(RawItem{"order_email", body});
  }

  // ----------------------------------------------------- CRM transcripts
  for (size_t i = 0; i < options_.num_transcripts; ++i) {
    const Customer& customer = pick_customer();
    const std::string& product = rng_.Pick(Products());
    const int sentiment = static_cast<int>(rng_.Uniform(3)) - 1;
    GroundTruth::TranscriptFact fact;
    fact.customer_id = customer.id;
    fact.product = product;
    fact.sentiment = sentiment;
    gt->transcripts.push_back(fact);

    std::string mood;
    if (sentiment > 0) {
      mood = "I love the " + product + ", it is excellent and works great. "
             "I would recommend it and might buy another.";
    } else if (sentiment < 0) {
      mood = "My " + product + " arrived broken. This is terrible and "
             "unacceptable, I want a refund.";
    } else {
      mood = "I have a question about configuring the " + product +
             " with my existing setup.";
    }
    std::string transcript =
        "Call transcript. Agent: hello, how can I help? Caller: this is " +
        customer.name + " from " + customer.city + ", customer number " +
        std::to_string(customer.id) + ". " + mood +
        " Agent: noted, goodbye.";
    items.push_back(RawItem{"call_transcript", transcript});
  }

  // -------------------------------------------------------------- claims
  int64_t claim_no = 70000;
  for (size_t i = 0; i < options_.num_claims; ++i) {
    const Customer& patient = pick_customer();
    const std::string& procedure = rng_.Pick(Procedures());
    // Reference price per procedure is deterministic; ~15% of claims are
    // padded well above it (fraud ground truth).
    const double reference = 500.0 + 100.0 * (procedure.size() % 7);
    const bool excessive = rng_.Bernoulli(0.15);
    const double amount =
        excessive ? reference * (2.0 + rng_.NextDouble())
                  : reference * (0.8 + 0.4 * rng_.NextDouble());
    GroundTruth::ClaimFact fact;
    fact.patient_id = patient.id;
    fact.procedure = procedure;
    fact.amount = amount;
    fact.excessive = excessive;
    gt->claims[claim_no] = fact;

    char xml[768];
    std::snprintf(
        xml, sizeof(xml),
        "<claim>\n  <claim_no>%lld</claim_no>\n"
        "  <patient_id>%lld</patient_id>\n  <provider>clinic_%d</provider>\n"
        "  <amount>%.2f</amount>\n"
        "  <notes>Patient %s underwent %s on %s; billed accordingly.</notes>\n"
        "</claim>",
        static_cast<long long>(claim_no), static_cast<long long>(patient.id),
        static_cast<int>(rng_.Uniform(10)), amount, patient.name.c_str(),
        procedure.c_str(), Date(&rng_).c_str());
    ++claim_no;
    items.push_back(RawItem{"claim", xml});
  }

  // ----------------------------------------- contracts (legal discovery)
  const size_t num_companies = 2 + options_.num_contract_emails / 4;
  gt->companies.clear();
  for (size_t i = 0; i < num_companies; ++i) {
    gt->companies.push_back("company_" + std::to_string(i));
  }
  for (size_t i = 0; i < options_.num_contract_emails; ++i) {
    // Chain contracts company_k <-> company_k+1 plus random filler.
    const size_t k = i % (num_companies - 1);
    char body[512];
    std::snprintf(body, sizeof(body),
                  "From: legal@%s.com\nTo: legal@%s.com\n"
                  "Subject: Partnership agreement %zu\n\n"
                  "This contract binds %s and %s as partners effective %s.",
                  gt->companies[k].c_str(), gt->companies[k + 1].c_str(), i,
                  gt->companies[k].c_str(), gt->companies[k + 1].c_str(),
                  Date(&rng_).c_str());
    items.push_back(RawItem{"contract_email", body});
  }

  return items;
}

}  // namespace impliance::workload
