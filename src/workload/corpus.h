#ifndef IMPLIANCE_WORKLOAD_CORPUS_H_
#define IMPLIANCE_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "model/document.h"

namespace impliance::workload {

// Synthetic enterprise corpus covering the paper's use cases (Section 2.1):
// CRM call transcripts, insurance claims, legal/contract e-mail, and
// purchase orders arriving in three formats (CSV "spreadsheet", XML, and
// e-mail). Stands in for the proprietary enterprise data the paper assumes;
// every generated fact is recorded in GroundTruth so discovery quality can
// be scored exactly.
struct CorpusOptions {
  uint64_t seed = 42;
  size_t num_customers = 100;
  // Fraction of customers that get a duplicate record with a typo'd name
  // (entity-resolution ground truth).
  double duplicate_rate = 0.2;
  size_t num_orders_csv = 120;
  size_t num_orders_xml = 60;
  size_t num_orders_email = 60;
  size_t num_transcripts = 80;
  size_t num_claims = 60;
  size_t num_contract_emails = 40;
};

// A pre-ingestion item: raw bytes plus a kind tag, the way data arrives at
// the appliance ("thrown into the stewing pot with no preparation").
struct RawItem {
  std::string kind;
  std::string content;
};

struct GroundTruth {
  // Customer business id -> canonical name.
  std::map<int64_t, std::string> customer_names;
  // Pairs of customer business ids that are the same real-world entity.
  std::vector<std::pair<int64_t, int64_t>> duplicate_customers;
  // Order number -> customer business id it references (all formats).
  std::map<int64_t, int64_t> order_customer;
  // Order number -> product name.
  std::map<int64_t, std::string> order_product;
  // Transcript index -> (customer id, product mentioned, sentiment -1/0/1).
  struct TranscriptFact {
    int64_t customer_id = 0;
    std::string product;
    int sentiment = 0;
  };
  std::vector<TranscriptFact> transcripts;
  // Claim number -> (patient customer id, procedure, amount, excessive?).
  struct ClaimFact {
    int64_t patient_id = 0;
    std::string procedure;
    double amount = 0;
    bool excessive = false;
  };
  std::map<int64_t, ClaimFact> claims;
  // Company partnership chain used by the legal-discovery example:
  // contracts connect companies[i] to companies[i+1].
  std::vector<std::string> companies;
};

class CorpusGenerator {
 public:
  explicit CorpusGenerator(const CorpusOptions& options);

  // Generates the whole corpus as raw items (CSV text, XML text, e-mails,
  // plain text); fills `truth` if non-null. Deterministic per seed.
  std::vector<RawItem> GenerateRaw(GroundTruth* truth);

  // Gazetteer entries matching what the generator embeds, for wiring up
  // the dictionary annotator.
  static std::vector<std::string> ProductNames();
  static std::vector<std::string> CityNames();
  static std::vector<std::string> ProcedureNames();

 private:
  struct Customer {
    int64_t id;
    std::string name;
    std::string email;
    std::string city;
  };

  std::string MakePersonName();
  std::string Typo(const std::string& name);

  CorpusOptions options_;
  Rng rng_;
  std::vector<Customer> customers_;
};

}  // namespace impliance::workload

#endif  // IMPLIANCE_WORKLOAD_CORPUS_H_
