#ifndef IMPLIANCE_STORAGE_SEGMENT_H_
#define IMPLIANCE_STORAGE_SEGMENT_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/document.h"
#include "storage/block_cache.h"
#include "storage/bloom.h"

namespace impliance::storage {

// Composite key identifying one immutable version of one document.
struct VersionKey {
  model::DocId id = model::kInvalidDocId;
  uint32_t version = 0;

  uint64_t Packed() const { return (id << 16) ^ version; }

  friend bool operator==(const VersionKey& a, const VersionKey& b) {
    return a.id == b.id && a.version == b.version;
  }
  friend bool operator<(const VersionKey& a, const VersionKey& b) {
    return a.id != b.id ? a.id < b.id : a.version < b.version;
  }
};

// Immutable on-disk run of documents, flushed from the memtable. Layout:
//
//   record*            each: flag byte (0=raw, 1=LZ) | varint64 size |
//                      payload bytes | fixed32 crc(payload)
//   index              varint64 count | (id, version, offset, size)*
//   bloom              serialized BloomFilter over VersionKey::Packed()
//   footer             fixed64 index_offset | fixed64 bloom_offset |
//                      fixed64 magic
//
// The index and bloom filter are held in memory after open; records are
// read on demand through the shared BlockCache. With `compress` set,
// records are LZ-compressed when that actually shrinks them — the
// storage-software compression pushdown of Section 3.1.
class SegmentBuilder {
 public:
  SegmentBuilder(std::string path, uint64_t segment_id, size_t expected_docs,
                 bool compress = false);

  Status Add(const model::Document& doc);
  Status Finish();

  size_t num_docs() const { return index_.size(); }

 private:
  struct IndexEntry {
    VersionKey key;
    uint64_t offset;
    uint64_t size;
  };

  std::string path_;
  uint64_t segment_id_;
  bool compress_;
  std::string buffer_;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  bool finished_ = false;
};

class SegmentReader {
 public:
  // `cache` must outlive the reader and may be nullptr (no caching).
  static Result<std::unique_ptr<SegmentReader>> Open(const std::string& path,
                                                     uint64_t segment_id,
                                                     BlockCache* cache);
  ~SegmentReader();

  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  // NotFound if the key is not in this segment.
  Result<model::Document> Get(const VersionKey& key);

  bool MayContain(const VersionKey& key) const {
    return bloom_.MayContain(key.Packed());
  }

  // Every key in this segment, sorted.
  const std::vector<VersionKey>& Keys() const { return keys_; }

  uint64_t segment_id() const { return segment_id_; }
  size_t num_docs() const { return keys_.size(); }
  uint64_t compressed_records() const { return compressed_records_; }

 private:
  struct Extent {
    uint64_t offset;
    uint64_t size;
  };

  SegmentReader(std::FILE* file, uint64_t segment_id, BlockCache* cache)
      : file_(file), segment_id_(segment_id), cache_(cache), bloom_(1) {}

  // Returns a refcounted handle to the raw record bytes: a cache hit shares
  // the cached allocation instead of copying it.
  Result<BlockCache::PayloadHandle> ReadRecordBytes(const Extent& extent);

  std::FILE* file_;
  uint64_t segment_id_;
  BlockCache* cache_;
  BloomFilter bloom_;
  std::vector<VersionKey> keys_;          // sorted
  std::vector<Extent> extents_;           // parallel to keys_
  std::mutex io_mutex_;                   // serializes fseek+fread pairs
  uint64_t compressed_records_ = 0;
};

}  // namespace impliance::storage

#endif  // IMPLIANCE_STORAGE_SEGMENT_H_
