#include "storage/document_store.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"

namespace impliance::storage {

namespace fs = std::filesystem;

DocumentStore::DocumentStore(StoreOptions options)
    : options_(std::move(options)),
      cache_(std::make_unique<BlockCache>(options_.block_cache_bytes)) {}

DocumentStore::~DocumentStore() = default;

std::string DocumentStore::WalPath() const { return options_.dir + "/wal.log"; }

std::string DocumentStore::SegmentPath(uint64_t segment_id) const {
  return options_.dir + "/segment_" + std::to_string(segment_id) + ".seg";
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    StoreOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("StoreOptions.dir is required");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("cannot create store dir: " + options.dir);
  }
  auto store = std::unique_ptr<DocumentStore>(new DocumentStore(options));
  IMPLIANCE_RETURN_IF_ERROR(store->RecoverSegments());
  IMPLIANCE_RETURN_IF_ERROR(store->RecoverWal());
  IMPLIANCE_ASSIGN_OR_RETURN(
      store->wal_, WalWriter::Open(store->WalPath(), options.sync_wal));
  return store;
}

Status DocumentStore::RecoverSegments() {
  // Segment files are named segment_<id>.seg; load them in id order so the
  // newest version of a key wins naturally.
  std::vector<uint64_t> segment_ids;
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".seg";
    if (name.rfind("segment_", 0) == 0 && name.size() > 12 &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      segment_ids.push_back(
          std::stoull(name.substr(8, name.size() - 8 - 4)));
    }
  }
  std::sort(segment_ids.begin(), segment_ids.end());
  for (uint64_t segment_id : segment_ids) {
    Result<std::unique_ptr<SegmentReader>> opened =
        SegmentReader::Open(SegmentPath(segment_id), segment_id, cache_.get());
    if (opened.status().IsCorruption()) {
      // A torn segment means a crash during flush: the WAL is only
      // truncated AFTER a successful flush, so its contents are still in
      // the log. Quarantine the file and recover from the WAL.
      IMPLIANCE_LOG(Warning) << "quarantining torn segment "
                             << SegmentPath(segment_id) << ": "
                             << opened.status().ToString();
      std::error_code ec;
      fs::rename(SegmentPath(segment_id), SegmentPath(segment_id) + ".bad",
                 ec);
      next_segment_id_ = std::max(next_segment_id_, segment_id + 1);
      continue;
    }
    IMPLIANCE_ASSIGN_OR_RETURN(std::unique_ptr<SegmentReader> reader,
                               std::move(opened));
    for (const VersionKey& key : reader->Keys()) {
      uint32_t& latest = latest_version_[key.id];
      latest = std::max(latest, key.version);
      next_id_ = std::max(next_id_, key.id + 1);
    }
    segments_.push_back(std::move(reader));
    next_segment_id_ = std::max(next_segment_id_, segment_id + 1);
  }
  return Status::OK();
}

Status DocumentStore::RecoverWal() {
  IMPLIANCE_ASSIGN_OR_RETURN(std::vector<std::string> records,
                             ReadWalRecords(WalPath()));
  for (const std::string& record : records) {
    model::Document doc;
    if (!model::Document::Decode(record, &doc)) {
      // Decodable-prefix guarantee comes from the CRC; an undecodable
      // record here means a serialization bug, not a torn write.
      return Status::Corruption("undecodable WAL record");
    }
    VersionKey key{doc.id, doc.version};
    uint32_t& latest = latest_version_[key.id];
    latest = std::max(latest, key.version);
    next_id_ = std::max(next_id_, doc.id + 1);
    memtable_[key] = std::move(doc);
  }
  return Status::OK();
}

Status DocumentStore::WriteWal(const model::Document& doc) {
  std::string encoded;
  doc.Encode(&encoded);
  IMPLIANCE_RETURN_IF_ERROR(wal_->Append(encoded));
  wal_bytes_total_ += encoded.size();
  return Status::OK();
}

Result<model::DocId> DocumentStore::Insert(model::Document doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  doc.id = next_id_++;
  doc.version = 1;
  IMPLIANCE_RETURN_IF_ERROR(WriteWal(doc));
  const model::DocId id = doc.id;
  latest_version_[id] = 1;
  memtable_[VersionKey{id, 1}] = std::move(doc);
  change_epoch_.fetch_add(1, std::memory_order_release);
  if (memtable_.size() >= options_.memtable_max_docs) {
    IMPLIANCE_RETURN_IF_ERROR(FlushLocked());
  }
  return id;
}

Result<uint32_t> DocumentStore::AddVersion(model::DocId id,
                                           model::Document doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = latest_version_.find(id);
  if (it == latest_version_.end()) {
    return Status::NotFound("no such document: " + std::to_string(id));
  }
  doc.id = id;
  doc.version = it->second + 1;
  IMPLIANCE_RETURN_IF_ERROR(WriteWal(doc));
  it->second = doc.version;
  const uint32_t version = doc.version;
  memtable_[VersionKey{id, version}] = std::move(doc);
  change_epoch_.fetch_add(1, std::memory_order_release);
  if (memtable_.size() >= options_.memtable_max_docs) {
    IMPLIANCE_RETURN_IF_ERROR(FlushLocked());
  }
  return version;
}

Result<model::Document> DocumentStore::Get(model::DocId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = latest_version_.find(id);
  if (it == latest_version_.end()) {
    return Status::NotFound("no such document: " + std::to_string(id));
  }
  return GetLocked(VersionKey{id, it->second});
}

Result<model::Document> DocumentStore::GetVersion(model::DocId id,
                                                  uint32_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetLocked(VersionKey{id, version});
}

Result<uint32_t> DocumentStore::LatestVersion(model::DocId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = latest_version_.find(id);
  if (it == latest_version_.end()) {
    return Status::NotFound("no such document: " + std::to_string(id));
  }
  return it->second;
}

Result<model::Document> DocumentStore::GetLocked(const VersionKey& key) const {
  auto mem_it = memtable_.find(key);
  if (mem_it != memtable_.end()) return mem_it->second;
  // Newest segment first; bloom filters skip most of them.
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (!(*it)->MayContain(key)) continue;
    Result<model::Document> result = (*it)->Get(key);
    if (result.ok()) return result;
    if (!result.status().IsNotFound()) return result;  // real error
  }
  return Status::NotFound("version not found: " + std::to_string(key.id) +
                          "@" + std::to_string(key.version));
}

Status DocumentStore::Scan(
    const std::function<bool(const model::Document&)>& fn) const {
  // Snapshot the id->version map so `fn` may call back into the store.
  std::map<model::DocId, uint32_t> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = latest_version_;
  }
  for (const auto& [id, version] : snapshot) {
    Result<model::Document> doc = [&]() -> Result<model::Document> {
      std::lock_guard<std::mutex> lock(mutex_);
      return GetLocked(VersionKey{id, version});
    }();
    if (!doc.ok()) return doc.status();
    if (!fn(doc.value())) break;
  }
  return Status::OK();
}

std::vector<model::DocId> DocumentStore::AllIds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<model::DocId> ids;
  ids.reserve(latest_version_.size());
  for (const auto& [id, version] : latest_version_) ids.push_back(id);
  return ids;
}

Status DocumentStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return FlushLocked();
}

Status DocumentStore::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  const uint64_t segment_id = next_segment_id_++;
  SegmentBuilder builder(SegmentPath(segment_id), segment_id,
                         memtable_.size(), options_.compress_segments);
  for (const auto& [key, doc] : memtable_) {
    IMPLIANCE_RETURN_IF_ERROR(builder.Add(doc));
  }
  IMPLIANCE_RETURN_IF_ERROR(builder.Finish());
  IMPLIANCE_ASSIGN_OR_RETURN(
      std::unique_ptr<SegmentReader> reader,
      SegmentReader::Open(SegmentPath(segment_id), segment_id, cache_.get()));
  segments_.push_back(std::move(reader));
  memtable_.clear();
  // The WAL's contents are now durable in the segment; start a fresh log.
  wal_.reset();
  std::error_code ec;
  fs::remove(WalPath(), ec);
  IMPLIANCE_ASSIGN_OR_RETURN(wal_,
                             WalWriter::Open(WalPath(), options_.sync_wal));
  change_epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status DocumentStore::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  IMPLIANCE_RETURN_IF_ERROR(FlushLocked());
  if (segments_.size() <= 1) return Status::OK();

  const uint64_t segment_id = next_segment_id_++;
  size_t total_keys = 0;
  for (const auto& segment : segments_) total_keys += segment->num_docs();
  SegmentBuilder builder(SegmentPath(segment_id), segment_id, total_keys,
                         options_.compress_segments);
  // Each (id, version) exists in exactly one segment (the WAL is truncated
  // at flush), so a straight copy preserves everything.
  for (const auto& segment : segments_) {
    for (const VersionKey& key : segment->Keys()) {
      IMPLIANCE_ASSIGN_OR_RETURN(model::Document doc, segment->Get(key));
      IMPLIANCE_RETURN_IF_ERROR(builder.Add(doc));
    }
  }
  IMPLIANCE_RETURN_IF_ERROR(builder.Finish());
  IMPLIANCE_ASSIGN_OR_RETURN(
      std::unique_ptr<SegmentReader> merged,
      SegmentReader::Open(SegmentPath(segment_id), segment_id, cache_.get()));

  // Swap in the merged segment, delete the inputs.
  std::vector<uint64_t> old_ids;
  for (const auto& segment : segments_) old_ids.push_back(segment->segment_id());
  segments_.clear();
  segments_.push_back(std::move(merged));
  std::error_code ec;
  for (uint64_t old_id : old_ids) {
    fs::remove(SegmentPath(old_id), ec);
    // Segment ids are never reused, but stale blocks waste cache capacity;
    // evict only this segment's blocks so the merged one keeps its hits.
    cache_->EraseFile(old_id);
  }
  change_epoch_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

StoreStats DocumentStore::GetStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreStats stats;
  stats.num_documents = latest_version_.size();
  for (const auto& [id, version] : latest_version_) {
    stats.num_versions += version;
  }
  stats.num_segments = segments_.size();
  stats.memtable_docs = memtable_.size();
  stats.cache_hits = cache_->hits();
  stats.cache_misses = cache_->misses();
  stats.wal_bytes = wal_bytes_total_;
  return stats;
}

}  // namespace impliance::storage
