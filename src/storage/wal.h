#ifndef IMPLIANCE_STORAGE_WAL_H_
#define IMPLIANCE_STORAGE_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace impliance::storage {

// Write-ahead log. Record layout on disk:
//   fixed32 crc32c(payload) | varint64 payload_size | payload bytes
// Replay stops cleanly at the first torn/corrupt record, which models a
// crash mid-write; everything before it is recovered.
//
// Durability: Sync() reaches the disk (fdatasync), not just libc's buffer,
// and creating a new WAL fsyncs the parent directory so the file name
// itself survives a crash. Once any write or sync fails the stream is
// poisoned: every later call returns the same IOError, because the record
// boundary on disk is unknown and appending past it would hide the hole.
//
// Fault points (common/fault_injector.h): "wal.sync" fails the durability
// step, "wal.append.torn" persists only a prefix of a record.
class WalWriter {
 public:
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 bool sync_each_record);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Append(std::string_view payload);
  Status Sync();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  WalWriter(std::FILE* file, bool sync_each_record)
      : file_(file), sync_each_record_(sync_each_record) {}

  std::FILE* file_;
  bool sync_each_record_;
  uint64_t bytes_written_ = 0;
  // First error seen; sticky (see class comment).
  Status poisoned_;
};

// Reads every intact record from a WAL file. A missing file yields an empty
// record list (fresh store).
Result<std::vector<std::string>> ReadWalRecords(const std::string& path);

}  // namespace impliance::storage

#endif  // IMPLIANCE_STORAGE_WAL_H_
