#ifndef IMPLIANCE_STORAGE_BLOCK_CACHE_H_
#define IMPLIANCE_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace impliance::storage {

// Sharded LRU cache mapping (file_id, offset) -> raw record bytes. Charged
// by payload size. Thread-safe; one mutex per shard.
//
// Payloads are refcounted: Get hands back a shared handle to the cached
// bytes instead of copying them, so a hit costs a refcount bump and the
// bytes stay valid even if the entry is evicted (or the file erased) while
// the caller is still reading.
class BlockCache {
 public:
  using PayloadHandle = std::shared_ptr<const std::string>;

  explicit BlockCache(size_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // nullptr on miss.
  PayloadHandle Get(uint64_t file_id, uint64_t offset);
  void Put(uint64_t file_id, uint64_t offset, std::string data);
  // Insert an already-shared payload (e.g. the one about to be returned to
  // the caller) without another allocation.
  void Put(uint64_t file_id, uint64_t offset, PayloadHandle data);

  // Drops every entry belonging to `file_id` (segment deleted/compacted).
  void EraseFile(uint64_t file_id);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t charged_bytes() const;

 private:
  static constexpr int kNumShards = 8;

  struct Entry {
    uint64_t key;
    // The mixed key is not invertible, so EraseFile needs the owner here.
    uint64_t file_id;
    PayloadHandle data;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  static uint64_t MakeKey(uint64_t file_id, uint64_t offset);
  Shard& ShardFor(uint64_t key);

  size_t shard_capacity_;
  Shard shards_[kNumShards];
};

}  // namespace impliance::storage

#endif  // IMPLIANCE_STORAGE_BLOCK_CACHE_H_
