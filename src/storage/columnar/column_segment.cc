#include "storage/columnar/column_segment.h"

#include <algorithm>

#include "common/logging.h"

namespace impliance::storage::columnar {

// ------------------------------------------------------------------ format

bool ColumnChunk::DecodeBlockInto(size_t b,
                                  std::vector<model::Value>* out) const {
  std::string_view input = blocks[b].payload;
  return DecodeBlock(encoding, &input, dict, out) && input.empty();
}

size_t ColumnSegment::EncodedBytes() const {
  size_t bytes = 0;
  for (const ColumnChunk& chunk : columns) {
    for (const ColumnBlock& block : chunk.blocks) bytes += block.payload.size();
    for (const model::Value& value : chunk.dict) {
      bytes += value.is_string() ? value.string_value().size() : 8;
    }
  }
  return bytes;
}

// ----------------------------------------------------------------- builder

SegmentBuilder::SegmentBuilder(size_t num_columns, size_t segment_rows,
                               size_t block_rows)
    : num_columns_(num_columns),
      segment_rows_(std::max<size_t>(1, segment_rows)),
      block_rows_(std::max<size_t>(1, block_rows)),
      staging_(num_columns) {}

std::unique_ptr<ColumnSegment> SegmentBuilder::Append(
    const std::vector<model::Value>& row) {
  IMPLIANCE_CHECK(row.size() == num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) staging_[c].push_back(row[c]);
  ++staged_rows_;
  return staged_rows_ >= segment_rows_ ? EncodeStaged() : nullptr;
}

std::unique_ptr<ColumnSegment> SegmentBuilder::Flush() {
  return staged_rows_ == 0 ? nullptr : EncodeStaged();
}

std::unique_ptr<ColumnSegment> SegmentBuilder::EncodeStaged() {
  auto segment = std::make_unique<ColumnSegment>();
  segment->row_count = static_cast<uint32_t>(staged_rows_);
  segment->columns.resize(num_columns_);
  for (size_t c = 0; c < num_columns_; ++c) {
    ColumnChunk& chunk = segment->columns[c];
    const std::vector<model::Value>& values = staging_[c];
    EncodingChoice choice = ChooseEncoding(values, 0, values.size());
    chunk.encoding = choice.encoding;
    chunk.dict = std::move(choice.dict);
    for (size_t begin = 0; begin < staged_rows_; begin += block_rows_) {
      const size_t end = std::min(staged_rows_, begin + block_rows_);
      ColumnBlock block;
      for (size_t i = begin; i < end; ++i) block.zone.Note(values[i]);
      EncodeBlock(chunk.encoding, values, begin, end, chunk.dict,
                  &block.payload);
      chunk.zone.Merge(block.zone);
      chunk.blocks.push_back(std::move(block));
    }
  }
  for (std::vector<model::Value>& column : staging_) column.clear();
  staged_rows_ = 0;
  return segment;
}

// ----------------------------------------------------------------- scanner

ColumnarBatchSource::ColumnarBatchSource(
    exec::Schema schema,
    const std::vector<std::unique_ptr<ColumnSegment>>* segments,
    const std::vector<std::vector<model::Value>>* tail, size_t tail_rows,
    std::vector<int> columns, std::vector<exec::Predicate> hints)
    : schema_(std::move(schema)),
      segments_(segments),
      tail_(tail),
      tail_rows_(tail_rows),
      columns_(std::move(columns)),
      hints_(std::move(hints)),
      decoded_(columns_.size()) {}

uint64_t ColumnarBatchSource::EstimatedRows() const {
  uint64_t rows = tail_rows_;
  for (const auto& segment : *segments_) rows += segment->row_count;
  return rows;
}

bool ColumnarBatchSource::SegmentRefuted(const ColumnSegment& segment) const {
  for (const exec::Predicate& hint : hints_) {
    if (hint.column < 0 ||
        static_cast<size_t>(hint.column) >= segment.columns.size()) {
      continue;
    }
    if (ZoneMapRefutes(segment.columns[hint.column].zone, hint.op,
                       hint.literal)) {
      return true;
    }
  }
  return false;
}

bool ColumnarBatchSource::BlockRefuted(const ColumnSegment& segment,
                                       size_t block) const {
  for (const exec::Predicate& hint : hints_) {
    if (hint.column < 0 ||
        static_cast<size_t>(hint.column) >= segment.columns.size()) {
      continue;
    }
    if (ZoneMapRefutes(segment.columns[hint.column].blocks[block].zone,
                       hint.op, hint.literal)) {
      return true;
    }
  }
  return false;
}

bool ColumnarBatchSource::DecodeNextBlock() {
  while (segment_ < segments_->size()) {
    const ColumnSegment& segment = *(*segments_)[segment_];
    if (block_ == 0) {
      ++stats_.segments_visited;
      if (SegmentRefuted(segment)) {
        ++stats_.segments_skipped;
        stats_.blocks_skipped += segment.num_blocks();
        ++segment_;
        continue;
      }
    }
    while (block_ < segment.num_blocks()) {
      const size_t b = block_++;
      if (BlockRefuted(segment, b)) {
        ++stats_.blocks_skipped;
        continue;
      }
      for (auto& column : decoded_) column.clear();
      for (size_t i = 0; i < columns_.size(); ++i) {
        const ColumnChunk& chunk = segment.columns[columns_[i]];
        IMPLIANCE_CHECK(chunk.DecodeBlockInto(b, &decoded_[i]))
            << "malformed column block";
      }
      ++stats_.blocks_decoded;
      decoded_rows_ = segment.BlockRows(b);
      decoded_cursor_ = 0;
      return true;
    }
    ++segment_;
    block_ = 0;
  }
  return false;
}

bool ColumnarBatchSource::NextBatch(exec::RowBatch* batch) {
  batch->clear();
  // Decoded segment rows first.
  while (!in_tail_) {
    const size_t available =
        decoded_cursor_ >= decoded_rows_ ? 0 : decoded_rows_ - decoded_cursor_;
    if (available == 0) {
      if (!DecodeNextBlock()) {
        in_tail_ = true;
        break;
      }
      continue;
    }
    const size_t take = std::min(available, exec::kDefaultBatchRows);
    batch->reserve(take);
    for (size_t r = 0; r < take; ++r, ++decoded_cursor_) {
      model::Row& out = batch->AppendRow();
      out.reserve(columns_.size());
      for (size_t c = 0; c < columns_.size(); ++c) {
        out.push_back(std::move(decoded_[c][decoded_cursor_]));
      }
    }
    stats_.rows_decoded += batch->size();
    return true;
  }
  // Then the builder's staged tail (row-major emit from column-major
  // staging; no zone maps, so hints cannot skip here).
  if (tail_ == nullptr || tail_cursor_ >= tail_rows_) return false;
  const size_t end =
      std::min(tail_rows_, tail_cursor_ + exec::kDefaultBatchRows);
  batch->reserve(end - tail_cursor_);
  for (; tail_cursor_ < end; ++tail_cursor_) {
    model::Row& out = batch->AppendRow();
    out.reserve(columns_.size());
    for (int column : columns_) {
      out.push_back((*tail_)[column][tail_cursor_]);
    }
  }
  stats_.rows_decoded += batch->size();
  return true;
}

}  // namespace impliance::storage::columnar
