#ifndef IMPLIANCE_STORAGE_COLUMNAR_ENCODING_H_
#define IMPLIANCE_STORAGE_COLUMNAR_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/value.h"

namespace impliance::storage::columnar {

// Lightweight per-block codecs for one column's values. One encoding is
// chosen per column per segment (from the data, see ChooseEncoding); every
// block of that column in the segment uses it, so the scanner's inner
// decode loop is branch-free on the encoding.
//
// Block payload layout (appended to a std::string):
//   varint32 row_count
//   varint32 null_count
//   [null bitmap: (row_count+7)/8 bytes, bit i set = row i null]  (only
//    present when 0 < null_count < row_count; all-null blocks carry no
//    payload beyond the counts, null-free blocks skip the bitmap)
//   encoding-specific payload over the non-null values, in row order:
//     kPlain : Value::Encode per value
//     kRle   : runs of (varint32 run_length, Value::Encode value)
//     kDict  : varint32 code per value into the segment's per-column
//              dictionary (built by the segment builder, sorted, shared by
//              every block of the column)
//     kDelta : 1 type byte (kInt or kTimestamp), then zigzag varint64
//              first value followed by zigzag varint64 deltas
enum class Encoding : uint8_t {
  kPlain = 0,
  kRle = 1,
  kDict = 2,
  kDelta = 3,
};

const char* EncodingName(Encoding encoding);

// Appends the block payload for values[begin, end) of one column.
// kDict requires `dict` (sorted, binary-searchable) to contain every
// non-null value in the range; other encodings ignore it.
void EncodeBlock(Encoding encoding, const std::vector<model::Value>& values,
                 size_t begin, size_t end,
                 const std::vector<model::Value>& dict, std::string* out);

// Decodes one block payload from the front of *input, appending row_count
// values (nulls included, in row order) to *out. Returns false on
// malformed bytes — impossible for blocks this process encoded.
bool DecodeBlock(Encoding encoding, std::string_view* input,
                 const std::vector<model::Value>& dict,
                 std::vector<model::Value>* out);

// Statistics one pass over a column's segment slice gathers to pick its
// encoding (and to build the dictionary when kDict wins).
struct EncodingChoice {
  Encoding encoding = Encoding::kPlain;
  std::vector<model::Value> dict;  // populated iff encoding == kDict
};

// Encoding-choice rules, in order:
//   1. every non-null value int-typed (kInt or kTimestamp, uniformly) and
//      not run-dominated -> kDelta (delta+varint, tightest for monotone or
//      clustered ints);
//   2. average run length >= kRleMinRun -> kRle (sorted/low-churn columns);
//   3. string column with <= kDictMaxEntries distinct values -> kDict;
//   4. otherwise kPlain.
EncodingChoice ChooseEncoding(const std::vector<model::Value>& values,
                              size_t begin, size_t end);

inline constexpr size_t kRleMinRun = 4;
inline constexpr size_t kDictMaxEntries = 4096;

}  // namespace impliance::storage::columnar

#endif  // IMPLIANCE_STORAGE_COLUMNAR_ENCODING_H_
