#ifndef IMPLIANCE_STORAGE_COLUMNAR_ZONE_MAP_H_
#define IMPLIANCE_STORAGE_COLUMNAR_ZONE_MAP_H_

#include <cstdint>

#include "exec/predicate.h"
#include "model/value.h"

namespace impliance::storage::columnar {

// Min/max/null summary of one column over one block (or one whole segment
// chunk). min/max are over NON-NULL values under Value::Compare's total
// order — the same order Predicate::Eval compares with at runtime, so a
// refutation here can never disagree with row-wise evaluation, even on
// mixed-type columns (the order ranks by type first).
struct ZoneMap {
  uint32_t row_count = 0;
  uint32_t null_count = 0;
  model::Value min;  // Null when the zone holds no non-null value
  model::Value max;

  bool all_null() const { return null_count == row_count; }

  void Note(const model::Value& value) {
    ++row_count;
    if (value.is_null()) {
      ++null_count;
      return;
    }
    if (min.is_null() || value.Compare(min) < 0) min = value;
    if (max.is_null() || value.Compare(max) > 0) max = value;
  }

  // Folds another zone's summary in (segment-level maps accumulate their
  // blocks').
  void Merge(const ZoneMap& other) {
    row_count += other.row_count;
    null_count += other.null_count;
    if (!other.min.is_null() &&
        (min.is_null() || other.min.Compare(min) < 0)) {
      min = other.min;
    }
    if (!other.max.is_null() &&
        (max.is_null() || other.max.Compare(max) > 0)) {
      max = other.max;
    }
  }
};

// True when NO row in the zone can satisfy `<column> <op> <literal>` — the
// caller may skip the zone without decoding it. Must stay exactly as
// conservative as Predicate::Eval: a row that Eval would accept is never
// refuted; returning false merely decodes a block that filtering then
// empties.
inline bool ZoneMapRefutes(const ZoneMap& zone, exec::CompareOp op,
                           const model::Value& literal) {
  if (zone.row_count == 0) return true;  // empty zone has nothing to match
  if (op == exec::CompareOp::kContains) {
    // CONTAINS never matches a null row; beyond that, substring matches
    // cannot be refuted from value bounds.
    return zone.all_null();
  }
  // Eval returns false for every row when the literal is null, and for
  // every null row regardless of op.
  if (literal.is_null()) return true;
  if (zone.all_null()) return true;
  const int min_cmp = zone.min.Compare(literal);
  const int max_cmp = zone.max.Compare(literal);
  switch (op) {
    case exec::CompareOp::kEq:
      return min_cmp > 0 || max_cmp < 0;
    case exec::CompareOp::kNe:
      // Refutable only when every non-null value IS the literal (nulls
      // fail != too, so they cannot rescue the zone).
      return min_cmp == 0 && max_cmp == 0;
    case exec::CompareOp::kLt:
      return min_cmp >= 0;
    case exec::CompareOp::kLe:
      return min_cmp > 0;
    case exec::CompareOp::kGt:
      return max_cmp <= 0;
    case exec::CompareOp::kGe:
      return max_cmp < 0;
    case exec::CompareOp::kContains:
      return false;  // handled above
  }
  return false;
}

}  // namespace impliance::storage::columnar

#endif  // IMPLIANCE_STORAGE_COLUMNAR_ZONE_MAP_H_
