#ifndef IMPLIANCE_STORAGE_COLUMNAR_COLUMN_SEGMENT_H_
#define IMPLIANCE_STORAGE_COLUMNAR_COLUMN_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/batch_source.h"
#include "exec/predicate.h"
#include "storage/columnar/encoding.h"
#include "storage/columnar/zone_map.h"

namespace impliance::storage::columnar {

// ------------------------------------------------------------------ format
//
// A ColumnSegment stripes ~64k table rows column-wise. Each column becomes
// one ColumnChunk: a single encoding (chosen from the column's data in this
// segment), an optional dictionary, and a run of blocks of kBlockRows rows.
// Block boundaries are ALIGNED across the segment's columns — block b of
// every chunk covers the same row range — so a zone-map refutation on any
// predicate column skips that row range in every requested column.
//
// Each block carries its encoded payload bytes plus a ZoneMap
// (min/max/null-count over the block); the chunk carries the merged
// segment-level ZoneMap so a whole segment can be refuted without touching
// blocks. Everything lives in memory; payloads are plain byte strings, so
// persisting a segment later is a serialization exercise, not a redesign.

inline constexpr size_t kSegmentRows = 64 * 1024;
inline constexpr size_t kBlockRows = 2 * 1024;

struct ColumnBlock {
  std::string payload;  // see encoding.h for the layout
  ZoneMap zone;
};

struct ColumnChunk {
  Encoding encoding = Encoding::kPlain;
  std::vector<model::Value> dict;  // sorted; only for Encoding::kDict
  std::vector<ColumnBlock> blocks;
  ZoneMap zone;  // merged over the blocks

  // Decodes block `b` (nulls included, row order) appending to *out.
  // Returns false on malformed bytes (cannot happen for blocks this
  // process built; callers CHECK).
  bool DecodeBlockInto(size_t b, std::vector<model::Value>* out) const;
};

struct ColumnSegment {
  uint32_t row_count = 0;
  std::vector<ColumnChunk> columns;  // parallel to the table schema

  size_t num_blocks() const {
    return columns.empty() ? 0 : columns[0].blocks.size();
  }
  // Rows in block `b` (the last block may be short).
  uint32_t BlockRows(size_t b) const {
    return columns.empty() ? 0 : columns[0].blocks[b].zone.row_count;
  }
  // Encoded payload bytes across all chunks (for compression accounting).
  size_t EncodedBytes() const;
};

// ----------------------------------------------------------------- builder

// Accumulates rows and cuts ColumnSegments of `segment_rows` rows. The
// tail shorter than one segment stays buffered; the owner scans it
// row-wise until enough rows arrive (Flush forces a short segment out).
class SegmentBuilder {
 public:
  SegmentBuilder(size_t num_columns, size_t segment_rows = kSegmentRows,
                 size_t block_rows = kBlockRows);

  // Appends one row (copying its values into the column staging buffers).
  // Returns a finished segment when the append filled one, else nullptr.
  std::unique_ptr<ColumnSegment> Append(const std::vector<model::Value>& row);

  // Encodes whatever is staged into a (possibly short) segment; nullptr
  // when nothing is staged.
  std::unique_ptr<ColumnSegment> Flush();

  size_t staged_rows() const { return staged_rows_; }
  // Read access to the staged tail, column-major (for tail scans).
  const std::vector<std::vector<model::Value>>& staged() const {
    return staging_;
  }

 private:
  std::unique_ptr<ColumnSegment> EncodeStaged();

  const size_t num_columns_;
  const size_t segment_rows_;
  const size_t block_rows_;
  std::vector<std::vector<model::Value>> staging_;  // [column][row]
  size_t staged_rows_ = 0;
};

// ----------------------------------------------------------------- scanner

// exec::BatchSource over a list of segments plus an optional row-major
// tail. Hints whose zone maps refute a block (or a whole segment) skip it;
// surviving blocks decode only the requested columns. Rows stream in table
// order; callers re-apply their predicates (hints only shrink the stream).
class ColumnarBatchSource : public exec::BatchSource {
 public:
  // `columns` are full-schema indices in output order; `hints` reference
  // full-schema indices too. `tail` (may be null) is the builder's staged
  // column-major data appended after the segments. The segments vector,
  // tail, and schema must outlive the source.
  ColumnarBatchSource(
      exec::Schema schema,
      const std::vector<std::unique_ptr<ColumnSegment>>* segments,
      const std::vector<std::vector<model::Value>>* tail, size_t tail_rows,
      std::vector<int> columns, std::vector<exec::Predicate> hints);

  const exec::Schema& schema() const override { return schema_; }
  bool NextBatch(exec::RowBatch* batch) override;
  uint64_t EstimatedRows() const override;
  exec::ScanStats stats() const override { return stats_; }

 private:
  // Advances to the next undecoded, unrefuted block and decodes the
  // requested columns into decoded_; false when the stream is exhausted.
  bool DecodeNextBlock();
  bool SegmentRefuted(const ColumnSegment& segment) const;
  bool BlockRefuted(const ColumnSegment& segment, size_t block) const;

  exec::Schema schema_;
  const std::vector<std::unique_ptr<ColumnSegment>>* segments_;
  const std::vector<std::vector<model::Value>>* tail_;
  size_t tail_rows_;
  std::vector<int> columns_;
  std::vector<exec::Predicate> hints_;

  size_t segment_ = 0;  // == segments_->size() means "in the tail"
  size_t block_ = 0;
  bool in_tail_ = false;
  size_t tail_cursor_ = 0;

  // Current decoded block, column-major, parallel to columns_. A scan of
  // zero columns (SELECT COUNT(*)) still yields the right row count, so
  // the block's row count is tracked separately from the decoded vectors.
  std::vector<std::vector<model::Value>> decoded_;
  size_t decoded_rows_ = 0;
  size_t decoded_cursor_ = 0;

  exec::ScanStats stats_;
};

}  // namespace impliance::storage::columnar

#endif  // IMPLIANCE_STORAGE_COLUMNAR_COLUMN_SEGMENT_H_
