#include "storage/columnar/encoding.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "common/logging.h"

namespace impliance::storage::columnar {

namespace {

bool IsIntFamily(const model::Value& value, model::ValueType* type) {
  const model::ValueType t = value.type();
  if (t != model::ValueType::kInt && t != model::ValueType::kTimestamp) {
    return false;
  }
  if (*type == model::ValueType::kNull) *type = t;
  return t == *type;
}

int64_t IntPayload(const model::Value& value) {
  return value.type() == model::ValueType::kTimestamp ? value.timestamp_value()
                                                      : value.int_value();
}

model::Value MakeIntFamily(model::ValueType type, int64_t payload) {
  return type == model::ValueType::kTimestamp ? model::Value::Timestamp(payload)
                                              : model::Value::Int(payload);
}

void AppendNullBitmap(const std::vector<model::Value>& values, size_t begin,
                      size_t end, std::string* out) {
  const size_t rows = end - begin;
  std::string bitmap((rows + 7) / 8, '\0');
  for (size_t i = 0; i < rows; ++i) {
    if (values[begin + i].is_null()) {
      bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  out->append(bitmap);
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDict:
      return "dict";
    case Encoding::kDelta:
      return "delta";
  }
  return "?";
}

void EncodeBlock(Encoding encoding, const std::vector<model::Value>& values,
                 size_t begin, size_t end,
                 const std::vector<model::Value>& dict, std::string* out) {
  IMPLIANCE_CHECK(end >= begin && end <= values.size());
  const uint32_t rows = static_cast<uint32_t>(end - begin);
  uint32_t nulls = 0;
  for (size_t i = begin; i < end; ++i) {
    if (values[i].is_null()) ++nulls;
  }
  PutVarint32(out, rows);
  PutVarint32(out, nulls);
  if (nulls > 0 && nulls < rows) AppendNullBitmap(values, begin, end, out);
  if (nulls == rows) return;  // all-null (or empty): counts say everything

  switch (encoding) {
    case Encoding::kPlain:
      for (size_t i = begin; i < end; ++i) {
        if (!values[i].is_null()) values[i].Encode(out);
      }
      break;
    case Encoding::kRle: {
      const model::Value* run_value = nullptr;
      uint32_t run_length = 0;
      for (size_t i = begin; i < end; ++i) {
        if (values[i].is_null()) continue;
        if (run_value != nullptr && values[i].Compare(*run_value) == 0) {
          ++run_length;
          continue;
        }
        if (run_value != nullptr) {
          PutVarint32(out, run_length);
          run_value->Encode(out);
        }
        run_value = &values[i];
        run_length = 1;
      }
      if (run_value != nullptr) {
        PutVarint32(out, run_length);
        run_value->Encode(out);
      }
      break;
    }
    case Encoding::kDict:
      for (size_t i = begin; i < end; ++i) {
        if (values[i].is_null()) continue;
        const auto it =
            std::lower_bound(dict.begin(), dict.end(), values[i],
                             [](const model::Value& a, const model::Value& b) {
                               return a.Compare(b) < 0;
                             });
        IMPLIANCE_CHECK(it != dict.end() && it->Compare(values[i]) == 0)
            << "dictionary missing a value";
        PutVarint32(out, static_cast<uint32_t>(it - dict.begin()));
      }
      break;
    case Encoding::kDelta: {
      model::ValueType type = model::ValueType::kNull;
      bool first = true;
      int64_t previous = 0;
      std::string payload;
      for (size_t i = begin; i < end; ++i) {
        if (values[i].is_null()) continue;
        IMPLIANCE_CHECK(IsIntFamily(values[i], &type))
            << "delta encoding over a non-int column";
        const int64_t v = IntPayload(values[i]);
        PutVarint64(&payload, ZigZagEncode(first ? v : v - previous));
        previous = v;
        first = false;
      }
      out->push_back(static_cast<char>(type));
      out->append(payload);
      break;
    }
  }
}

bool DecodeBlock(Encoding encoding, std::string_view* input,
                 const std::vector<model::Value>& dict,
                 std::vector<model::Value>* out) {
  uint32_t rows = 0;
  uint32_t nulls = 0;
  if (!GetVarint32(input, &rows) || !GetVarint32(input, &nulls)) return false;
  if (nulls > rows) return false;

  // Null positions.
  std::vector<bool> is_null;
  if (nulls == rows) {
    for (uint32_t i = 0; i < rows; ++i) out->push_back(model::Value::Null());
    return true;
  }
  if (nulls > 0) {
    const size_t bytes = (rows + 7) / 8;
    if (input->size() < bytes) return false;
    is_null.resize(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      is_null[i] =
          (static_cast<unsigned char>((*input)[i / 8]) >> (i % 8)) & 1;
    }
    input->remove_prefix(bytes);
  }

  const uint32_t non_null = rows - nulls;
  std::vector<model::Value> decoded;
  decoded.reserve(non_null);
  switch (encoding) {
    case Encoding::kPlain:
      for (uint32_t i = 0; i < non_null; ++i) {
        model::Value value;
        if (!model::Value::Decode(input, &value)) return false;
        decoded.push_back(std::move(value));
      }
      break;
    case Encoding::kRle: {
      while (decoded.size() < non_null) {
        uint32_t run_length = 0;
        model::Value value;
        if (!GetVarint32(input, &run_length) || run_length == 0 ||
            !model::Value::Decode(input, &value)) {
          return false;
        }
        if (decoded.size() + run_length > non_null) return false;
        for (uint32_t i = 0; i < run_length; ++i) decoded.push_back(value);
      }
      break;
    }
    case Encoding::kDict:
      for (uint32_t i = 0; i < non_null; ++i) {
        uint32_t code = 0;
        if (!GetVarint32(input, &code) || code >= dict.size()) return false;
        decoded.push_back(dict[code]);
      }
      break;
    case Encoding::kDelta: {
      if (input->empty()) return false;
      const auto type = static_cast<model::ValueType>((*input)[0]);
      input->remove_prefix(1);
      if (type != model::ValueType::kInt &&
          type != model::ValueType::kTimestamp && non_null > 0) {
        return false;
      }
      int64_t previous = 0;
      for (uint32_t i = 0; i < non_null; ++i) {
        uint64_t encoded = 0;
        if (!GetVarint64(input, &encoded)) return false;
        const int64_t delta = ZigZagDecode(encoded);
        previous = i == 0 ? delta : previous + delta;
        decoded.push_back(MakeIntFamily(type, previous));
      }
      break;
    }
  }

  if (nulls == 0) {
    out->insert(out->end(), std::make_move_iterator(decoded.begin()),
                std::make_move_iterator(decoded.end()));
    return true;
  }
  size_t next = 0;
  for (uint32_t i = 0; i < rows; ++i) {
    if (is_null[i]) {
      out->push_back(model::Value::Null());
    } else {
      out->push_back(std::move(decoded[next++]));
    }
  }
  return next == decoded.size();
}

EncodingChoice ChooseEncoding(const std::vector<model::Value>& values,
                              size_t begin, size_t end) {
  EncodingChoice choice;
  model::ValueType int_type = model::ValueType::kNull;
  bool all_int = true;
  bool all_string = true;
  size_t non_null = 0;
  size_t runs = 0;
  const model::Value* previous = nullptr;
  // Distinct values, capped just past the dictionary limit: the map doubles
  // as the dictionary when kDict wins.
  std::map<model::Value, bool> distinct;
  bool distinct_overflow = false;
  for (size_t i = begin; i < end; ++i) {
    const model::Value& value = values[i];
    if (value.is_null()) continue;
    ++non_null;
    if (!IsIntFamily(value, &int_type)) all_int = false;
    if (!value.is_string()) all_string = false;
    if (previous == nullptr || value.Compare(*previous) != 0) ++runs;
    previous = &value;
    if (!distinct_overflow) {
      distinct.emplace(value, true);
      if (distinct.size() > kDictMaxEntries) {
        distinct_overflow = true;
        distinct.clear();
      }
    }
  }
  if (non_null == 0) return choice;  // kPlain, empty payloads

  const bool run_dominated = non_null >= kRleMinRun * runs;
  if (all_int && !run_dominated) {
    choice.encoding = Encoding::kDelta;
    return choice;
  }
  if (run_dominated) {
    choice.encoding = Encoding::kRle;
    return choice;
  }
  if (all_string && !distinct_overflow) {
    choice.encoding = Encoding::kDict;
    choice.dict.reserve(distinct.size());
    for (const auto& [value, _] : distinct) choice.dict.push_back(value);
    return choice;
  }
  if (all_int) {
    choice.encoding = Encoding::kDelta;
    return choice;
  }
  return choice;
}

}  // namespace impliance::storage::columnar
