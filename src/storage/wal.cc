#include "storage/wal.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/coding.h"
#include "common/hash.h"

namespace impliance::storage {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool sync_each_record) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, sync_each_record));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(std::string_view payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload));
  PutVarint64(&header, payload.size());
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IOError("WAL write failed");
  }
  bytes_written_ += header.size() + payload.size();
  if (sync_each_record_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  return Status::OK();
}

Result<std::vector<std::string>> ReadWalRecords(const std::string& path) {
  std::vector<std::string> records;
  if (!std::filesystem::exists(path)) return records;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot read WAL " + path);
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);

  std::string_view input(contents);
  while (!input.empty()) {
    uint32_t crc = 0;
    uint64_t size = 0;
    std::string_view cursor = input;
    if (!GetFixed32(&cursor, &crc)) break;
    if (!GetVarint64(&cursor, &size)) break;
    if (cursor.size() < size) break;  // torn tail record
    std::string_view payload = cursor.substr(0, size);
    if (Crc32c(payload) != crc) break;  // corrupt record: stop replay
    records.emplace_back(payload);
    input = cursor.substr(size);
  }
  return records;
}

}  // namespace impliance::storage
