#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/coding.h"
#include "common/fault_injector.h"
#include "common/hash.h"

namespace impliance::storage {

namespace {

// Makes the directory entry for `path` durable. Without this, a crash after
// creating the WAL can lose the file itself even though its data blocks
// were synced.
Status SyncParentDir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open WAL directory " + dir.string() + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync of WAL directory failed: " + dir.string());
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   bool sync_each_record) {
  const bool existed = std::filesystem::exists(path);
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  if (!existed) {
    Status dir_status = SyncParentDir(path);
    if (!dir_status.ok()) {
      std::fclose(file);
      return dir_status;
    }
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, sync_each_record));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(std::string_view payload) {
  if (!poisoned_.ok()) return poisoned_;
  std::string header;
  PutFixed32(&header, Crc32c(payload));
  PutVarint64(&header, payload.size());
  if (FaultPoint("wal.append.torn")) {
    // Crash mid-write: only a prefix of the record reaches the file. The
    // reader's size/CRC checks drop the torn tail on recovery.
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fwrite(payload.data(), 1, payload.size() / 2, file_);
    std::fflush(file_);
    poisoned_ = Status::IOError("WAL torn write (fault injected)");
    return poisoned_;
  }
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    poisoned_ = Status::IOError("WAL write failed");
    return poisoned_;
  }
  bytes_written_ += header.size() + payload.size();
  if (sync_each_record_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!poisoned_.ok()) return poisoned_;
  // The fault point doubles as the durability probe: its hit count is the
  // number of real sync attempts, which tests compare against appends.
  if (FaultPoint("wal.sync")) {
    poisoned_ = Status::IOError("WAL fsync failed (fault injected)");
    return poisoned_;
  }
  if (std::fflush(file_) != 0) {
    poisoned_ = Status::IOError("WAL flush failed");
    return poisoned_;
  }
  // fflush only moves data into the kernel; reach the disk.
#if defined(__linux__)
  const int rc = ::fdatasync(fileno(file_));
#else
  const int rc = ::fsync(fileno(file_));
#endif
  if (rc != 0) {
    poisoned_ = Status::IOError(std::string("WAL fsync failed: ") +
                                std::strerror(errno));
    return poisoned_;
  }
  return Status::OK();
}

Result<std::vector<std::string>> ReadWalRecords(const std::string& path) {
  std::vector<std::string> records;
  if (!std::filesystem::exists(path)) return records;

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot read WAL " + path);
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);

  std::string_view input(contents);
  while (!input.empty()) {
    uint32_t crc = 0;
    uint64_t size = 0;
    std::string_view cursor = input;
    if (!GetFixed32(&cursor, &crc)) break;
    if (!GetVarint64(&cursor, &size)) break;
    if (cursor.size() < size) break;  // torn tail record
    std::string_view payload = cursor.substr(0, size);
    if (Crc32c(payload) != crc) break;  // corrupt record: stop replay
    records.emplace_back(payload);
    input = cursor.substr(size);
  }
  return records;
}

}  // namespace impliance::storage
