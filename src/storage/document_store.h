#ifndef IMPLIANCE_STORAGE_DOCUMENT_STORE_H_
#define IMPLIANCE_STORAGE_DOCUMENT_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "model/document.h"
#include "storage/block_cache.h"
#include "storage/segment.h"
#include "storage/wal.h"

namespace impliance::storage {

struct StoreOptions {
  std::string dir;                      // created if missing
  size_t memtable_max_docs = 4096;      // flush threshold
  size_t block_cache_bytes = 32 << 20;  // shared across segments
  bool sync_wal = false;                // fflush per record
  bool compress_segments = false;       // LZ-compress flushed records
};

struct StoreStats {
  size_t num_documents = 0;   // latest versions
  size_t num_versions = 0;    // all versions
  size_t num_segments = 0;
  size_t memtable_docs = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t wal_bytes = 0;
};

// Single-node versioned document store (Sections 3.2 and 4): documents are
// immutable once persisted; logical updates append a new version; nothing is
// ever overwritten in place. Durability comes from a write-ahead log that is
// replayed on open; flushed memtables become immutable segment files with
// per-segment bloom filters, read through a shared LRU block cache.
//
// Thread-safe: a single mutex guards the memtable and segment list; segment
// reads are served concurrently through the readers' own synchronization.
class DocumentStore {
 public:
  static Result<std::unique_ptr<DocumentStore>> Open(StoreOptions options);
  ~DocumentStore();

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;

  // Persists `doc` as a brand-new document; assigns and returns its id
  // (doc.id/doc.version are overwritten with id/1).
  Result<model::DocId> Insert(model::Document doc);

  // Appends a new immutable version of an existing document and returns the
  // new version number. NotFound if `id` was never inserted.
  Result<uint32_t> AddVersion(model::DocId id, model::Document doc);

  // Latest version of `id`.
  Result<model::Document> Get(model::DocId id) const;

  // Specific historical version ("time travel").
  Result<model::Document> GetVersion(model::DocId id, uint32_t version) const;

  // Latest version number of `id`, or NotFound.
  Result<uint32_t> LatestVersion(model::DocId id) const;

  // Invokes `fn` with the latest version of every document, in id order.
  // Stops early if `fn` returns false.
  Status Scan(const std::function<bool(const model::Document&)>& fn) const;

  // All document ids, in order.
  std::vector<model::DocId> AllIds() const;

  // Forces the memtable into a new segment and truncates the WAL.
  Status Flush();

  // Merges every segment (after flushing the memtable) into one new
  // segment. All versions are preserved — compaction reclaims file count
  // and read amplification, never history (Section 4's immutability).
  Status Compact();

  StoreStats GetStats() const;

  // Monotone change counter bumped by every mutation (insert, new version,
  // memtable flush, compaction). The query layer's statistics cache keys
  // its per-table snapshots on this epoch, so optimizer statistics are
  // recollected exactly when the stored data actually changed — they can
  // never silently go stale the way manually ANALYZEd stats do.
  uint64_t change_epoch() const {
    return change_epoch_.load(std::memory_order_acquire);
  }

 private:
  explicit DocumentStore(StoreOptions options);

  Status RecoverSegments();
  Status RecoverWal();
  Status WriteWal(const model::Document& doc);
  Status FlushLocked();
  Result<model::Document> GetLocked(const VersionKey& key) const;
  std::string WalPath() const;
  std::string SegmentPath(uint64_t segment_id) const;

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<WalWriter> wal_;
  std::map<VersionKey, model::Document> memtable_;
  std::vector<std::unique_ptr<SegmentReader>> segments_;  // oldest first
  std::map<model::DocId, uint32_t> latest_version_;
  model::DocId next_id_ = 1;
  uint64_t next_segment_id_ = 1;
  uint64_t wal_bytes_total_ = 0;
  std::atomic<uint64_t> change_epoch_{0};
};

}  // namespace impliance::storage

#endif  // IMPLIANCE_STORAGE_DOCUMENT_STORE_H_
