#include "storage/bloom.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"

namespace impliance::storage {

BloomFilter::BloomFilter(size_t expected_keys) {
  const size_t bits = std::max<size_t>(64, expected_keys * 10);
  bits_.assign((bits + 7) / 8, 0);
}

bool BloomFilter::Deserialize(std::string_view data, BloomFilter* out) {
  uint32_t num_hashes = 0;
  std::string_view bytes;
  if (!GetVarint32(&data, &num_hashes)) return false;
  if (!GetLengthPrefixed(&data, &bytes)) return false;
  if (num_hashes == 0 || num_hashes > 32 || bytes.empty()) return false;
  out->num_hashes_ = static_cast<int>(num_hashes);
  out->bits_.assign(bytes.begin(), bytes.end());
  return true;
}

void BloomFilter::Add(uint64_t key) {
  const size_t nbits = bits_.size() * 8;
  uint64_t h = Mix64(key);
  const uint64_t delta = Mix64(key ^ 0x9E3779B97F4A7C15ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = h % nbits;
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    h += delta;
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  const size_t nbits = bits_.size() * 8;
  uint64_t h = Mix64(key);
  const uint64_t delta = Mix64(key ^ 0x9E3779B97F4A7C15ULL) | 1;
  for (int i = 0; i < num_hashes_; ++i) {
    const size_t bit = h % nbits;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

void BloomFilter::Serialize(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(num_hashes_));
  PutLengthPrefixed(
      dst, std::string_view(reinterpret_cast<const char*>(bits_.data()),
                            bits_.size()));
}

}  // namespace impliance::storage
