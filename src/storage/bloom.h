#ifndef IMPLIANCE_STORAGE_BLOOM_H_
#define IMPLIANCE_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace impliance::storage {

// Standard Bloom filter over 64-bit keys. Each segment carries one so that
// point lookups skip segments that cannot contain the key.
class BloomFilter {
 public:
  // `expected_keys` sizes the filter at ~10 bits/key (~1% false positives).
  explicit BloomFilter(size_t expected_keys);

  // Reconstructs a filter from Serialize() output.
  static bool Deserialize(std::string_view data, BloomFilter* out);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  void Serialize(std::string* dst) const;

  size_t bit_count() const { return bits_.size() * 8; }

 private:
  BloomFilter() = default;

  int num_hashes_ = 6;
  std::vector<uint8_t> bits_;
};

}  // namespace impliance::storage

#endif  // IMPLIANCE_STORAGE_BLOOM_H_
