#include "storage/segment.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/compression.h"
#include "common/fault_injector.h"
#include "common/hash.h"
#include "common/logging.h"

namespace impliance::storage {

namespace {
constexpr uint64_t kSegmentMagic = 0x494D504C53454730ULL;  // "IMPLSEG0"
}  // namespace

SegmentBuilder::SegmentBuilder(std::string path, uint64_t segment_id,
                               size_t expected_docs, bool compress)
    : path_(std::move(path)),
      segment_id_(segment_id),
      compress_(compress),
      bloom_(expected_docs) {}

Status SegmentBuilder::Add(const model::Document& doc) {
  IMPLIANCE_CHECK(!finished_);
  std::string encoded;
  doc.Encode(&encoded);

  // Compress when it pays; tiny or incompressible documents stay raw.
  uint8_t flag = 0;
  if (compress_) {
    std::string packed;
    LzCompress(encoded, &packed);
    if (packed.size() < encoded.size()) {
      flag = 1;
      encoded = std::move(packed);
    }
  }

  IndexEntry entry;
  entry.key = VersionKey{doc.id, doc.version};
  entry.offset = buffer_.size();

  buffer_.push_back(static_cast<char>(flag));
  PutVarint64(&buffer_, encoded.size());
  buffer_.append(encoded);
  PutFixed32(&buffer_, Crc32c(encoded));
  entry.size = buffer_.size() - entry.offset;

  index_.push_back(entry);
  bloom_.Add(entry.key.Packed());
  return Status::OK();
}

Status SegmentBuilder::Finish() {
  IMPLIANCE_CHECK(!finished_);
  finished_ = true;

  const uint64_t index_offset = buffer_.size();
  std::sort(index_.begin(), index_.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              return a.key < b.key;
            });
  PutVarint64(&buffer_, index_.size());
  for (const IndexEntry& entry : index_) {
    PutVarint64(&buffer_, entry.key.id);
    PutVarint32(&buffer_, entry.key.version);
    PutVarint64(&buffer_, entry.offset);
    PutVarint64(&buffer_, entry.size);
  }

  const uint64_t bloom_offset = buffer_.size();
  bloom_.Serialize(&buffer_);

  PutFixed64(&buffer_, index_offset);
  PutFixed64(&buffer_, bloom_offset);
  PutFixed64(&buffer_, kSegmentMagic);

  std::FILE* file = std::fopen(path_.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot create segment " + path_ + ": " +
                           std::strerror(errno));
  }
  if (FaultPoint("segment.finish.torn")) {
    // Crash mid-write: the footer never lands, so SegmentReader::Open
    // rejects the file and recovery falls back to the WAL.
    std::fwrite(buffer_.data(), 1, buffer_.size() / 2, file);
    std::fflush(file);
    std::fclose(file);
    return Status::IOError("segment torn write (fault injected): " + path_);
  }
  const size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), file);
  const bool flushed = std::fflush(file) == 0;
  // A segment is immutable once published; fsync before close so a crash
  // cannot leave a fully-written-looking file with unpersisted blocks.
  const bool synced =
      !FaultPoint("segment.sync") && ::fsync(fileno(file)) == 0;
  std::fclose(file);
  if (written != buffer_.size() || !flushed || !synced) {
    return Status::IOError("segment write failed: " + path_);
  }
  return Status::OK();
}

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path, uint64_t segment_id, BlockCache* cache) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open segment " + path);
  }
  auto reader = std::unique_ptr<SegmentReader>(
      new SegmentReader(file, segment_id, cache));

  if (std::fseek(file, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  const long file_size = std::ftell(file);
  constexpr long kFooterSize = 24;
  if (file_size < kFooterSize) {
    return Status::Corruption("segment too small: " + path);
  }

  char footer_buf[kFooterSize];
  if (std::fseek(file, file_size - kFooterSize, SEEK_SET) != 0 ||
      std::fread(footer_buf, 1, kFooterSize, file) !=
          static_cast<size_t>(kFooterSize)) {
    return Status::IOError("footer read failed: " + path);
  }
  std::string_view footer(footer_buf, kFooterSize);
  uint64_t index_offset = 0, bloom_offset = 0, magic = 0;
  GetFixed64(&footer, &index_offset);
  GetFixed64(&footer, &bloom_offset);
  GetFixed64(&footer, &magic);
  if (magic != kSegmentMagic || index_offset > bloom_offset ||
      bloom_offset > static_cast<uint64_t>(file_size)) {
    return Status::Corruption("bad segment footer: " + path);
  }

  // Load index + bloom in one read.
  const uint64_t meta_size =
      static_cast<uint64_t>(file_size) - kFooterSize - index_offset;
  std::string meta(meta_size, '\0');
  if (std::fseek(file, static_cast<long>(index_offset), SEEK_SET) != 0 ||
      std::fread(meta.data(), 1, meta_size, file) != meta_size) {
    return Status::IOError("index read failed: " + path);
  }
  std::string_view index_view(meta.data(), bloom_offset - index_offset);
  std::string_view bloom_view(meta.data() + (bloom_offset - index_offset),
                              meta_size - (bloom_offset - index_offset));

  uint64_t count = 0;
  if (!GetVarint64(&index_view, &count)) {
    return Status::Corruption("bad segment index: " + path);
  }
  reader->keys_.reserve(count);
  reader->extents_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    VersionKey key;
    Extent extent;
    if (!GetVarint64(&index_view, &key.id) ||
        !GetVarint32(&index_view, &key.version) ||
        !GetVarint64(&index_view, &extent.offset) ||
        !GetVarint64(&index_view, &extent.size)) {
      return Status::Corruption("truncated segment index: " + path);
    }
    reader->keys_.push_back(key);
    reader->extents_.push_back(extent);
  }
  if (!BloomFilter::Deserialize(bloom_view, &reader->bloom_)) {
    return Status::Corruption("bad segment bloom filter: " + path);
  }
  return reader;
}

SegmentReader::~SegmentReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<model::Document> SegmentReader::Get(const VersionKey& key) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || !(*it == key)) {
    return Status::NotFound("key not in segment");
  }
  const Extent& extent = extents_[it - keys_.begin()];

  IMPLIANCE_ASSIGN_OR_RETURN(BlockCache::PayloadHandle record,
                             ReadRecordBytes(extent));

  std::string_view input(*record);
  if (input.empty()) return Status::Corruption("empty segment record");
  const uint8_t flag = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  uint64_t payload_size = 0;
  if (flag > 1 || !GetVarint64(&input, &payload_size) ||
      input.size() < payload_size + 4) {
    return Status::Corruption("bad segment record");
  }
  std::string_view payload = input.substr(0, payload_size);
  std::string_view crc_bytes = input.substr(payload_size);
  uint32_t stored_crc = 0;
  GetFixed32(&crc_bytes, &stored_crc);
  if (Crc32c(payload) != stored_crc) {
    return Status::Corruption("segment record checksum mismatch");
  }
  std::string decompressed;
  std::string_view doc_bytes = payload;
  if (flag == 1) {
    IMPLIANCE_ASSIGN_OR_RETURN(decompressed, LzDecompress(payload));
    doc_bytes = decompressed;
    ++compressed_records_;
  }
  model::Document doc;
  if (!model::Document::Decode(doc_bytes, &doc)) {
    return Status::Corruption("undecodable document in segment");
  }
  return doc;
}

Result<BlockCache::PayloadHandle> SegmentReader::ReadRecordBytes(
    const Extent& extent) {
  if (cache_ != nullptr) {
    if (BlockCache::PayloadHandle cached =
            cache_->Get(segment_id_, extent.offset)) {
      return cached;
    }
  }
  std::string record(extent.size, '\0');
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    if (std::fseek(file_, static_cast<long>(extent.offset), SEEK_SET) != 0 ||
        std::fread(record.data(), 1, extent.size, file_) != extent.size) {
      return Status::IOError("segment record read failed");
    }
  }
  // One allocation serves both the caller and the cache.
  auto handle = std::make_shared<const std::string>(std::move(record));
  if (cache_ != nullptr) {
    cache_->Put(segment_id_, extent.offset, handle);
  }
  return handle;
}

}  // namespace impliance::storage
