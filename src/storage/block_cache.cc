#include "storage/block_cache.h"

#include "common/hash.h"
#include "common/logging.h"

namespace impliance::storage {

BlockCache::BlockCache(size_t capacity_bytes)
    : shard_capacity_(capacity_bytes / kNumShards + 1) {}

uint64_t BlockCache::MakeKey(uint64_t file_id, uint64_t offset) {
  return Mix64(file_id * 0x100000001B3ULL + offset);
}

BlockCache::Shard& BlockCache::ShardFor(uint64_t key) {
  return shards_[key % kNumShards];
}

BlockCache::PayloadHandle BlockCache::Get(uint64_t file_id, uint64_t offset) {
  const uint64_t key = MakeKey(file_id, offset);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->data;
}

void BlockCache::Put(uint64_t file_id, uint64_t offset, std::string data) {
  Put(file_id, offset,
      std::make_shared<const std::string>(std::move(data)));
}

void BlockCache::Put(uint64_t file_id, uint64_t offset, PayloadHandle data) {
  if (data == nullptr) return;
  const uint64_t key = MakeKey(file_id, offset);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->data->size();
    it->second->data = std::move(data);
    shard.bytes += it->second->data->size();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.bytes += data->size();
    shard.lru.push_front(Entry{key, file_id, std::move(data)});
    shard.map[key] = shard.lru.begin();
  }
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.data->size();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
  }
}

void BlockCache::EraseFile(uint64_t file_id) {
  // The mixed key is not invertible, so walk each shard and match on the
  // file id stored in the entry. EraseFile is rare (compaction/close), so
  // O(entries) is acceptable — but it must not evict other files' blocks,
  // which would empty the cache on every compaction.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->file_id != file_id) {
        ++it;
        continue;
      }
      shard.bytes -= it->data->size();
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
    }
  }
}

uint64_t BlockCache::hits() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.hits;
  }
  return total;
}

uint64_t BlockCache::misses() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.misses;
  }
  return total;
}

size_t BlockCache::charged_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.bytes;
  }
  return total;
}

}  // namespace impliance::storage
