// E22: autonomic rebalancing under skewed ingest. Sequential document ids
// with key-range partitioning drive every new document into the lowest
// tablet, so without intervention one node absorbs nearly the whole load.
// Runs the identical workload twice — balancer off (static partitions) and
// balancer on (split hot tablets, migrate off hot nodes, deterministic
// RebalanceOnce every few hundred docs) — and reports:
//
//   spread      max(owned)/mean(owned) across data nodes after ingest
//   ingest      sustained ingest throughput (docs/s)
//   query p99   KeywordSearch latency over a post-ingest query storm
//   splits/moves/docs_moved   what the balancer actually did
//
// Gates (exit nonzero on violation): both configs return the identical
// sorted doc-id set for every probe query, no degraded answers, integrity
// clean after every balancer pass (no duplicate holders, gapless table),
// and the balancer cuts ownership spread by at least 2x.
//
// Emits JSON (--json PATH) for CI archiving. Deterministic for a fixed
// --seed (the seed only varies probe-query order).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "cluster/node.h"
#include "model/document.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using cluster::ShipStats;
using cluster::SimulatedCluster;

namespace {

constexpr int kDocs = 2400;
constexpr int kRebalanceEvery = 200;  // docs between deterministic passes
constexpr int kQueryRounds = 120;
constexpr size_t kDataNodes = 6;

// The probe vocabulary: every doc matches "memo"; each probe term selects
// a deterministic subset so result-set equality is a real comparison.
const char* kProbeTerms[] = {"memo", "alpha", "bravo", "charlie", "delta"};

model::Document Memo(int i) {
  static const char* kTags[] = {"alpha", "bravo", "charlie", "delta"};
  return model::MakeTextDocument(
      "memo", "memo " + std::to_string(i),
      std::string("rebalance memo number ") + std::to_string(i) + " tag " +
          kTags[i % 4]);
}

struct RunResult {
  double spread = 0;
  double ingest_docs_per_sec = 0;
  double query_p50_ms = 0;
  double query_p99_ms = 0;
  size_t splits = 0;
  size_t merges = 0;
  size_t moves = 0;
  size_t docs_moved = 0;
  size_t degraded = 0;
  size_t silent = 0;        // complete-flagged but short answers
  size_t integrity_bad = 0; // balancer passes leaving a broken invariant
  size_t duplicate_holders = 0;
  // Sorted doc-id answer per probe term, for cross-config equality.
  std::vector<std::vector<model::DocId>> answers;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1,
                              static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

RunResult RunWorkload(uint64_t seed, bool balancer_on) {
  RunResult out;
  SimulatedCluster::Options opt;
  opt.num_data_nodes = kDataNodes;
  opt.num_grid_nodes = 2;
  opt.replication = 2;
  opt.key_range_partitioning = true;  // sequential ids = worst-case skew
  if (balancer_on) {
    opt.split_doc_threshold = 64;
    opt.balance_tolerance = 1.2;
    opt.max_moves_per_pass = 8;
  }
  SimulatedCluster cluster(opt);

  size_t ingested = 0;
  const auto ingest_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kDocs; ++i) {
    if (cluster.Ingest(Memo(i)).ok()) ++ingested;
    if (balancer_on && (i + 1) % kRebalanceEvery == 0) {
      const SimulatedCluster::RebalanceReport r = cluster.RebalanceOnce();
      out.splits += r.splits;
      out.merges += r.merges;
      out.moves += r.moves;
      out.docs_moved += r.docs_moved;
      const SimulatedCluster::IntegrityReport integ = cluster.CheckIntegrity();
      if (!integ.ok()) ++out.integrity_bad;
      out.duplicate_holders += integ.duplicate_holders;
    }
  }
  const double ingest_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ingest_start)
          .count();
  out.ingest_docs_per_sec = ingest_secs > 0 ? ingested / ingest_secs : 0;
  out.spread = cluster.OwnershipSpread();

  // Post-ingest query storm: latency distribution plus silent-partial
  // detection ("memo" matches every document).
  std::vector<double> latencies;
  uint64_t rng = seed | 1;
  for (int round = 0; round < kQueryRounds; ++round) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const char* term = kProbeTerms[(rng >> 33) % 5];
    ShipStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    auto hits = cluster.KeywordSearch(term, kDocs * 2, &stats);
    latencies.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (stats.degraded) {
      ++out.degraded;
    } else if (std::strcmp(term, "memo") == 0 && hits.size() < ingested) {
      ++out.silent;
    }
  }
  out.query_p50_ms = Percentile(latencies, 0.50);
  out.query_p99_ms = Percentile(latencies, 0.99);

  // Canonical answers for cross-config equality: which documents answer
  // each probe must not depend on where the balancer put them.
  for (const char* term : kProbeTerms) {
    ShipStats stats;
    auto hits = cluster.KeywordSearch(term, kDocs * 2, &stats);
    std::vector<model::DocId> ids;
    ids.reserve(hits.size());
    for (const auto& h : hits) ids.push_back(h.doc);
    std::sort(ids.begin(), ids.end());
    out.answers.push_back(std::move(ids));
    if (stats.degraded) ++out.degraded;
  }

  const SimulatedCluster::IntegrityReport integ = cluster.CheckIntegrity();
  if (!integ.ok()) ++out.integrity_bad;
  out.duplicate_holders += integ.duplicate_holders;
  return out;
}

void WriteJson(const std::string& path, const RunResult& off,
               const RunResult& on, double reduction, bool identical,
               uint64_t seed, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  auto row = [&](const char* name, const RunResult& r, const char* tail) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"spread\": %.3f, "
                 "\"ingest_docs_per_sec\": %.0f, \"query_p50_ms\": %.3f, "
                 "\"query_p99_ms\": %.3f, \"splits\": %zu, \"merges\": %zu, "
                 "\"moves\": %zu, \"docs_moved\": %zu, \"degraded\": %zu, "
                 "\"silent_partials\": %zu, \"integrity_violations\": %zu, "
                 "\"duplicate_holders\": %zu}%s\n",
                 name, r.spread, r.ingest_docs_per_sec, r.query_p50_ms,
                 r.query_p99_ms, r.splits, r.merges, r.moves, r.docs_moved,
                 r.degraded, r.silent, r.integrity_bad, r.duplicate_holders,
                 tail);
  };
  std::fprintf(f, "{\n  \"bench\": \"rebalance\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"docs\": %d,\n  \"configs\": [\n", kDocs);
  row("balancer_off", off, ",");
  row("balancer_on", on, "");
  std::fprintf(f,
               "  ],\n  \"spread_reduction\": %.3f,\n"
               "  \"identical_results\": %s,\n  \"pass\": %s\n}\n",
               reduction, identical ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t seed = 0xC0FFEEull;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--seed") == 0)
      seed = std::strtoull(argv[i + 1], nullptr, 0);
  }

  bench::Banner("E22", "Autonomic rebalancing under skewed ingest");
  std::printf(
      "  %d sequential-key docs on %zu data nodes (key-range tablets), "
      "replication 2\n  balancer: split>64 docs, tolerance 1.2, pass every "
      "%d docs; seed %llu\n\n",
      kDocs, kDataNodes, kRebalanceEvery,
      static_cast<unsigned long long>(seed));

  const RunResult off = RunWorkload(seed, /*balancer_on=*/false);
  const RunResult on = RunWorkload(seed, /*balancer_on=*/true);

  bench::TablePrinter table({"config", "spread", "ingest/s", "q p50",
                             "q p99", "splits", "moves", "docs_moved",
                             "degraded", "silent"});
  auto add = [&](const char* name, const RunResult& r) {
    table.AddRow({name, Fmt("%.2f", r.spread),
                  Fmt("%.0f", r.ingest_docs_per_sec),
                  Fmt("%.2fms", r.query_p50_ms), Fmt("%.2fms", r.query_p99_ms),
                  FmtInt(r.splits), FmtInt(r.moves), FmtInt(r.docs_moved),
                  FmtInt(r.degraded), FmtInt(r.silent)});
  };
  add("balancer off", off);
  add("balancer on", on);
  table.Print();

  const double reduction = on.spread > 0 ? off.spread / on.spread : 0;
  const bool identical = off.answers == on.answers;
  std::printf("\n  ownership spread reduction: %.2fx (gate: >= 2.0x)\n",
              reduction);
  std::printf("  identical sorted doc-id answers across configs: %s\n",
              identical ? "yes" : "NO");
  std::printf("  silent partials: %zu, integrity violations: %zu, "
              "duplicate holders: %zu (all must be 0)\n",
              off.silent + on.silent, off.integrity_bad + on.integrity_bad,
              off.duplicate_holders + on.duplicate_holders);

  const bool pass = identical && reduction >= 2.0 &&
                    off.silent + on.silent == 0 &&
                    off.degraded + on.degraded == 0 &&
                    off.integrity_bad + on.integrity_bad == 0 &&
                    off.duplicate_holders + on.duplicate_holders == 0;
  if (!json_path.empty())
    WriteJson(json_path, off, on, reduction, identical, seed, pass);
  return pass ? 0 : 1;
}
