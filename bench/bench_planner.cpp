// E20: cost-aware optimizer vs the paper-faithful simple planner.
//
// Two workloads where plan choice, not executor speed, dominates:
//
//   join-reorder: orders (100k) JOIN customers (10k) JOIN regions (8) with
//     a selective predicate on regions. The simple planner drives from the
//     textual first table and streams every order through two hash joins
//     before filtering; the optimizer starts from the one matching region
//     row and probes outward, touching ~1/8th of the data.
//
//   pushdown: an equality on a joined table naming one customer. The
//     simple planner again scans all orders; the optimizer drives from the
//     single customer row and uses the orders.customer_id index.
//
// Every query is executed with BOTH planners and the result sets must be
// identical (modulo row order, which SQL leaves unspecified) — the bench
// exits nonzero on any divergence, so CI catches an optimizer that gets
// fast by being wrong.
//
// A closing demo keeps E2's lesson: a manual-mode statistics cache (the
// RDBMS comparator) plans from whatever ANALYZE last saw, while the
// appliance's auto cache tracks the data version on its own.

#include <algorithm>
#include <cstring>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "query/opt/optimizer.h"
#include "query/opt/stats_cache.h"
#include "query/planner.h"
#include "query/sql_parser.h"
#include "query/table.h"

using namespace impliance;
using bench::Fmt;
using model::Value;
using query::Catalog;
using query::MemTable;
using query::SimplePlanner;
using query::opt::CostAwarePlanner;
using query::opt::TableStatsCache;

namespace {

constexpr size_t kOrders = 100000;
constexpr size_t kCustomers = 10000;
constexpr int kRegions = 8;
constexpr int kRepeats = 3;

std::shared_ptr<MemTable> BuildOrders(Rng* rng, size_t count) {
  auto orders = std::make_shared<MemTable>(
      "orders",
      exec::Schema{{"order_no", "customer_id", "region_id", "total"}});
  for (size_t i = 0; i < count; ++i) {
    orders->AddRow({Value::Int(static_cast<int64_t>(9000 + i)),
                    Value::Int(static_cast<int64_t>(rng->Uniform(kCustomers))),
                    Value::Int(static_cast<int64_t>(rng->Uniform(kRegions))),
                    Value::Double(rng->NextDouble() * 1000)});
  }
  orders->BuildIndex(1);  // customer_id
  orders->BuildIndex(2);  // region_id
  return orders;
}

Catalog BuildCatalog(Rng* rng) {
  Catalog catalog;
  catalog.Register(BuildOrders(rng, kOrders));

  auto customers =
      std::make_shared<MemTable>("customers", exec::Schema{{"id", "name"}});
  for (size_t i = 0; i < kCustomers; ++i) {
    customers->AddRow({Value::Int(static_cast<int64_t>(i)),
                       Value::String("customer_" + std::to_string(i))});
  }
  customers->BuildIndex(0);
  customers->BuildIndex(1);
  catalog.Register(customers);

  auto regions = std::make_shared<MemTable>(
      "regions", exec::Schema{{"id", "region_name"}});
  for (int i = 0; i < kRegions; ++i) {
    regions->AddRow({Value::Int(i),
                     Value::String("region_" + std::to_string(i))});
  }
  regions->BuildIndex(0);
  catalog.Register(regions);
  return catalog;
}

// Rows sorted into a canonical order so unordered results compare equal.
std::vector<std::string> Canonical(const std::vector<exec::Row>& rows) {
  std::vector<std::string> flat;
  flat.reserve(rows.size());
  for (const exec::Row& row : rows) {
    std::string line;
    for (const Value& value : row) line += value.AsString() + "\t";
    flat.push_back(std::move(line));
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

struct WorkloadResult {
  std::string name;
  double simple_ms = 0;
  double optimized_ms = 0;
  size_t rows = 0;
  bool diverged = false;
};

WorkloadResult RunWorkload(const std::string& name,
                           const std::vector<std::string>& queries,
                           const Catalog& catalog, SimplePlanner* simple,
                           CostAwarePlanner* optimized) {
  WorkloadResult result;
  result.name = name;
  Histogram simple_ms, optimized_ms;
  for (const std::string& sql : queries) {
    std::vector<std::string> baseline;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      Stopwatch watch;
      auto a = query::RunSql(sql, catalog, simple);
      simple_ms.Add(watch.ElapsedMillis());
      IMPLIANCE_CHECK(a.ok()) << a.status().ToString();
      watch = Stopwatch();
      auto b = query::RunSql(sql, catalog, optimized);
      optimized_ms.Add(watch.ElapsedMillis());
      IMPLIANCE_CHECK(b.ok()) << b.status().ToString();
      baseline = Canonical(*a);
      result.rows = baseline.size();
      if (baseline != Canonical(*b)) {
        std::fprintf(stderr, "DIVERGENCE on %s\n", sql.c_str());
        result.diverged = true;
      }
    }
  }
  result.simple_ms = simple_ms.Mean();
  result.optimized_ms = optimized_ms.Mean();
  return result;
}

std::string PlanOf(query::Planner* planner, const Catalog& catalog,
                   const std::string& sql) {
  auto stmt = query::ParseSql(sql);
  auto plan = planner->Plan(*stmt, catalog);
  IMPLIANCE_CHECK(plan.ok()) << plan.status().ToString();
  std::string flat = plan->explain;
  for (char& c : flat) {
    if (c == '\n') c = ' ';
  }
  return flat;
}

void StaleStatsDemo() {
  // E2's lesson survives inside the new subsystem: manual-mode statistics
  // describe the table ANALYZE last saw; auto mode tracks the version.
  Rng rng(7);
  auto orders = BuildOrders(&rng, 5000);
  TableStatsCache manual(TableStatsCache::Mode::kManual);
  TableStatsCache automatic;
  manual.Refresh(*orders);  // the one ANALYZE the admin remembered to run
  (void)automatic.Get(*orders);
  // The table grows 20x; nobody re-runs ANALYZE.
  Rng more(8);
  for (size_t i = 0; i < 95000; ++i) {
    orders->AddRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Int(static_cast<int64_t>(more.Uniform(kCustomers))),
         Value::Int(static_cast<int64_t>(more.Uniform(kRegions))),
         Value::Double(more.NextDouble())});
  }
  const auto stale = manual.Get(*orders);
  const auto fresh = automatic.Get(*orders);
  std::printf(
      "\nstale-stats demo (table grew 5k -> 100k rows, no ANALYZE):\n"
      "  manual-mode cache believes row_count=%llu; auto cache sees %llu\n"
      "  (the appliance never exposes the manual knob — Section 2.1)\n",
      static_cast<unsigned long long>(stale->row_count),
      static_cast<unsigned long long>(fresh->row_count));
}

void WriteJson(const std::string& path,
               const std::vector<WorkloadResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"planner\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"simple_ms\": %.3f, "
                 "\"optimized_ms\": %.3f, \"speedup\": %.2f, "
                 "\"rows\": %zu, \"diverged\": %s}%s\n",
                 r.name.c_str(), r.simple_ms, r.optimized_ms,
                 r.simple_ms / std::max(0.001, r.optimized_ms), r.rows,
                 r.diverged ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  bench::Banner("E20", "cost-aware optimizer vs simple planner");
  Rng rng(11);
  Catalog catalog = BuildCatalog(&rng);

  SimplePlanner simple;
  TableStatsCache stats;
  CostAwarePlanner optimized(&stats);

  const std::string reorder_sql =
      "SELECT name, total FROM orders "
      "JOIN customers ON customer_id = customers.id "
      "JOIN regions ON region_id = regions.id "
      "WHERE region_name = 'region_3'";
  const std::string pushdown_sql =
      "SELECT order_no, total FROM orders "
      "JOIN customers ON customer_id = customers.id "
      "WHERE name = 'customer_42'";

  std::printf("\nchosen plans:\n");
  std::printf("  reorder/simple    : %s\n",
              PlanOf(&simple, catalog, reorder_sql).c_str());
  std::printf("  reorder/optimized : %s\n",
              PlanOf(&optimized, catalog, reorder_sql).c_str());
  std::printf("  pushdown/simple   : %s\n",
              PlanOf(&simple, catalog, pushdown_sql).c_str());
  std::printf("  pushdown/optimized: %s\n\n",
              PlanOf(&optimized, catalog, pushdown_sql).c_str());

  std::vector<std::string> reorder_queries;
  for (int region = 0; region < 4; ++region) {
    reorder_queries.push_back(
        "SELECT name, total FROM orders "
        "JOIN customers ON customer_id = customers.id "
        "JOIN regions ON region_id = regions.id "
        "WHERE region_name = 'region_" + std::to_string(region) + "'");
  }
  std::vector<std::string> pushdown_queries;
  for (int customer = 40; customer < 44; ++customer) {
    pushdown_queries.push_back(
        "SELECT order_no, total FROM orders "
        "JOIN customers ON customer_id = customers.id "
        "WHERE name = 'customer_" + std::to_string(customer) + "'");
  }

  std::vector<WorkloadResult> results;
  results.push_back(RunWorkload("join-reorder", reorder_queries, catalog,
                                &simple, &optimized));
  results.push_back(RunWorkload("pushdown", pushdown_queries, catalog,
                                &simple, &optimized));

  bench::TablePrinter table(
      {"workload", "simple_ms", "optimized_ms", "speedup", "rows", "match"});
  bool diverged = false;
  for (const WorkloadResult& r : results) {
    diverged = diverged || r.diverged;
    table.AddRow({r.name, Fmt("%.2f", r.simple_ms),
                  Fmt("%.2f", r.optimized_ms),
                  Fmt("%.2fx", r.simple_ms / std::max(0.001, r.optimized_ms)),
                  bench::FmtInt(r.rows), r.diverged ? "DIVERGED" : "ok"});
  }
  table.Print();

  StaleStatsDemo();

  std::printf(
      "\nExpected shape: identical result sets from both planners on every\n"
      "query (\"match\" column), with the optimizer >= 2x on the reorder\n"
      "workload because it drives the join from the filtered small table\n"
      "instead of the textual first one.\n");

  if (!json_path.empty()) WriteJson(json_path, results);
  return diverged ? 1 : 0;
}
