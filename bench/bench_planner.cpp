// E2 (Section 3.3): the simple planner trades optimal for PREDICTABLE
// performance and needs no statistics.
//
// Setup: orders JOIN customers with an equality predicate on a column whose
// cardinality the optimizer must estimate. The cost-based planner is given
// statistics gathered from an earlier data distribution (region had 1000
// distinct values); the live table has only 4 regions. With fresh stats the
// cost-based plan is fine; with stale stats it picks an indexed nested-loop
// join against a huge probe stream. The simple planner applies the same
// rule (no LIMIT -> hash join) regardless — its latency barely moves.

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "query/planner.h"
#include "query/sql_parser.h"
#include "query/table.h"

using namespace impliance;
using bench::Fmt;
using query::Catalog;
using query::CostBasedPlanner;
using query::MemTable;
using query::SimplePlanner;
using model::Value;

namespace {

constexpr size_t kOrders = 60000;
constexpr size_t kCustomers = 8000;
constexpr int kRegions = 4;  // live distribution: very low cardinality

Catalog BuildCatalog(Rng* rng) {
  auto orders = std::make_shared<MemTable>(
      "orders", exec::Schema{{"order_no", "customer_id", "region", "total"}});
  for (size_t i = 0; i < kOrders; ++i) {
    orders->AddRow({Value::Int(static_cast<int64_t>(9000 + i)),
                    Value::Int(static_cast<int64_t>(rng->Uniform(kCustomers))),
                    Value::String("region_" +
                                  std::to_string(rng->Uniform(kRegions))),
                    Value::Double(rng->NextDouble() * 1000)});
  }
  orders->BuildIndex(2);  // region

  auto customers =
      std::make_shared<MemTable>("customers", exec::Schema{{"id", "name"}});
  for (size_t i = 0; i < kCustomers; ++i) {
    customers->AddRow({Value::Int(static_cast<int64_t>(i)),
                       Value::String("customer_" + std::to_string(i))});
  }
  customers->BuildIndex(0);

  Catalog catalog;
  catalog.Register(orders);
  catalog.Register(customers);
  return catalog;
}

CostBasedPlanner::TableStats FreshStats() {
  CostBasedPlanner::TableStats stats;
  stats.row_count = kOrders;
  stats.distinct_values = {{"order_no", kOrders},
                           {"customer_id", kCustomers},
                           {"region", kRegions},
                           {"total", kOrders}};
  return stats;
}

CostBasedPlanner::TableStats StaleStats() {
  // Gathered when the region column was nearly unique (e.g. store-level
  // codes before a reorganization collapsed them into 4 regions).
  CostBasedPlanner::TableStats stats = FreshStats();
  stats.distinct_values["region"] = 1000;
  return stats;
}

Histogram RunWorkload(query::Planner* planner, const Catalog& catalog) {
  Histogram latencies;
  for (int region = 0; region < kRegions; ++region) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      const std::string sql =
          "SELECT name, total FROM orders JOIN customers "
          "ON customer_id = customers.id WHERE region = 'region_" +
          std::to_string(region) + "'";
      Stopwatch watch;
      auto rows = query::RunSql(sql, catalog, planner);
      IMPLIANCE_CHECK(rows.ok()) << rows.status().ToString();
      latencies.Add(watch.ElapsedMillis());
    }
  }
  return latencies;
}

std::string PlanOf(query::Planner* planner, const Catalog& catalog) {
  auto stmt = query::ParseSql(
      "SELECT name FROM orders JOIN customers ON customer_id = customers.id "
      "WHERE region = 'region_0'");
  auto plan = planner->Plan(*stmt, catalog);
  std::string flat = plan->explain;
  for (char& c : flat) {
    if (c == '\n') c = ' ';
  }
  return flat;
}

}  // namespace

int main() {
  bench::Banner("E2",
                "simple planner: predictable performance without statistics");
  Rng rng(11);
  Catalog catalog = BuildCatalog(&rng);

  SimplePlanner simple;
  CostBasedPlanner cost_fresh;
  cost_fresh.SetStats("orders", FreshStats());
  CostBasedPlanner::TableStats customer_stats;
  customer_stats.row_count = kCustomers;
  customer_stats.distinct_values = {{"id", kCustomers}};
  cost_fresh.SetStats("customers", customer_stats);
  CostBasedPlanner cost_stale;
  cost_stale.SetStats("orders", StaleStats());
  cost_stale.SetStats("customers", customer_stats);

  std::printf("\nchosen plans (join query, region predicate):\n");
  std::printf("  simple            : %s\n", PlanOf(&simple, catalog).c_str());
  std::printf("  cost-based fresh  : %s\n",
              PlanOf(&cost_fresh, catalog).c_str());
  std::printf("  cost-based stale  : %s\n\n",
              PlanOf(&cost_stale, catalog).c_str());

  bench::TablePrinter table({"planner", "stats", "mean_ms", "p95_ms",
                             "max_ms", "max/min"});
  struct Entry {
    const char* name;
    const char* stats;
    query::Planner* planner;
  };
  Entry entries[] = {
      {"simple", "none (by design)", &simple},
      {"cost-based", "fresh", &cost_fresh},
      {"cost-based", "stale", &cost_stale},
  };
  for (const Entry& entry : entries) {
    Histogram latency = RunWorkload(entry.planner, catalog);
    table.AddRow({entry.name, entry.stats, Fmt("%.1f", latency.Mean()),
                  Fmt("%.1f", latency.Percentile(95)),
                  Fmt("%.1f", latency.Max()),
                  Fmt("%.1fx", latency.Max() / std::max(0.001, latency.Min()))});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the simple planner picks ONE plan from its rules\n"
      "and its latency is stable with NO statistics maintained. The\n"
      "cost-based planner's plan — and therefore its latency — swings with\n"
      "the statistics state for the very same query (compare its fresh vs\n"
      "stale rows): performance becomes a function of ANALYZE hygiene,\n"
      "which is exactly the TCO the paper wants to eliminate.\n");
  return 0;
}
