// Availability vs failure rate under seeded fault injection. Sweeps the
// per-submit crash probability ("node.submit.crash") at replication 1 and
// 2, runs a stream of keyword-search + filter-aggregate queries against a
// SimulatedCluster while an operator repair loop (DetectFailures /
// RecoverNode / ReReplicate) runs every few rounds, and reports:
//
//   available   fraction of queries answered complete (not degraded)
//   degraded    fraction explicitly degraded (honest partial answers)
//   silent      complete-flagged answers that were in fact partial — the
//               bug class this PR fixes; must be 0 at every rate
//   failovers   partition tasks re-routed to a surviving replica holder
//
// Emits the same numbers as JSON (--json PATH) so CI can archive them per
// commit. Deterministic for a fixed --seed.

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "cluster/node.h"
#include "common/fault_injector.h"
#include "model/document.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using cluster::ShipStats;
using cluster::SimulatedCluster;
using model::Value;

namespace {

constexpr int kDocs = 120;
constexpr int kRounds = 80;
constexpr int kRepairEvery = 8;

model::Document Order(int i) {
  return model::MakeRecordDocument(
      "order",
      {{"city", Value::String("c" + std::to_string(i % 4))},
       {"total", Value::Double(static_cast<double>(i))},
       {"note", Value::String("order shipment number " + std::to_string(i))}});
}

struct SweepRow {
  double crash_p = 0;
  size_t replication = 0;
  size_t complete = 0;
  size_t degraded = 0;
  size_t silent = 0;  // claimed complete but returned fewer hits
  uint64_t failovers = 0;
  uint64_t crashes = 0;
  double avg_missing = 0;
};

SweepRow RunSweep(uint64_t seed, double crash_p, size_t replication) {
  SweepRow row;
  row.crash_p = crash_p;
  row.replication = replication;

  SimulatedCluster cluster({.num_data_nodes = 6,
                            .num_grid_nodes = 2,
                            .replication = replication});
  size_t ingested = 0;
  for (int i = 0; i < kDocs; ++i) {
    if (cluster.Ingest(Order(i)).ok()) ++ingested;
  }

  SimulatedCluster::AggQuery agg_query;
  agg_query.kind = "order";
  agg_query.group_path = "/doc/city";
  agg_query.agg_path = "/doc/total";

  ScopedFaultInjection fi(seed);
  fi->Arm("node.submit.crash", crash_p);

  uint64_t missing_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    ShipStats stats;
    auto hits = cluster.KeywordSearch("shipment", kDocs * 2, &stats);
    const bool partial = hits.size() < ingested;
    if (stats.degraded) {
      ++row.degraded;
      missing_total += stats.missing_partitions;
    } else if (partial) {
      ++row.silent;  // the lie: complete-flagged but incomplete
    } else {
      ++row.complete;
    }
    row.failovers += stats.failovers;

    auto agg = cluster.FilterAggregate(agg_query, /*pushdown=*/true);
    if (agg.stats.degraded) {
      ++row.degraded;
      missing_total += agg.stats.missing_partitions;
    } else {
      ++row.complete;
    }
    row.failovers += agg.stats.failovers;

    // Operator repair loop: the appliance's self-healing cadence.
    if (round % kRepairEvery == kRepairEvery - 1) {
      cluster.DetectFailures();
      for (const auto& node : cluster.data_nodes()) {
        if (!node->alive()) cluster.RecoverNode(node->id());
      }
      cluster.ReReplicate();
    }
  }
  row.crashes = fi->triggers("node.submit.crash");
  const size_t total_degraded = row.degraded;
  row.avg_missing = total_degraded == 0
                        ? 0.0
                        : static_cast<double>(missing_total) / total_degraded;
  return row;
}

void WriteJson(const std::string& path, const std::vector<SweepRow>& rows,
               uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"faults\",\n  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"docs\": %d,\n  \"rounds\": %d,\n  \"sweep\": [\n",
               kDocs, kRounds);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    const double total = static_cast<double>(r.complete + r.degraded + r.silent);
    std::fprintf(
        f,
        "    {\"crash_p\": %.4f, \"replication\": %zu, "
        "\"availability\": %.4f, \"degraded_frac\": %.4f, "
        "\"silent_partials\": %zu, \"failovers\": %llu, "
        "\"crashes\": %llu, \"avg_missing\": %.2f}%s\n",
        r.crash_p, r.replication,
        total == 0 ? 1.0 : static_cast<double>(r.complete) / total,
        total == 0 ? 0.0 : static_cast<double>(r.degraded) / total,
        r.silent, static_cast<unsigned long long>(r.failovers),
        static_cast<unsigned long long>(r.crashes), r.avg_missing,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t seed = 0xC0FFEEull;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--seed") == 0) seed = std::strtoull(argv[i + 1], nullptr, 0);
  }

  bench::Banner("FAULTS", "Availability vs failure rate (seeded chaos)");
  std::printf("  %d docs, %d query rounds, repair every %d rounds, seed %llu\n\n",
              kDocs, kRounds, kRepairEvery,
              static_cast<unsigned long long>(seed));

  const double kRates[] = {0.0, 0.002, 0.005, 0.01, 0.02, 0.05};
  std::vector<SweepRow> rows;
  bench::TablePrinter table({"crash_p", "repl", "available", "degraded",
                             "silent", "failovers", "crashes", "avg_missing"});
  for (size_t replication : {size_t{1}, size_t{2}}) {
    for (double p : kRates) {
      SweepRow row = RunSweep(seed, p, replication);
      rows.push_back(row);
      const double total =
          static_cast<double>(row.complete + row.degraded + row.silent);
      table.AddRow({Fmt("%.3f", row.crash_p), FmtInt(row.replication),
                    Fmt("%.1f%%", 100.0 * row.complete / total),
                    Fmt("%.1f%%", 100.0 * row.degraded / total),
                    FmtInt(row.silent), FmtInt(row.failovers),
                    FmtInt(row.crashes), Fmt("%.2f", row.avg_missing)});
    }
  }
  table.Print();

  size_t silent_total = 0;
  for (const SweepRow& r : rows) silent_total += r.silent;
  std::printf("\n  silent partial results across the sweep: %zu (must be 0)\n",
              silent_total);

  if (!json_path.empty()) WriteJson(json_path, rows, seed);
  return silent_total == 0 ? 0 : 1;
}
