// E7 (Section 3.3): "given a keyword-search interface that requires only
// the top-k results, indexed nested-loop joins may always be the preferred
// join method."
//
// Left input: a ranked candidate stream (what a keyword query produces).
// The query wants the first k joined rows. The indexed NL join streams —
// it probes only until k rows have been emitted; the hash join must build
// its entire build side before the first row comes out. Sweeping k exposes
// the crossover.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "exec/operators.h"
#include "query/table.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using exec::Row;
using model::Value;

namespace {

constexpr size_t kCandidates = 50000;  // ranked left stream
constexpr size_t kDimension = 200000;  // customers (right side)

std::vector<Row> MakeCandidates(Rng* rng) {
  std::vector<Row> rows;
  rows.reserve(kCandidates);
  for (size_t i = 0; i < kCandidates; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),  // rank
                    Value::Int(static_cast<int64_t>(
                        rng->Uniform(kDimension)))});      // customer_id
  }
  return rows;
}

}  // namespace

int main() {
  bench::Banner("E7", "top-k: indexed NL join vs hash join crossover");

  Rng rng(21);
  std::vector<Row> candidates = MakeCandidates(&rng);

  query::MemTable customers("customers", exec::Schema{{"id", "name"}});
  for (size_t i = 0; i < kDimension; ++i) {
    customers.AddRow({Value::Int(static_cast<int64_t>(i)),
                      Value::String("customer_" + std::to_string(i))});
  }
  customers.BuildIndex(0);

  const exec::Schema left_schema{{"rank", "customer_id"}};

  bench::TablePrinter table(
      {"k", "inlj_ms", "inlj_probes", "hash_ms", "hash_build_rows", "winner"});
  for (size_t k : {1u, 10u, 100u, 1000u, 10000u, 50000u}) {
    // Indexed NL join under a limit: stops after k output rows.
    double inlj_ms;
    uint64_t probes;
    {
      auto left =
          std::make_unique<exec::RowSourceOp>(left_schema, candidates);
      auto join = std::make_unique<exec::IndexedNLJoinOp>(
          std::move(left), 1,
          [&customers](const Value& key) {
            return customers.IndexLookup(0, key);
          },
          customers.schema());
      exec::IndexedNLJoinOp* join_ptr = join.get();
      exec::LimitOp limit(std::move(join), k);
      Stopwatch watch;
      std::vector<Row> rows = exec::Execute(&limit);
      inlj_ms = watch.ElapsedMillis();
      probes = join_ptr->index_probes();
      IMPLIANCE_CHECK(rows.size() <= k);
    }

    // Hash join: builds all of `customers` before emitting anything.
    double hash_ms;
    size_t build_rows;
    {
      auto left =
          std::make_unique<exec::RowSourceOp>(left_schema, candidates);
      auto right = std::make_unique<exec::RowSourceOp>(customers.schema(),
                                                       customers.ScanAll());
      auto join = std::make_unique<exec::HashJoinOp>(std::move(left),
                                                     std::move(right), 1, 0);
      exec::HashJoinOp* join_ptr = join.get();
      exec::LimitOp limit(std::move(join), k);
      Stopwatch watch;
      std::vector<Row> rows = exec::Execute(&limit);
      hash_ms = watch.ElapsedMillis();
      build_rows = join_ptr->build_rows();
      IMPLIANCE_CHECK(rows.size() <= k);
    }

    table.AddRow({FmtInt(k), Fmt("%.2f", inlj_ms), FmtInt(probes),
                  Fmt("%.2f", hash_ms), FmtInt(build_rows),
                  inlj_ms < hash_ms ? "INLJ" : "hash"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: for small k the indexed NL join wins by orders of\n"
      "magnitude (it probes ~k times; the hash join always builds %zu\n"
      "rows first). The crossover sits near k where probe cost equals the\n"
      "build — for a top-k retrieval interface, INLJ-always is a sound\n"
      "rule, which is why the simple planner can skip join optimization.\n",
      kDimension);
  return 0;
}
