// E9 (Section 4): "Impliance does not update data in-place. Instead,
// changes are implemented as the addition of a new version."
//
// The versioned DocumentStore is compared against an update-in-place
// baseline implementing the same durability discipline (WAL + replay) but
// keeping only the latest copy. Measured: update throughput, storage
// consumed, and what only versioning can do — audit-grade historical reads.

#include <filesystem>
#include <map>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "model/document.h"
#include "storage/document_store.h"
#include "storage/wal.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using model::Document;
using model::Value;

namespace {

namespace fs = std::filesystem;

// Honest update-in-place comparator: WAL for durability, one in-memory
// copy per id. No history; a checkpoint rewrites everything (that is what
// "in place" costs on immutable media anyway, but we charge it nothing
// here — the comparison is conservative in the baseline's favor).
class InPlaceStore {
 public:
  explicit InPlaceStore(const std::string& dir) : dir_(dir) {
    fs::create_directories(dir);
    auto wal = storage::WalWriter::Open(dir + "/wal.log", false);
    IMPLIANCE_CHECK(wal.ok());
    wal_ = std::move(wal).value();
  }

  model::DocId Insert(Document doc) {
    doc.id = next_id_++;
    Log(doc);
    docs_[doc.id] = std::move(doc);
    return docs_.rbegin()->first;
  }

  void Update(model::DocId id, Document doc) {
    doc.id = id;
    Log(doc);
    docs_[id] = std::move(doc);  // old value destroyed forever
  }

  const Document& Get(model::DocId id) const { return docs_.at(id); }
  uint64_t wal_bytes() const { return wal_->bytes_written(); }

 private:
  void Log(const Document& doc) {
    std::string encoded;
    doc.Encode(&encoded);
    IMPLIANCE_CHECK_OK(wal_->Append(encoded));
  }

  std::string dir_;
  std::unique_ptr<storage::WalWriter> wal_;
  std::map<model::DocId, Document> docs_;
  model::DocId next_id_ = 1;
};

Document MakeDoc(Rng* rng, int64_t revision) {
  return model::MakeRecordDocument(
      "contract", {{"revision", Value::Int(revision)},
                   {"body", Value::String(rng->Word(200))}});
}

}  // namespace

int main() {
  bench::Banner("E9", "versioned (no in-place update) vs update-in-place");

  constexpr size_t kDocs = 500;
  constexpr int kUpdatesPerDoc = 20;
  Rng rng(41);

  const std::string versioned_dir = "/tmp/impliance_bench_versioned";
  const std::string inplace_dir = "/tmp/impliance_bench_inplace";
  fs::remove_all(versioned_dir);
  fs::remove_all(inplace_dir);

  bench::TablePrinter table({"store", "updates_per_s", "disk_bytes",
                             "history_reads", "read_v1_ms"});

  // ------------------------------------------------------------ versioned
  {
    auto opened = storage::DocumentStore::Open({.dir = versioned_dir});
    IMPLIANCE_CHECK(opened.ok());
    auto store = std::move(opened).value();
    std::vector<model::DocId> ids;
    for (size_t i = 0; i < kDocs; ++i) {
      ids.push_back(*store->Insert(MakeDoc(&rng, 1)));
    }
    Stopwatch watch;
    for (int rev = 2; rev <= kUpdatesPerDoc + 1; ++rev) {
      for (model::DocId id : ids) {
        IMPLIANCE_CHECK(store->AddVersion(id, MakeDoc(&rng, rev)).ok());
      }
    }
    const double updates_per_s =
        kDocs * kUpdatesPerDoc / watch.ElapsedSeconds();
    IMPLIANCE_CHECK_OK(store->Flush());

    uint64_t disk = 0;
    for (const auto& entry : fs::directory_iterator(versioned_dir)) {
      disk += fs::file_size(entry);
    }
    // Historical reads: every version of every document, still there.
    Stopwatch history_watch;
    size_t history_reads = 0;
    for (model::DocId id : ids) {
      auto v1 = store->GetVersion(id, 1);
      IMPLIANCE_CHECK(v1.ok());
      IMPLIANCE_CHECK(
          model::ResolvePath(v1->root, "/doc/revision")->int_value() == 1);
      ++history_reads;
    }
    const double v1_ms = history_watch.ElapsedMillis() / history_reads;
    table.AddRow({"versioned", Fmt("%.0f", updates_per_s), FmtInt(disk),
                  FmtInt(history_reads * (kUpdatesPerDoc + 1)),
                  Fmt("%.3f", v1_ms)});
  }

  // -------------------------------------------------------------- in-place
  {
    InPlaceStore store(inplace_dir);
    std::vector<model::DocId> ids;
    Rng rng2(41);
    for (size_t i = 0; i < kDocs; ++i) {
      ids.push_back(store.Insert(MakeDoc(&rng2, 1)));
    }
    Stopwatch watch;
    for (int rev = 2; rev <= kUpdatesPerDoc + 1; ++rev) {
      for (model::DocId id : ids) {
        store.Update(id, MakeDoc(&rng2, rev));
      }
    }
    const double updates_per_s =
        kDocs * kUpdatesPerDoc / watch.ElapsedSeconds();
    uint64_t disk = 0;
    for (const auto& entry : fs::directory_iterator(inplace_dir)) {
      disk += fs::file_size(entry);
    }
    table.AddRow({"in-place", Fmt("%.0f", updates_per_s), FmtInt(disk),
                  "0 (history destroyed)", "n/a"});
  }
  table.Print();

  std::printf(
      "\nExpected shape: update throughput stays within a small factor —\n"
      "and the versioned store is ALSO paying for segment flushes and\n"
      "checkpointing that the in-place baseline was charged nothing for.\n"
      "In exchange it retains every revision for audit/'time travel'\n"
      "reads at microsecond cost; in-place destroyed all %d revisions.\n"
      "Disk is the price, and Section 4 argues storage is cheap.\n",
      kUpdatesPerDoc);
  return 0;
}
