// E6 (Section 3.3): "it is important to be able to incrementally maintain
// the index, especially when structured annotations are added continuously."
//
// A stream of documents (base docs + late-arriving annotation docs) is
// indexed two ways:
//   incremental — AddDocument per arrival (Impliance's indexer);
//   rebuild     — re-index the whole corpus every batch, the behavior of
//                 an indexer without incremental maintenance.
// Also measures update cost (new version = remove + add) and verifies both
// strategies answer queries identically.

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "index/inverted_index.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using index::InvertedIndex;

namespace {

std::string MakeText(Rng* rng, int words) {
  std::string text;
  for (int w = 0; w < words; ++w) {
    text += rng->Word(3 + rng->Uniform(6));
    text += ' ';
  }
  return text;
}

}  // namespace

int main() {
  bench::Banner("E6", "incremental index maintenance vs periodic rebuild");

  constexpr size_t kStreamLen = 8000;
  constexpr size_t kBatch = 1000;  // rebuild granularity
  constexpr int kWordsPerDoc = 40;

  // Pre-generate the stream so both strategies index identical text.
  Rng rng(13);
  std::vector<std::string> stream;
  stream.reserve(kStreamLen);
  for (size_t i = 0; i < kStreamLen; ++i) {
    stream.push_back(MakeText(&rng, kWordsPerDoc));
  }

  bench::TablePrinter table({"strategy", "total_index_ms", "ms_per_arrival",
                             "worst_stall_ms", "docs_indexed"});

  // ----------------------------------------------------------- incremental
  double incremental_total = 0;
  {
    InvertedIndex idx;
    double worst = 0;
    Stopwatch total;
    for (size_t i = 0; i < kStreamLen; ++i) {
      Stopwatch watch;
      idx.AddDocument(i + 1, stream[i]);
      worst = std::max(worst, watch.ElapsedMillis());
    }
    incremental_total = total.ElapsedMillis();
    table.AddRow({"incremental", Fmt("%.0f", incremental_total),
                  Fmt("%.4f", incremental_total / kStreamLen),
                  Fmt("%.2f", worst), FmtInt(idx.num_documents())});
  }

  // -------------------------------------------------------------- rebuild
  {
    double total_ms = 0;
    double worst = 0;
    size_t final_docs = 0;
    for (size_t end = kBatch; end <= kStreamLen; end += kBatch) {
      // The non-incremental indexer throws away the index and rebuilds
      // over everything seen so far.
      Stopwatch watch;
      InvertedIndex idx;
      for (size_t i = 0; i < end; ++i) {
        idx.AddDocument(i + 1, stream[i]);
      }
      const double ms = watch.ElapsedMillis();
      total_ms += ms;
      worst = std::max(worst, ms);
      final_docs = idx.num_documents();
    }
    table.AddRow({"rebuild/" + FmtInt(kBatch), Fmt("%.0f", total_ms),
                  Fmt("%.4f", total_ms / kStreamLen), Fmt("%.2f", worst),
                  FmtInt(final_docs)});
  }
  table.Print();

  // ------------------------------------------------- update (re-version)
  {
    InvertedIndex idx;
    for (size_t i = 0; i < kStreamLen; ++i) idx.AddDocument(i + 1, stream[i]);
    Rng update_rng(14);
    constexpr int kUpdates = 2000;
    Stopwatch watch;
    for (int u = 0; u < kUpdates; ++u) {
      const model::DocId victim = 1 + update_rng.Uniform(kStreamLen);
      idx.RemoveDocument(victim);
      idx.AddDocument(victim, MakeText(&update_rng, kWordsPerDoc));
    }
    std::printf("\nversion-update cost (remove+add): %.4f ms/update over %d "
                "updates\n",
                watch.ElapsedMillis() / kUpdates, kUpdates);
  }

  // ----------------------------------------------------- result equality
  {
    InvertedIndex a, b;
    for (size_t i = 0; i < 2000; ++i) {
      a.AddDocument(i + 1, stream[i]);
    }
    for (size_t i = 0; i < 2000; ++i) {
      b.AddDocument(i + 1, stream[i]);
    }
    Rng query_rng(15);
    bool all_equal = true;
    for (int q = 0; q < 50; ++q) {
      std::string term = query_rng.Word(4);
      if (a.DocsWithTerm(term) != b.DocsWithTerm(term)) all_equal = false;
    }
    std::printf("incremental == rebuilt results over 50 random terms: %s\n",
                all_equal ? "yes" : "NO");
  }

  std::printf(
      "\nExpected shape: incremental indexing costs O(doc) per arrival with\n"
      "sub-millisecond stalls; the rebuild strategy's total work is\n"
      "quadratic in stream length (sum of prefix sizes) and each rebuild\n"
      "stalls for the full corpus — untenable for continuous annotation.\n");
  return 0;
}
