// Micro-benchmarks (google-benchmark) for the core data structures: the
// numbers behind the system-level experiments. One binary, stable units.

#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "index/btree.h"
#include "index/inverted_index.h"
#include "model/document.h"
#include "storage/bloom.h"

namespace impliance {
namespace {

// ----------------------------------------------------------------- hashing

void BM_Hash64(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(16)->Arg(256)->Arg(4096);

void BM_Crc32c(benchmark::State& state) {
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(256)->Arg(4096);

// --------------------------------------------------------------- tokenizer

void BM_Tokenize(benchmark::State& state) {
  Rng rng(1);
  std::string text;
  for (int i = 0; i < state.range(0); ++i) {
    text += rng.Word(3 + rng.Uniform(7));
    text += ' ';
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Tokenize)->Arg(50)->Arg(500);

// ------------------------------------------------------------------ bloom

void BM_BloomAddQuery(benchmark::State& state) {
  storage::BloomFilter bloom(100000);
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) bloom.Add(rng.Next());
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MayContain(probe++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAddQuery);

// ------------------------------------------------------------------ btree

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    index::BPlusTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(model::Value::Int(static_cast<int64_t>(rng.Next() >> 40)),
                  i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  index::BPlusTree tree;
  Rng rng(4);
  constexpr int kKeys = 100000;
  for (int i = 0; i < kKeys; ++i) {
    tree.Insert(model::Value::Int(i), static_cast<model::DocId>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(model::Value::Int(static_cast<int64_t>(rng.Uniform(kKeys)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

// ---------------------------------------------------------------- inverted

void BM_InvertedIndexAdd(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::string> docs;
  for (int i = 0; i < 1000; ++i) {
    std::string text;
    for (int w = 0; w < 40; ++w) {
      text += rng.Word(3 + rng.Uniform(6));
      text += ' ';
    }
    docs.push_back(std::move(text));
  }
  for (auto _ : state) {
    index::InvertedIndex idx;
    for (size_t i = 0; i < docs.size(); ++i) {
      idx.AddDocument(i + 1, docs[i]);
    }
    benchmark::DoNotOptimize(idx.num_postings());
  }
  state.SetItemsProcessed(state.iterations() * docs.size());
}
BENCHMARK(BM_InvertedIndexAdd);

void BM_InvertedIndexSearch(benchmark::State& state) {
  Rng rng(6);
  index::InvertedIndex idx;
  for (int i = 0; i < 20000; ++i) {
    std::string text;
    for (int w = 0; w < 30; ++w) {
      text += rng.Word(3 + rng.Uniform(4));  // small vocab -> long postings
      text += ' ';
    }
    idx.AddDocument(i + 1, text);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.Search("abc def ghi", 10));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvertedIndexSearch);

// --------------------------------------------------------------- document

void BM_DocumentEncodeDecode(benchmark::State& state) {
  Rng rng(7);
  model::Document doc = model::MakeRecordDocument(
      "order", {{"order_no", model::Value::Int(9001)},
                {"customer", model::Value::String("Ada Lovelace")},
                {"total", model::Value::Double(129.99)},
                {"memo", model::Value::String(rng.Word(200))}});
  doc.id = 42;
  for (auto _ : state) {
    std::string buf;
    doc.Encode(&buf);
    model::Document decoded;
    benchmark::DoNotOptimize(model::Document::Decode(buf, &decoded));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DocumentEncodeDecode);

// ----------------------------------------------------------- string sims

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(JaroWinkler("jonathan smithson", "jonathon smithsen"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JaroWinkler);

}  // namespace
}  // namespace impliance

BENCHMARK_MAIN();
