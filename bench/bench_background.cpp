// E11 (Sections 3.3/3.4): "an Impliance cluster will run a series of
// continuous background tasks" and execution management must interleave
// them with "queries with more stringent response-time requirements".
//
// A worker pool is saturated with long-running analysis tasks (annotation
// batches over a text corpus) while interactive keyword queries arrive.
// With priority scheduling, interactive p99 stays near its unloaded value;
// with plain FIFO, interactive queries wait behind the analysis queue.
// Background completion time is the price paid — nearly nothing.

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "discovery/pattern_annotator.h"
#include "index/inverted_index.h"
#include "model/document.h"
#include "obs/metrics.h"
#include "virt/execution_manager.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;

namespace {

constexpr size_t kCorpusDocs = 2400;
constexpr size_t kAnnotationBatches = 24;
constexpr int kInteractiveQueries = 40;

std::vector<model::Document> MakeCorpus(Rng* rng) {
  std::vector<model::Document> corpus;
  for (size_t i = 0; i < kCorpusDocs; ++i) {
    std::string text = "report for client" + std::to_string(i % 50) +
                       "@example.com dated 2006-0" +
                       std::to_string(1 + i % 9) + "-15 totalling $" +
                       std::to_string(100 + i) + ".00 ";
    for (int w = 0; w < 250; ++w) {
      text += rng->Word(3 + rng->Uniform(6));
      text += ' ';
    }
    model::Document doc = model::MakeTextDocument("report", "", text);
    doc.id = i + 1;
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

struct RunResult {
  obs::HistogramSnapshot interactive_ms;
  double background_wall_s = 0;
};

RunResult RunScenario(bool priority_scheduling,
                      const std::vector<model::Document>& corpus,
                      const index::InvertedIndex& idx) {
  virt::ExecutionManager manager(2, priority_scheduling);
  discovery::PatternAnnotator annotator;

  Stopwatch wall;
  // Background: annotation batches (each scans 1/kAnnotationBatches of the
  // corpus with every pattern matcher).
  for (size_t batch = 0; batch < kAnnotationBatches; ++batch) {
    manager.SubmitBackground([&corpus, &annotator, batch] {
      const size_t begin = batch * corpus.size() / kAnnotationBatches;
      const size_t end = (batch + 1) * corpus.size() / kAnnotationBatches;
      size_t spans = 0;
      // Several analysis passes per batch (entity extraction is one of a
      // pipeline of annotators in practice).
      for (int pass = 0; pass < 6; ++pass) {
        for (size_t i = begin; i < end; ++i) {
          spans += annotator.Annotate(corpus[i]).size();
        }
      }
      IMPLIANCE_CHECK(spans > 0);
    });
  }
  // Interactive: keyword searches trickling in while analysis runs.
  Rng rng(77);
  for (int q = 0; q < kInteractiveQueries; ++q) {
    manager.RunInteractive([&idx, &rng] {
      idx.Search("report client example", 10);
    });
  }
  manager.WaitIdle();
  RunResult result;
  result.interactive_ms = manager.interactive_latency_ms();
  result.background_wall_s = wall.ElapsedSeconds();
  return result;
}

}  // namespace

int main() {
  bench::Banner("E11",
                "background discovery vs interactive latency (priority "
                "interleaving)");

  Rng rng(71);
  std::vector<model::Document> corpus = MakeCorpus(&rng);
  index::InvertedIndex idx;
  for (const model::Document& doc : corpus) {
    idx.AddDocument(doc.id, doc.Text());
  }

  // Unloaded reference: interactive latency with no background work.
  Histogram unloaded;
  for (int q = 0; q < kInteractiveQueries; ++q) {
    Stopwatch watch;
    idx.Search("report client example", 10);
    unloaded.Add(watch.ElapsedMillis());
  }

  RunResult with_priority = RunScenario(true, corpus, idx);
  RunResult fifo = RunScenario(false, corpus, idx);

  bench::TablePrinter table({"scheduling", "interactive_p50_ms",
                             "interactive_p99_ms", "background_wall_s"});
  table.AddRow({"(unloaded reference)", Fmt("%.2f", unloaded.Percentile(50)),
                Fmt("%.2f", unloaded.Percentile(99)), "-"});
  table.AddRow({"priority interleaving",
                Fmt("%.2f", with_priority.interactive_ms.Percentile(50)),
                Fmt("%.2f", with_priority.interactive_ms.Percentile(99)),
                Fmt("%.2f", with_priority.background_wall_s)});
  table.AddRow({"plain FIFO",
                Fmt("%.2f", fifo.interactive_ms.Percentile(50)),
                Fmt("%.2f", fifo.interactive_ms.Percentile(99)),
                Fmt("%.2f", fifo.background_wall_s)});
  table.Print();
  std::printf(
      "\nExpected shape: under FIFO, interactive queries inherit the full\n"
      "depth of the analysis queue (p99 ~ batch runtime x queue depth);\n"
      "with priority interleaving they wait at most for one in-flight\n"
      "batch, while background completion time is essentially unchanged.\n");
  return 0;
}
