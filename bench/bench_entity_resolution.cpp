// E12 (Section 3.2, citing Jonas' identity resolution at scale): naive
// entity resolution compares all pairs — quadratic and hopeless at scale;
// blocking compares only within candidate blocks. Measured: comparisons,
// wall time, and F1 against planted duplicates, sweeping corpus size.

#include <set>

#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "discovery/entity_resolver.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using discovery::EntityRecord;
using discovery::EntityResolver;

namespace {

const std::vector<std::string>& FirstNames() {
  static const auto* kNames = new std::vector<std::string>{
      "ada", "grace", "alan", "edgar", "barbara", "donald", "edsger",
      "tony", "john", "leslie", "ken", "dennis", "bjarne", "frances",
      "maria", "ivan", "noor", "wei", "kofi", "lena"};
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const auto* kNames = new std::vector<std::string>{
      "lovelace", "hopper", "turing", "codd", "liskov", "knuth", "dijkstra",
      "hoare", "backus", "gray", "lamport", "thompson", "ritchie", "wirth",
      "okafor", "tanaka", "ferrari", "svensson", "almeida", "novak"};
  return *kNames;
}

std::string Typo(Rng* rng, std::string name) {
  if (name.size() > 4) {
    size_t pos = 1 + rng->Uniform(name.size() - 3);
    if (name[pos] == ' ' || name[pos + 1] == ' ') pos = 1;
    std::swap(name[pos], name[pos + 1]);
  }
  return name;
}

// Builds n records, ~20% of which are typo'd duplicates of earlier ones;
// truth pairs returned as index pairs.
std::vector<EntityRecord> MakeRecords(
    size_t n, uint64_t seed, std::set<std::pair<size_t, size_t>>* truth) {
  Rng rng(seed);
  std::vector<EntityRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 10 && rng.Bernoulli(0.2)) {
      const size_t original = rng.Uniform(records.size());
      EntityRecord dup = records[original];
      dup.doc = i + 1;
      dup.name = Typo(&rng, dup.name);
      truth->insert({original, i});
      records.push_back(std::move(dup));
    } else {
      EntityRecord record;
      record.doc = i + 1;
      record.name = rng.Pick(FirstNames()) + " " + rng.Pick(LastNames()) +
                    " " + rng.Word(3);  // suffix keeps names near-unique
      record.city = "city_" + std::to_string(rng.Uniform(30));
      records.push_back(std::move(record));
    }
  }
  return records;
}

struct Score {
  double precision = 0, recall = 0, f1 = 0;
};

Score ScoreClusters(const std::vector<std::vector<size_t>>& clusters,
                    const std::set<std::pair<size_t, size_t>>& truth) {
  std::set<std::pair<size_t, size_t>> found;
  for (const auto& cluster : clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        found.insert({std::min(cluster[i], cluster[j]),
                      std::max(cluster[i], cluster[j])});
      }
    }
  }
  size_t tp = 0;
  for (const auto& pair : found) {
    if (truth.count(pair)) ++tp;
  }
  Score score;
  score.precision = found.empty() ? 1.0 : 1.0 * tp / found.size();
  score.recall = truth.empty() ? 1.0 : 1.0 * tp / truth.size();
  score.f1 = score.precision + score.recall == 0
                 ? 0
                 : 2 * score.precision * score.recall /
                       (score.precision + score.recall);
  return score;
}

}  // namespace

int main() {
  bench::Banner("E12", "entity resolution: blocking vs all-pairs");

  bench::TablePrinter table({"records", "mode", "pairs_compared", "time_ms",
                             "precision", "recall", "F1"});
  for (size_t n : {1000u, 4000u, 16000u}) {
    std::set<std::pair<size_t, size_t>> truth;
    std::vector<EntityRecord> records = MakeRecords(n, 90 + n, &truth);

    {
      EntityResolver blocked;  // blocking on by default
      Stopwatch watch;
      auto clusters = blocked.Resolve(records);
      const double ms = watch.ElapsedMillis();
      Score score = ScoreClusters(clusters, truth);
      table.AddRow({FmtInt(n), "blocked",
                    FmtInt(blocked.stats().pairs_compared), Fmt("%.0f", ms),
                    Fmt("%.2f", score.precision), Fmt("%.2f", score.recall),
                    Fmt("%.2f", score.f1)});
    }
    if (n <= 4000) {
      EntityResolver::Options options;
      options.use_blocking = false;
      EntityResolver all_pairs(options);
      Stopwatch watch;
      auto clusters = all_pairs.Resolve(records);
      const double ms = watch.ElapsedMillis();
      Score score = ScoreClusters(clusters, truth);
      table.AddRow({FmtInt(n), "all-pairs",
                    FmtInt(all_pairs.stats().pairs_compared),
                    Fmt("%.0f", ms), Fmt("%.2f", score.precision),
                    Fmt("%.2f", score.recall), Fmt("%.2f", score.f1)});
    } else {
      table.AddRow({FmtInt(n), "all-pairs",
                    FmtInt(n * (n - 1) / 2) + " (skipped)", "-", "-", "-",
                    "-"});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: blocking keeps quality (F1 within a few points of\n"
      "all-pairs: typo'd duplicates almost always share a block) while\n"
      "comparing orders of magnitude fewer pairs; all-pairs becomes\n"
      "untenable past a few thousand records — the background ER pass can\n"
      "only run continuously on the appliance because of blocking.\n");
  return 0;
}
