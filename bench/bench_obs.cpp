// E18: observability overhead. The registry's counters and bounded
// histograms sit on every serving hot path, so their cost — and the cost
// of the disarmed state (`SetMetricsEnabled(false)`, a relaxed load +
// branch) — must be measured, not assumed.
//
// Two levels:
//   micro    ns/op for counter increment, histogram add, and an untraced
//            ScopedSpan, armed and disarmed
//   serving  end-to-end search throughput against a real server over TCP,
//            metrics on vs metrics off, interleaved best-of-N runs
//
// Exit code is nonzero when metrics-on serving throughput regresses more
// than kMaxOverhead vs metrics-off — CI runs this as a gate. Emits JSON
// (--json PATH) so the numbers are archived per commit.
//
//   ./bench_obs [--json PATH] [clients] [requests_per_client]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/impliance.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"

namespace fs = std::filesystem;
using impliance::Stopwatch;
using impliance::bench::Fmt;
using impliance::core::Impliance;
using impliance::server::ClientOptions;
using impliance::server::ImplianceClient;
using impliance::server::ImplianceServer;
using impliance::server::ServerOptions;

namespace {

constexpr double kMaxOverhead = 0.05;  // CI gate: 5%
constexpr int kServingRounds = 3;      // best-of, interleaved on/off

// ------------------------------------------------------------------ micro

struct MicroCosts {
  double counter_on_ns = 0;
  double counter_off_ns = 0;
  double histogram_on_ns = 0;
  double histogram_off_ns = 0;
  double span_untraced_ns = 0;
};

MicroCosts RunMicro() {
  constexpr int kIters = 5'000'000;
  MicroCosts costs;
  impliance::obs::Counter counter;
  impliance::obs::BoundedHistogram histogram;

  auto time_ns = [&](auto&& body) {
    Stopwatch watch;
    for (int i = 0; i < kIters; ++i) body(i);
    return watch.ElapsedSeconds() * 1e9 / kIters;
  };

  impliance::obs::SetMetricsEnabled(true);
  costs.counter_on_ns = time_ns([&](int) { counter.Increment(); });
  costs.histogram_on_ns =
      time_ns([&](int i) { histogram.Add(0.5 + (i & 1023)); });
  costs.span_untraced_ns =
      time_ns([&](int) { impliance::obs::ScopedSpan span("bench.noop"); });

  impliance::obs::SetMetricsEnabled(false);
  costs.counter_off_ns = time_ns([&](int) { counter.Increment(); });
  costs.histogram_off_ns =
      time_ns([&](int i) { histogram.Add(0.5 + (i & 1023)); });
  impliance::obs::SetMetricsEnabled(true);
  return costs;
}

// ---------------------------------------------------------------- serving

// One timed run: `clients` connections each issue `requests` searches.
// Returns requests/sec (0 on setup failure).
double RunServing(uint16_t port, int clients, int requests) {
  std::vector<std::thread> threads;
  std::atomic<size_t> errors{0};
  Stopwatch wall;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions options;
      options.port = port;
      auto connected = ImplianceClient::Connect(options);
      if (!connected.ok()) {
        errors.fetch_add(requests);
        return;
      }
      auto client = std::move(connected).value();
      for (int i = 0; i < requests; ++i) {
        if (!client->Search("searchable latency", 10).ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();
  const size_t total = static_cast<size_t>(clients) * requests;
  if (errors.load() > 0 || seconds <= 0) return 0;
  return total / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int clients = positional.size() > 0 ? std::atoi(positional[0]) : 4;
  const int requests = positional.size() > 1 ? std::atoi(positional[1]) : 400;

  impliance::bench::Banner(
      "E18", "observability overhead (metrics armed vs disarmed)");

  const MicroCosts micro = RunMicro();
  impliance::bench::TablePrinter micro_table({"primitive", "armed_ns",
                                              "disarmed_ns"});
  micro_table.AddRow({"counter.Increment", Fmt("%.1f", micro.counter_on_ns),
                      Fmt("%.1f", micro.counter_off_ns)});
  micro_table.AddRow({"histogram.Add", Fmt("%.1f", micro.histogram_on_ns),
                      Fmt("%.1f", micro.histogram_off_ns)});
  micro_table.AddRow({"ScopedSpan (untraced)",
                      Fmt("%.1f", micro.span_untraced_ns), "-"});
  micro_table.Print();

  const std::string dir = "/tmp/impliance_bench_obs";
  fs::remove_all(dir);
  auto opened = Impliance::Open({.data_dir = dir});
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto impliance = std::move(opened).value();
  auto started = ImplianceServer::Start(impliance.get(), ServerOptions{});
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(started).value();

  // Warm corpus + warm run so neither mode pays first-touch costs.
  {
    ClientOptions warm;
    warm.port = server->port();
    auto client = ImplianceClient::Connect(warm);
    if (!client.ok()) return 1;
    for (int i = 0; i < 64; ++i) {
      (void)(*client)->Ingest("bench", "warm record " + std::to_string(i) +
                                           " searchable latency payload");
    }
  }
  RunServing(server->port(), clients, requests / 4);

  // Interleaved best-of-N: alternating modes within one process cancels
  // drift (page cache, frequency scaling) that a one-shot A/B would eat.
  double best_off = 0, best_on = 0;
  for (int round = 0; round < kServingRounds; ++round) {
    impliance::obs::SetMetricsEnabled(false);
    best_off = std::max(best_off, RunServing(server->port(), clients,
                                             requests));
    impliance::obs::SetMetricsEnabled(true);
    best_on = std::max(best_on, RunServing(server->port(), clients,
                                           requests));
  }
  impliance::obs::SetMetricsEnabled(true);
  server->Shutdown();
  fs::remove_all(dir);

  if (best_off <= 0 || best_on <= 0) {
    std::fprintf(stderr, "serving runs failed\n");
    return 1;
  }
  const double overhead = (best_off - best_on) / best_off;
  const bool pass = overhead <= kMaxOverhead;
  std::printf(
      "\n  serving (search, %d clients x %d reqs, best of %d):\n"
      "    metrics off  %.0f req/s\n"
      "    metrics on   %.0f req/s\n"
      "    overhead     %.2f%% (gate: <= %.0f%%) %s\n",
      clients, requests, kServingRounds, best_off, best_on, overhead * 100,
      kMaxOverhead * 100, pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n  \"bench\": \"obs\",\n"
        "  \"micro_ns\": {\"counter_on\": %.2f, \"counter_off\": %.2f, "
        "\"histogram_on\": %.2f, \"histogram_off\": %.2f, "
        "\"span_untraced\": %.2f},\n"
        "  \"serving\": {\"clients\": %d, \"requests_per_client\": %d, "
        "\"off_rps\": %.1f, \"on_rps\": %.1f, \"overhead_frac\": %.4f},\n"
        "  \"max_overhead_frac\": %.2f,\n  \"pass\": %s\n}\n",
        micro.counter_on_ns, micro.counter_off_ns, micro.histogram_on_ns,
        micro.histogram_off_ns, micro.span_untraced_ns, clients, requests,
        best_off, best_on, overhead, kMaxOverhead, pass ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
