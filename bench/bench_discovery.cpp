// E5 (Section 3.2): background discovery makes the stew richer — measured
// against ground truth. Three discovery products are scored:
//   1. cross-silo joins: orders (CSV/XML/e-mail formats) -> customer master
//      records, recovered as join-index edges (recall);
//   2. entity resolution: duplicate customer records linked (precision,
//      recall, F1);
//   3. sentiment annotation: transcript polarity vs generated polarity
//      (accuracy).
// Plus the headline ability no single-format system has: one SQL query over
// the consolidated purchase-order schema class spanning all three formats.

#include <filesystem>
#include <map>
#include <set>

#include "bench_util.h"
#include "common/clock.h"
#include "core/impliance.h"
#include "discovery/annotator.h"
#include "model/item.h"
#include "workload/corpus.h"

using namespace impliance;
using bench::Fmt;
using bench::FmtInt;
using model::DocId;

int main() {
  bench::Banner("E5", "discovery quality vs ground truth");

  const std::string dir = "/tmp/impliance_bench_discovery";
  std::filesystem::remove_all(dir);
  auto opened = core::Impliance::Open({.data_dir = dir});
  IMPLIANCE_CHECK(opened.ok());
  auto impliance = std::move(opened).value();
  impliance->AddDictionaryEntries(
      "product", workload::CorpusGenerator::ProductNames());

  workload::CorpusOptions options;
  options.num_customers = 80;
  options.num_orders_csv = 100;
  options.num_orders_xml = 50;
  options.num_orders_email = 50;
  options.num_transcripts = 60;
  options.num_claims = 0;
  options.num_contract_emails = 0;
  workload::GroundTruth truth;
  for (const auto& item :
       workload::CorpusGenerator(options).GenerateRaw(&truth)) {
    IMPLIANCE_CHECK(impliance->InfuseContent(item.kind, item.content).ok());
  }

  Stopwatch watch;
  auto report = impliance->RunDiscovery();
  IMPLIANCE_CHECK(report.ok());
  std::printf("\ndiscovery pass: %.0f ms, %zu annotations, %zu join edges, "
              "%zu entity merges\n",
              watch.ElapsedMillis(), report->annotations_created,
              report->join_edges_added, report->entity_clusters_merged);
  impliance->WaitForDiscovery();

  bench::TablePrinter table({"discovery product", "metric", "value"});

  // ---- 1. Cross-silo join recall: order doc -> correct customer doc.
  {
    // Build business-key maps: customer id value -> doc id, order doc ->
    // expected customer business id.
    std::map<int64_t, DocId> customer_docs;
    for (DocId id : impliance->DocsOfKind("customer")) {
      auto doc = impliance->Get(id);
      if (const auto* key = model::ResolvePath(doc->root, "/doc/id")) {
        customer_docs[static_cast<int64_t>(key->AsDouble())] = id;
      }
    }
    auto graph = impliance->Graph();
    size_t expected = 0, recovered = 0;
    for (const std::string& kind :
         {std::string("order_csv"), std::string("order_xml"),
          std::string("order_email")}) {
      for (DocId id : impliance->DocsOfKind(kind)) {
        auto doc = impliance->Get(id);
        const auto* order_no =
            model::ResolvePath(doc->root, "/doc/order_no");
        int64_t order_key = 0;
        if (order_no != nullptr) {
          order_key = static_cast<int64_t>(order_no->AsDouble());
        } else if (const auto* subject =
                       model::ResolvePath(doc->root, "/doc/subject")) {
          // e-mail orders: "Purchase order PO-<n>".
          const std::string s = subject->AsString();
          size_t pos = s.rfind("PO-");
          if (pos != std::string::npos) {
            order_key = std::stoll(s.substr(pos + 3));
          }
        }
        auto truth_it = truth.order_customer.find(order_key);
        if (truth_it == truth.order_customer.end()) continue;
        ++expected;
        auto customer_it = customer_docs.find(truth_it->second);
        if (customer_it == customer_docs.end()) continue;
        // Is there a discovered 1-hop join edge to the right customer?
        for (DocId neighbor : graph.RelatedBy(id, "joins:customer_id")) {
          if (neighbor == customer_it->second) {
            ++recovered;
            break;
          }
        }
      }
    }
    table.AddRow({"cross-silo joins", "orders with edge to right customer",
                  FmtInt(recovered) + "/" + FmtInt(expected) + " (" +
                      Fmt("%.0f%%", 100.0 * recovered / expected) + ")"});
  }

  // ---- 2. Entity resolution P/R/F1 on duplicate customers.
  {
    std::map<int64_t, DocId> customer_docs;
    for (DocId id : impliance->DocsOfKind("customer")) {
      auto doc = impliance->Get(id);
      if (const auto* key = model::ResolvePath(doc->root, "/doc/id")) {
        customer_docs[static_cast<int64_t>(key->AsDouble())] = id;
      }
    }
    std::set<std::pair<DocId, DocId>> truth_pairs;
    for (const auto& [a, b] : truth.duplicate_customers) {
      DocId da = customer_docs.at(a), db = customer_docs.at(b);
      truth_pairs.insert({std::min(da, db), std::max(da, db)});
    }
    auto graph = impliance->Graph();
    std::set<std::pair<DocId, DocId>> found_pairs;
    for (const auto& [key, doc] : customer_docs) {
      for (DocId other : graph.RelatedBy(doc, "same_entity")) {
        found_pairs.insert({std::min(doc, other), std::max(doc, other)});
      }
    }
    size_t true_positive = 0;
    for (const auto& pair : found_pairs) {
      if (truth_pairs.count(pair)) ++true_positive;
    }
    const double precision =
        found_pairs.empty() ? 0 : 1.0 * true_positive / found_pairs.size();
    const double recall =
        truth_pairs.empty() ? 0 : 1.0 * true_positive / truth_pairs.size();
    const double f1 = precision + recall == 0
                          ? 0
                          : 2 * precision * recall / (precision + recall);
    table.AddRow({"entity resolution", "precision",
                  Fmt("%.2f", precision)});
    table.AddRow({"entity resolution", "recall", Fmt("%.2f", recall)});
    table.AddRow({"entity resolution", "F1", Fmt("%.2f", f1)});
  }

  // ---- 3. Sentiment accuracy on transcripts.
  {
    std::vector<DocId> transcripts = impliance->DocsOfKind("call_transcript");
    size_t correct = 0, scored = 0;
    for (size_t i = 0; i < transcripts.size() && i < truth.transcripts.size();
         ++i) {
      std::string label = "neutral";
      for (const auto& annotation : impliance->AnnotationsFor(transcripts[i])) {
        for (const auto& span :
             discovery::SpansFromAnnotationDocument(annotation)) {
          if (span.entity_type == "sentiment") label = span.text;
        }
      }
      const int expected = truth.transcripts[i].sentiment;
      const std::string expected_label =
          expected > 0 ? "positive" : (expected < 0 ? "negative" : "neutral");
      ++scored;
      if (label == expected_label) ++correct;
    }
    table.AddRow({"sentiment annotation", "accuracy",
                  FmtInt(correct) + "/" + FmtInt(scored) + " (" +
                      Fmt("%.0f%%", 100.0 * correct / scored) + ")"});
  }

  // ---- 4. Consolidated schema class: one SQL query across three formats.
  {
    std::string po_class;
    for (const auto& schema_class : impliance->SchemaClasses()) {
      size_t po_kinds = 0;
      for (const std::string& kind : schema_class.kinds) {
        if (kind.rfind("order_", 0) == 0) ++po_kinds;
      }
      if (po_kinds >= 2) po_class = schema_class.name;
    }
    if (!po_class.empty()) {
      auto rows = impliance->Sql("SELECT COUNT(*) FROM " + po_class);
      const int64_t count = rows.ok() ? (*rows)[0][0].int_value() : -1;
      table.AddRow({"schema consolidation",
                    "rows in one query over " + po_class,
                    FmtInt(static_cast<uint64_t>(count))});
    } else {
      table.AddRow({"schema consolidation", "purchase-order class", "NOT FOUND"});
    }
  }

  std::printf("\n");
  table.Print();
  std::printf(
      "\nExpected shape: high (not perfect) recall on cross-silo joins and\n"
      "duplicate detection, near-perfect sentiment on this lexicon-aligned\n"
      "corpus, and a consolidated purchase-order view spanning the CSV and\n"
      "XML silos — none of which required a human to define a mapping.\n");
  return 0;
}
